"""Tests for the core-language AST (Figure 3)."""

import pytest

from repro.formal.lang import (
    Assign, Check, CheckKind, Deref, Global, IntType, Mode, New, Null,
    Num, Program, RefType, Scast, Seq, Skip, Spawn, ThreadDef, Var,
    seq_of,
)


class TestTypes:
    def test_rendering(self):
        t = RefType(Mode.DYNAMIC, IntType(Mode.PRIVATE))
        assert str(t) == "dynamic ref (private int)"

    def test_equality_is_structural(self):
        a = RefType(Mode.PRIVATE, IntType(Mode.DYNAMIC))
        b = RefType(Mode.PRIVATE, IntType(Mode.DYNAMIC))
        assert a == b

    def test_target_of_ref(self):
        t = RefType(Mode.PRIVATE, IntType(Mode.DYNAMIC))
        assert t.target() == IntType(Mode.DYNAMIC)
        assert t.is_ref and not t.is_int

    def test_int_predicates(self):
        t = IntType(Mode.DYNAMIC)
        assert t.is_int and not t.is_ref


class TestStatements:
    def test_seq_of_empty_is_skip(self):
        assert isinstance(seq_of([]), Skip)

    def test_seq_of_single(self):
        s = Assign(Var("x"), Num(1))
        assert seq_of([s]) is s

    def test_seq_of_nests_right(self):
        stmts = [Assign(Var("x"), Num(i)) for i in range(3)]
        seq = seq_of(stmts)
        assert isinstance(seq, Seq)
        assert seq.first is stmts[0]
        assert isinstance(seq.second, Seq)

    def test_assign_rendering_with_checks(self):
        s = Assign(Var("g"), Num(1),
                   [Check(CheckKind.CHKWRITE, Var("g"))])
        assert str(s) == "g := 1 when chkwrite(g)"

    def test_scast_rendering(self):
        e = Scast(IntType(Mode.PRIVATE), "p")
        assert str(e) == "scast[private int] p"

    def test_lvalue_rendering(self):
        assert str(Var("x")) == "x"
        assert str(Deref("x")) == "*x"


class TestProgram:
    def test_thread_lookup(self):
        prog = Program(threads=[ThreadDef("a"), ThreadDef("b")])
        assert prog.thread("b").name == "b"
        with pytest.raises(KeyError):
            prog.thread("c")

    def test_rendering_roundtrip_ish(self):
        prog = Program(
            globals=[Global("g", IntType(Mode.DYNAMIC))],
            threads=[ThreadDef("main",
                               [("x", IntType(Mode.PRIVATE))],
                               Assign(Var("x"), Var("g")))])
        text = str(prog)
        assert "dynamic int g;" in text
        assert "main()" in text
        assert "x := g" in text
