"""Property tests for the Section 3.4 soundness theorem.

Random well-typed programs are executed under random schedules while the
Definition 1 consistency invariants are asserted after *every* machine
step; the race oracle then confirms that no two threads raced on a
dynamic cell without an intervening sharing cast.  The negative direction
is exercised too: with enforcement disabled (``record``), racy programs
do produce races in the trace — enforcement, not luck, is what the
theorem rests on.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.formal.gen import gen_program
from repro.formal.lang import (
    Assign, Global, IntType, Mode, Num, Program, Spawn, ThreadDef, Var,
    seq_of,
)
from repro.formal.semantics import Machine, MachineConfig
from repro.formal.soundness import (
    ConsistencyError, check_consistency, check_private_accesses,
)
from repro.formal.statics import typecheck


@settings(max_examples=60, deadline=None)
@given(program_seed=st.integers(min_value=0, max_value=10_000),
       schedule_seed=st.integers(min_value=0, max_value=10_000))
def test_soundness_random_programs(program_seed, schedule_seed):
    """The theorem: well-typed + well-checked => consistent, private
    cells owner-only, no undetected race on dynamic cells."""
    program = gen_program(random.Random(program_seed))
    checked = typecheck(program)
    machine = Machine(checked, MachineConfig(seed=schedule_seed,
                                             enforce="fail",
                                             max_steps=2500))
    violations = []

    def hook(m):
        check_consistency(m)
        violations.extend(check_private_accesses(m))

    machine.run(invariant_hook=hook)
    assert not violations
    assert machine.races_in_trace() == []


@settings(max_examples=25, deadline=None)
@given(program_seed=st.integers(min_value=0, max_value=10_000))
def test_generated_programs_typecheck(program_seed):
    """The generator only builds well-typed programs."""
    program = gen_program(random.Random(program_seed))
    typecheck(program)  # must not raise


def _racy_program(writers: int = 2, stores: int = 5) -> Program:
    body = seq_of([Assign(Var("g"), Num(i)) for i in range(stores)])
    return Program(
        globals=[Global("g", IntType(Mode.DYNAMIC))],
        threads=[ThreadDef("w", [], body),
                 ThreadDef("main", [],
                           seq_of([Spawn("w")] * writers + [body]))],
        main="main")


class TestNegativeDirection:
    def test_record_mode_sees_races(self):
        raced = False
        for seed in range(10):
            machine = Machine(typecheck(_racy_program()),
                              MachineConfig(seed=seed, enforce="record"))
            machine.run()
            raced |= bool(machine.races_in_trace())
            # ...and the checks themselves flagged violations:
            assert machine.violations or not machine.races_in_trace()
        assert raced

    def test_fail_mode_blocks_instead(self):
        for seed in range(10):
            machine = Machine(typecheck(_racy_program()),
                              MachineConfig(seed=seed, enforce="fail"))
            machine.run()
            assert machine.races_in_trace() == []

    def test_consistency_checker_catches_forged_state(self):
        """Definition 1 is not vacuous: corrupting the machine state is
        detected."""
        machine = Machine(typecheck(_racy_program()),
                          MachineConfig(seed=0, enforce="fail"))
        machine.run()
        g_addr = machine.global_env["g"]
        machine.memory[g_addr].writers = {1, 2}   # two writers: illegal
        with pytest.raises(ConsistencyError, match="writers"):
            check_consistency(machine)

    def test_consistency_checker_catches_type_forgery(self):
        machine = Machine(typecheck(_racy_program()),
                          MachineConfig(seed=0, enforce="fail"))
        machine.run()
        g_addr = machine.global_env["g"]
        machine.memory[g_addr].type = IntType(Mode.PRIVATE)
        with pytest.raises(ConsistencyError):
            check_consistency(machine)


class TestOracleSubtleties:
    def test_non_overlapping_accesses_not_flagged(self):
        """The race oracle honours thread exit: sequential threads
        touching the same dynamic cell are not a race."""
        program = Program(
            globals=[Global("g", IntType(Mode.DYNAMIC))],
            threads=[ThreadDef("w", [], Assign(Var("g"), Num(1))),
                     ThreadDef("main", [], Spawn("w"))],
            main="main")
        machine = Machine(typecheck(program),
                          MachineConfig(seed=0, enforce="skip"))
        machine.run()
        # Even unchecked: one writer at a time (main never touches g).
        assert machine.races_in_trace() == []
