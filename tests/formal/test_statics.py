"""Tests for the Figure 4 typing judgments."""

import pytest

from repro.formal.lang import (
    Assign, CheckKind, Deref, Global, IntType, Mode, New, Null, Num,
    Program, RefType, Scast, Seq, Skip, Spawn, ThreadDef, Var, seq_of,
)
from repro.formal.statics import TypeError_, typecheck, wellformed

D_INT = IntType(Mode.DYNAMIC)
P_INT = IntType(Mode.PRIVATE)
D_REF_D = RefType(Mode.DYNAMIC, D_INT)
P_REF_D = RefType(Mode.PRIVATE, D_INT)
P_REF_P = RefType(Mode.PRIVATE, P_INT)
D_REF_P = RefType(Mode.DYNAMIC, P_INT)


def prog(globals_=(), locals_=(), body=Skip()):
    return Program(
        globals=list(globals_),
        threads=[ThreadDef("main", list(locals_), body)],
        main="main")


class TestWellformed:
    def test_refctor_rejects_dynamic_ref_private(self):
        with pytest.raises(TypeError_, match="REF-CTOR"):
            wellformed(D_REF_P)

    def test_private_ref_private_ok(self):
        wellformed(P_REF_P)

    def test_private_ref_dynamic_ok(self):
        wellformed(P_REF_D)

    def test_nested_violation_found(self):
        bad = RefType(Mode.PRIVATE, D_REF_P)
        with pytest.raises(TypeError_):
            wellformed(bad)


class TestGlobalRule:
    def test_globals_must_be_dynamic(self):
        with pytest.raises(TypeError_, match="GLOBAL"):
            typecheck(prog(globals_=[Global("g", P_INT)]))

    def test_dynamic_global_ok(self):
        typecheck(prog(globals_=[Global("g", D_INT)]))

    def test_local_shadowing_global_rejected(self):
        with pytest.raises(TypeError_, match="shadow"):
            typecheck(prog(globals_=[Global("x", D_INT)],
                           locals_=[("x", P_INT)]))


class TestDeref:
    def test_deref_requires_private_ref(self):
        program = prog(globals_=[Global("g", D_REF_D)],
                       body=Assign(Deref("g"), Num(1)))
        with pytest.raises(TypeError_, match="private"):
            typecheck(program)

    def test_deref_of_private_ref_ok(self):
        program = prog(locals_=[("p", P_REF_D)],
                       body=Assign(Deref("p"), Num(1)))
        typecheck(program)

    def test_deref_of_int_rejected(self):
        program = prog(locals_=[("x", P_INT)],
                       body=Assign(Deref("x"), Num(1)))
        with pytest.raises(TypeError_, match="not a reference"):
            typecheck(program)


class TestCheckInsertion:
    def check_kinds(self, body, locals_=(), globals_=()):
        checked = typecheck(prog(globals_, locals_, body))
        stmt = checked.thread("main").body
        return [c.kind for c in stmt.checks]

    def test_write_to_dynamic_gets_chkwrite(self):
        kinds = self.check_kinds(Assign(Var("g"), Num(1)),
                                 globals_=[Global("g", D_INT)])
        assert kinds == [CheckKind.CHKWRITE]

    def test_write_to_private_unchecked(self):
        kinds = self.check_kinds(Assign(Var("x"), Num(1)),
                                 locals_=[("x", P_INT)])
        assert kinds == []

    def test_copy_checks_both_sides(self):
        kinds = self.check_kinds(
            Assign(Var("g"), Var("h")),
            globals_=[Global("g", D_INT), Global("h", D_INT)])
        assert kinds == [CheckKind.CHKWRITE, CheckKind.CHKREAD]

    def test_deref_read_of_dynamic_cell_checked(self):
        kinds = self.check_kinds(
            Assign(Var("x"), Deref("p")),
            locals_=[("x", P_INT), ("p", P_REF_D)])
        assert kinds == [CheckKind.CHKREAD]

    def test_new_assign_checks_target_cell(self):
        kinds = self.check_kinds(
            Assign(Var("g"), New(D_INT)),
            globals_=[Global("g", D_REF_D)])
        assert kinds == [CheckKind.CHKWRITE]

    def test_scast_gets_oneref(self):
        kinds = self.check_kinds(
            Assign(Var("q"), Scast(P_INT, "p")),
            locals_=[("q", P_REF_P), ("p", P_REF_D)])
        assert kinds[0] is CheckKind.ONEREF


class TestAssignRules:
    def test_int_to_ref_rejected(self):
        with pytest.raises(TypeError_):
            typecheck(prog(locals_=[("p", P_REF_D)],
                           body=Assign(Var("p"), Num(3))))

    def test_null_to_int_rejected(self):
        with pytest.raises(TypeError_):
            typecheck(prog(locals_=[("x", P_INT)],
                           body=Assign(Var("x"), Null())))

    def test_ref_copy_requires_same_target(self):
        with pytest.raises(TypeError_):
            typecheck(prog(locals_=[("p", P_REF_D), ("q", P_REF_P)],
                           body=Assign(Var("p"), Var("q"))))

    def test_new_type_must_match(self):
        with pytest.raises(TypeError_):
            typecheck(prog(locals_=[("p", P_REF_D)],
                           body=Assign(Var("p"), New(P_INT))))

    def test_outermost_modes_may_differ(self):
        typecheck(prog(globals_=[Global("g", D_INT)],
                       locals_=[("x", P_INT)],
                       body=Assign(Var("x"), Var("g"))))


class TestScastRules:
    def test_source_must_be_local_private_ref(self):
        program = prog(globals_=[Global("g", D_REF_D)],
                       locals_=[("q", P_REF_P)],
                       body=Assign(Var("q"), Scast(P_INT, "g")))
        with pytest.raises(TypeError_, match="local"):
            typecheck(program)

    def test_cast_type_must_match_target_ref(self):
        program = prog(locals_=[("q", P_REF_P), ("p", P_REF_D)],
                       body=Assign(Var("q"), Scast(D_INT, "p")))
        with pytest.raises(TypeError_):
            typecheck(program)

    def test_deep_conversion_rejected(self):
        # ref (dynamic ref dynamic int) to ref (private ref private int)
        deep_src = RefType(Mode.PRIVATE, RefType(Mode.DYNAMIC, D_INT))
        deep_dst = RefType(Mode.PRIVATE, RefType(Mode.PRIVATE, P_INT))
        program = prog(
            locals_=[("q", deep_dst), ("p", deep_src)],
            body=Assign(Var("q"),
                        Scast(RefType(Mode.PRIVATE, P_INT), "p")))
        with pytest.raises(TypeError_):
            typecheck(program)

    def test_first_level_conversion_ok(self):
        program = prog(locals_=[("q", P_REF_P), ("p", P_REF_D)],
                       body=Assign(Var("q"), Scast(P_INT, "p")))
        typecheck(program)


class TestSpawn:
    def test_spawn_of_unknown_thread_rejected(self):
        with pytest.raises(TypeError_):
            typecheck(prog(body=Spawn("ghost")))

    def test_spawn_of_defined_thread_ok(self):
        program = Program(
            globals=[],
            threads=[ThreadDef("w", [], Skip()),
                     ThreadDef("main", [], Spawn("w"))],
            main="main")
        typecheck(program)

    def test_seq_checked_recursively(self):
        program = prog(locals_=[("x", P_INT)],
                       body=seq_of([Assign(Var("x"), Num(1)),
                                    Assign(Var("x"), Null())]))
        with pytest.raises(TypeError_):
            typecheck(program)
