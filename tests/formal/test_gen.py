"""Tests for the random well-typed program generator."""

import random

import pytest

from repro.formal.gen import gen_program
from repro.formal.lang import Assign, Scast, Spawn, Var
from repro.formal.semantics import Machine, MachineConfig
from repro.formal.statics import typecheck


def walk_stmts(stmt):
    yield stmt
    for attr in ("first", "second"):
        child = getattr(stmt, attr, None)
        if child is not None:
            yield from walk_stmts(child)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = gen_program(random.Random(3))
        b = gen_program(random.Random(3))
        assert str(a) == str(b)

    def test_different_seeds_differ(self):
        seen = {str(gen_program(random.Random(s))) for s in range(10)}
        assert len(seen) > 1

    def test_sizes_respected(self):
        prog = gen_program(random.Random(0), n_threads=2, n_globals=5,
                           n_locals=3)
        assert len(prog.globals) == 5
        assert len(prog.threads) == 3  # 2 workers + main
        assert all(len(t.locals) == 3 for t in prog.threads)

    def test_main_spawns_something(self):
        for seed in range(10):
            prog = gen_program(random.Random(seed))
            main = prog.thread("main")
            assert any(isinstance(s, Spawn)
                       for s in walk_stmts(main.body)), seed

    def test_interesting_constructs_appear(self):
        """Across seeds the generator must produce scasts and derefs,
        otherwise the soundness property tests exercise nothing."""
        kinds = set()
        for seed in range(60):
            prog = gen_program(random.Random(seed))
            for thread in prog.threads:
                for stmt in walk_stmts(thread.body):
                    if isinstance(stmt, Assign):
                        kinds.add(type(stmt.value).__name__)
        assert "Scast" in kinds
        assert "New" in kinds
        assert "Deref" in kinds or "Var" in kinds

    def test_programs_terminate(self):
        """No loops in the core language: every run quiesces within the
        step budget."""
        for seed in range(10):
            prog = typecheck(gen_program(random.Random(seed)))
            machine = Machine(prog, MachineConfig(seed=seed,
                                                  max_steps=5000))
            machine.run()
            assert all(t.done or t.failed is not None
                       for t in machine.threads), seed


class TestRacyGenerator:
    """gen_racy_program: the racy-by-construction mode that gives the
    exploration engine its ground truth."""

    def _gen(self, seed, **kw):
        from repro.formal.gen import gen_racy_program
        return gen_racy_program(random.Random(seed), **kw)

    def test_deterministic_per_seed(self):
        (pa, sa), (pb, sb) = self._gen(4), self._gen(4)
        assert str(pa) == str(pb) and sa == sb

    def test_still_well_typed(self):
        for seed in range(15):
            program, _ = self._gen(seed)
            typecheck(program)  # raises on failure

    def test_spec_points_at_real_injected_writes(self):
        for seed in range(15):
            program, spec = self._gen(seed)
            assert spec.global_name in {g.name for g in program.globals}
            first, second = spec.threads
            assert first != second and "main" not in spec.threads
            for name, value in zip(spec.threads, spec.values):
                writes = [
                    s for s in walk_stmts(program.thread(name).body)
                    if isinstance(s, Assign)
                    and isinstance(s.target, Var)
                    and s.target.name == spec.global_name]
                assert len(writes) == 1, (seed, name)
                assert writes[0].value.value == value

    def test_main_spawns_both_racing_threads(self):
        for seed in range(15):
            program, spec = self._gen(seed)
            spawned = {s.func
                       for s in walk_stmts(program.thread("main").body)
                       if isinstance(s, Spawn)}
            assert set(spec.threads) <= spawned

    def test_machine_oracle_confirms_race(self):
        """Under enforce="record" (checks log instead of failing) some
        machine schedule exhibits the injected conflict on the racy
        global's own cell — the generated race is real, not just
        plausible."""
        from repro.formal.semantics import MachineConfig

        program, spec = self._gen(2)
        checked = typecheck(program)
        for machine_seed in range(40):
            machine = Machine(checked, MachineConfig(
                seed=machine_seed, enforce="record", max_steps=5000))
            machine.run()
            addr = machine.global_env[spec.global_name]
            if any(a.addr == addr for a, b in machine.races_in_trace()):
                return
        pytest.fail("no machine schedule exhibited the injected race")

    def test_unknown_kind_rejected(self):
        from repro.formal.gen import gen_racy_program
        with pytest.raises(ValueError, match="unknown race kind"):
            gen_racy_program(random.Random(0), kind="nope")

    def test_matches_key_parses_report_keys(self):
        from repro.formal.gen import RaceSpec

        spec = RaceSpec(kind="write-write", global_name="race3",
                        threads=("t0", "t1"), values=(11, 52))
        assert spec.matches_key("write conflict race3@36")
        assert spec.matches_key("lock not held race3@18")
        assert not spec.matches_key("write conflict g2@36")
        assert not spec.matches_key("write conflict *race3_ptr@4")
