"""Tests for the random well-typed program generator."""

import random

import pytest

from repro.formal.gen import gen_program
from repro.formal.lang import Assign, Scast, Spawn, Var
from repro.formal.semantics import Machine, MachineConfig
from repro.formal.statics import typecheck


def walk_stmts(stmt):
    yield stmt
    for attr in ("first", "second"):
        child = getattr(stmt, attr, None)
        if child is not None:
            yield from walk_stmts(child)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = gen_program(random.Random(3))
        b = gen_program(random.Random(3))
        assert str(a) == str(b)

    def test_different_seeds_differ(self):
        seen = {str(gen_program(random.Random(s))) for s in range(10)}
        assert len(seen) > 1

    def test_sizes_respected(self):
        prog = gen_program(random.Random(0), n_threads=2, n_globals=5,
                           n_locals=3)
        assert len(prog.globals) == 5
        assert len(prog.threads) == 3  # 2 workers + main
        assert all(len(t.locals) == 3 for t in prog.threads)

    def test_main_spawns_something(self):
        for seed in range(10):
            prog = gen_program(random.Random(seed))
            main = prog.thread("main")
            assert any(isinstance(s, Spawn)
                       for s in walk_stmts(main.body)), seed

    def test_interesting_constructs_appear(self):
        """Across seeds the generator must produce scasts and derefs,
        otherwise the soundness property tests exercise nothing."""
        kinds = set()
        for seed in range(60):
            prog = gen_program(random.Random(seed))
            for thread in prog.threads:
                for stmt in walk_stmts(thread.body):
                    if isinstance(stmt, Assign):
                        kinds.add(type(stmt.value).__name__)
        assert "Scast" in kinds
        assert "New" in kinds
        assert "Deref" in kinds or "Var" in kinds

    def test_programs_terminate(self):
        """No loops in the core language: every run quiesces within the
        step budget."""
        for seed in range(10):
            prog = typecheck(gen_program(random.Random(seed)))
            machine = Machine(prog, MachineConfig(seed=seed,
                                                  max_steps=5000))
            machine.run()
            assert all(t.done or t.failed is not None
                       for t in machine.threads), seed
