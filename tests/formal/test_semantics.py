"""Tests for the small-step operational semantics (Figures 5 and 6)."""

import pytest

from repro.formal.lang import (
    Assign, Deref, Global, IntType, Mode, New, Null, Num, Program,
    RefType, Scast, Seq, Skip, Spawn, ThreadDef, Var, seq_of,
)
from repro.formal.semantics import Machine, MachineConfig
from repro.formal.statics import typecheck

D_INT = IntType(Mode.DYNAMIC)
P_INT = IntType(Mode.PRIVATE)
D_REF_D = RefType(Mode.DYNAMIC, D_INT)
P_REF_D = RefType(Mode.PRIVATE, D_INT)
P_REF_P = RefType(Mode.PRIVATE, P_INT)


def run(program, seed=0, enforce="fail", max_steps=5000):
    machine = Machine(typecheck(program),
                      MachineConfig(seed=seed, enforce=enforce,
                                    max_steps=max_steps))
    machine.run()
    return machine


def main_prog(globals_=(), locals_=(), body=Skip(), extra_threads=()):
    return Program(list(globals_),
                   list(extra_threads)
                   + [ThreadDef("main", list(locals_), body)],
                   main="main")


def value_of(machine, thread_name, var):
    rec = next(t for t in machine.threads if t.name == thread_name)
    return machine.memory[rec.env[var]].value


class TestBasicExecution:
    def test_constant_assignment(self):
        machine = run(main_prog(locals_=[("x", P_INT)],
                                body=Assign(Var("x"), Num(7))))
        # Locals are zeroed at thread exit (threadexit), so check trace.
        writes = [e for e in machine.trace if e.kind == "write"]
        assert writes  # the assignment happened

    def test_new_allocates_fresh_cell(self):
        machine = run(main_prog(
            locals_=[("p", P_REF_D)],
            body=seq_of([Assign(Var("p"), New(D_INT)),
                         Assign(Deref("p"), Num(5))])))
        heap = [a for a, c in machine.memory.items()
                if c.type == D_INT and a not in
                machine.threads[0].env.values()]
        assert len(heap) == 1

    def test_null_deref_fails_thread(self):
        machine = run(main_prog(locals_=[("p", P_REF_D), ("x", P_INT)],
                                body=Assign(Var("x"), Deref("p"))))
        assert machine.threads[0].failed is not None

    def test_spawn_creates_thread_with_own_locals(self):
        worker = ThreadDef("w", [("y", P_INT)],
                           Assign(Var("y"), Num(1)))
        machine = run(main_prog(body=Spawn("w"),
                                extra_threads=[worker]))
        assert len(machine.threads) == 2
        w = next(t for t in machine.threads if t.name == "w")
        assert machine.memory[w.env["y"]].owner == w.tid

    def test_globals_shared_across_threads(self):
        worker = ThreadDef("w", [], Assign(Var("g"), Num(2)))
        machine = run(main_prog(globals_=[Global("g", D_INT)],
                                body=Spawn("w"),
                                extra_threads=[worker]),
                      enforce="skip")
        main_rec = next(t for t in machine.threads if t.name == "main")
        w_rec = next(t for t in machine.threads if t.name == "w")
        assert main_rec.env["g"] == w_rec.env["g"]


class TestChecks:
    def racy_program(self):
        worker = ThreadDef("w", [],
                           seq_of([Assign(Var("g"), Num(i))
                                   for i in range(4)]))
        return main_prog(globals_=[Global("g", D_INT)],
                         body=seq_of([Spawn("w"), Spawn("w")]),
                         extra_threads=[worker])

    def test_enforce_fail_blocks_racing_thread(self):
        failures = 0
        for seed in range(10):
            machine = run(self.racy_program(), seed=seed)
            failures += len(machine.failures)
        assert failures > 0

    def test_enforce_fail_admits_no_race(self):
        for seed in range(10):
            machine = run(self.racy_program(), seed=seed)
            assert machine.races_in_trace() == []

    def test_enforce_record_lets_races_through(self):
        raced = 0
        for seed in range(10):
            machine = run(self.racy_program(), seed=seed,
                          enforce="record")
            raced += len(machine.races_in_trace())
        assert raced > 0

    def test_enforce_skip_runs_everything(self):
        machine = run(self.racy_program(), enforce="skip")
        assert not machine.failures
        assert all(t.done for t in machine.threads)

    def test_sequential_reuse_is_not_a_race(self):
        """Non-overlapping thread executions do not race (threadexit
        clears the reader/writer sets)."""
        worker = ThreadDef("w", [], Assign(Var("g"), Num(1)))
        # main spawns w, w finishes, then main spawns another w —
        # sequentially, because main's spawn statements are adjacent but
        # the machine may interleave; run many seeds and require that
        # *either* no failure or only genuine overlaps failed.
        program = main_prog(globals_=[Global("g", D_INT)],
                            body=Spawn("w"),
                            extra_threads=[worker])
        machine = run(program)
        assert not machine.failures


class TestScast:
    def transfer_program(self):
        """main: p := new dynamic; q := scast[private] p."""
        return main_prog(
            locals_=[("p", P_REF_D), ("q", P_REF_P)],
            body=seq_of([
                Assign(Var("p"), New(D_INT)),
                Assign(Var("q"), Scast(P_INT, "p")),
            ]))

    def test_scast_nulls_source_and_retypes(self):
        machine = run(self.transfer_program())
        rec = machine.threads[0]
        assert not machine.failures
        # The heap cell was retyped to private int and re-owned.
        heap = [c for a, c in machine.memory.items()
                if a not in rec.env.values()]
        assert len(heap) == 1
        assert heap[0].type == P_INT
        assert heap[0].owner == rec.tid

    def test_scast_records_trace_event(self):
        machine = run(self.transfer_program())
        assert any(e.kind == "scast" for e in machine.trace)

    def test_oneref_fails_with_second_reference(self):
        program = main_prog(
            locals_=[("p", P_REF_D), ("r", P_REF_D), ("q", P_REF_P)],
            body=seq_of([
                Assign(Var("p"), New(D_INT)),
                Assign(Var("r"), Var("p")),      # second reference
                Assign(Var("q"), Scast(P_INT, "p")),
            ]))
        machine = run(program)
        assert any("oneref" in f for _, f in machine.failures)

    def test_oneref_passes_after_reference_dropped(self):
        program = main_prog(
            locals_=[("p", P_REF_D), ("r", P_REF_D), ("q", P_REF_P)],
            body=seq_of([
                Assign(Var("p"), New(D_INT)),
                Assign(Var("r"), Var("p")),
                Assign(Var("r"), Null()),
                Assign(Var("q"), Scast(P_INT, "p")),
            ]))
        machine = run(program)
        assert not machine.failures

    def test_scast_clears_reader_writer_sets(self):
        """Accesses before and after a cast never pair up as races."""
        worker = ThreadDef(
            "w", [("m", P_REF_D), ("o", P_REF_P)],
            seq_of([
                Assign(Var("m"), Var("g")),
                Assign(Var("o"), Scast(P_INT, "m")),
                Assign(Deref("o"), Num(9)),
            ]))
        program = main_prog(
            globals_=[Global("g", D_REF_D)],
            locals_=[("p", P_REF_D)],
            body=seq_of([
                Assign(Var("p"), New(D_INT)),
                Assign(Deref("p"), Num(1)),   # main writes the cell
                Assign(Var("g"), Var("p")),
                Assign(Var("p"), Null()),
                Spawn("w"),
            ]),
            extra_threads=[worker])
        for seed in range(8):
            machine = run(program, seed=seed)
            assert machine.races_in_trace() == [], seed


class TestThreadExit:
    def test_locals_zeroed_on_exit(self):
        machine = run(main_prog(locals_=[("x", P_INT)],
                                body=Assign(Var("x"), Num(9))))
        rec = machine.threads[0]
        assert machine.memory[rec.env["x"]].value == 0

    def test_reader_writer_bits_cleared_on_exit(self):
        worker = ThreadDef("w", [], Assign(Var("g"), Num(1)))
        machine = run(main_prog(globals_=[Global("g", D_INT)],
                                body=Spawn("w"),
                                extra_threads=[worker]))
        g_addr = machine.global_env["g"]
        cell = machine.memory[g_addr]
        # All threads finished: no lingering reader/writer ids.
        assert not cell.readers and not cell.writers


class TestDeterminism:
    def test_same_seed_same_trace(self):
        program = TestChecks().racy_program()
        a = run(program, seed=3, enforce="record")
        b = run(program, seed=3, enforce="record")
        assert [(e.tid, e.kind, e.addr) for e in a.trace] == \
            [(e.tid, e.kind, e.addr) for e in b.trace]
