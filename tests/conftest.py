"""Shared test helpers."""

from __future__ import annotations

import os

import pytest

from repro.sharc.checker import CheckedProgram, check_source
from repro.runtime.interp import RunResult, run_checked

# Pinned hypothesis profiles so CI runs are reproducible: "ci"
# derandomizes example generation (no flaky shrink sessions on shared
# runners) and drops the wall-clock deadline (CI machines are slow and
# noisy).  Select with HYPOTHESIS_PROFILE=ci; the default profile is
# untouched for local runs.
from hypothesis import settings

settings.register_profile("ci", derandomize=True, deadline=None,
                          max_examples=40)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def check(source: str, filename: str = "test.c") -> CheckedProgram:
    """Checks a source fragment."""
    return check_source(source, filename)


def check_ok(source: str, filename: str = "test.c") -> CheckedProgram:
    """Checks and asserts no static errors."""
    checked = check_source(source, filename)
    assert checked.ok, checked.render_diagnostics()
    return checked


def run_ok(source: str, seed: int = 0, **kwargs) -> RunResult:
    """Checks, runs, and asserts the run finished without runtime
    errors/deadlock/timeout (reports are allowed)."""
    checked = check_ok(source)
    result = run_checked(checked, seed=seed, **kwargs)
    assert result.error is None, result.error
    assert result.deadlock is None, result.deadlock
    assert not result.timeout, "interpreter step budget exhausted"
    return result


def run_clean(source: str, seed: int = 0, **kwargs) -> RunResult:
    """Like run_ok but additionally asserts zero reports."""
    result = run_ok(source, seed=seed, **kwargs)
    assert not result.reports, result.render_reports()
    return result


def error_kinds(checked: CheckedProgram) -> set[str]:
    return {d.kind.name for d in checked.errors}


@pytest.fixture
def pipeline_annotated() -> str:
    import pathlib
    path = (pathlib.Path(__file__).parent.parent
            / "examples" / "pipeline_annotated.c")
    return path.read_text()
