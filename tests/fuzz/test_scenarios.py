"""The scenario generator: specs, oracles, and the family grid.

Every supported (topology, idiom) family must generate a mini-C program
that passes the static checker in both its race-free and its
race-injected form, deterministically per spec — the fuzz pipeline's
oracle judgements are meaningless if generation itself is flaky.
"""

import pytest

from repro.formal.gen import RaceSpec
from repro.fuzz.scenarios import (
    IDIOMS, RACE_KINDS, SUPPORTED_FAMILIES, TOPOLOGIES, Scenario,
    ScenarioOracle, ScenarioSpec,
)
from repro.fuzz.gen import generate_scenario, sample_specs, verify_formal

from ..conftest import check_ok, run_ok


def _spec(topology="fork-join", idiom="lock-protected", **kwargs):
    return ScenarioSpec(topology=topology, idiom=idiom, **kwargs)


class TestFamilyGrid:
    """The acceptance floor: >= 4 topologies x >= 3 idioms each."""

    def test_at_least_four_topologies(self):
        assert len(TOPOLOGIES) >= 4
        assert {t for t, _ in SUPPORTED_FAMILIES} == set(TOPOLOGIES)

    def test_every_topology_carries_at_least_three_idioms(self):
        for topology in TOPOLOGIES:
            idioms = {i for t, i in SUPPORTED_FAMILIES if t == topology}
            assert len(idioms) >= 3, topology
            assert idioms <= set(IDIOMS)

    def test_families_are_unique(self):
        assert len(set(SUPPORTED_FAMILIES)) == len(SUPPORTED_FAMILIES)


class TestScenarioSpec:
    def test_rejects_unsupported_family(self):
        with pytest.raises(ValueError, match="unsupported family"):
            _spec("pipeline", "barrier-phased")

    def test_rejects_single_worker(self):
        with pytest.raises(ValueError, match="n_workers"):
            _spec(n_workers=1)

    @pytest.mark.parametrize("kwargs", [
        {"n_items": 0}, {"array_len": 3}, {"rounds": 0},
    ])
    def test_rejects_degenerate_shapes(self, kwargs):
        with pytest.raises(ValueError, match="degenerate"):
            _spec(**kwargs)

    @pytest.mark.parametrize("density", [-0.1, 1.5])
    def test_rejects_density_out_of_range(self, density):
        with pytest.raises(ValueError, match="density"):
            _spec(density=density)

    def test_rejects_unknown_race_kind(self):
        with pytest.raises(ValueError, match="unknown race kind"):
            _spec(race_kinds=("deadlock",))

    def test_family_and_racy_properties(self):
        clean = _spec()
        racy = _spec(race_kinds=("write-write",))
        assert clean.family == "fork-join/lock-protected"
        assert not clean.racy
        assert racy.racy

    def test_dict_round_trip(self):
        spec = _spec("scatter-gather", "barrier-phased", n_workers=3,
                     n_items=5, array_len=8, rounds=3, density=0.6,
                     race_kinds=("write-write", "lock-elision"),
                     gen_seed=12345)
        assert ScenarioSpec.from_dict(spec.as_dict()) == spec


class TestScenarioOracle:
    def _race(self, name="fz_race0"):
        return RaceSpec(kind="write-write", global_name=name,
                        threads=("w0", "w1"), values=(1, 2))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown oracle kind"):
            ScenarioOracle(kind="maybe-racy")

    def test_kind_and_races_must_agree(self):
        with pytest.raises(ValueError):
            ScenarioOracle(kind="racy")  # racy needs races
        with pytest.raises(ValueError):
            ScenarioOracle(kind="race-free", races=(self._race(),))

    def test_matched_missed_and_unexpected(self):
        oracle = ScenarioOracle(kind="racy", races=(
            self._race("fz_race0"), self._race("fz_race1")))
        keys = ["write conflict fz_race0@10",
                "read conflict fz_other@3"]
        assert [r.global_name for r in oracle.matched_races(keys)] \
            == ["fz_race0"]
        assert [r.global_name for r in oracle.missed_races(keys)] \
            == ["fz_race1"]
        assert oracle.unexpected_keys(keys) \
            == ["read conflict fz_other@3"]

    def test_race_free_oracle_treats_every_key_as_unexpected(self):
        oracle = ScenarioOracle(kind="race-free")
        keys = ["write conflict x@1", "lock not held y@2"]
        assert oracle.unexpected_keys(keys) == keys
        assert oracle.matched_races(keys) == []

    def test_dict_round_trip(self):
        oracle = ScenarioOracle(kind="racy", races=(self._race(),))
        assert ScenarioOracle.from_dict(oracle.as_dict()) == oracle


class TestGeneration:
    def test_generation_is_deterministic_per_spec(self):
        spec = _spec(race_kinds=("write-write",), gen_seed=99)
        a, b = generate_scenario(spec), generate_scenario(spec)
        assert a.source == b.source
        assert a.oracle == b.oracle
        assert a.filename == b.filename

    def test_filename_encodes_family_and_verdict(self):
        racy = generate_scenario(_spec(race_kinds=("write-write",),
                                       gen_seed=7))
        clean = generate_scenario(_spec(gen_seed=7))
        assert racy.filename == "fuzz_fork-join_lock-protected_racy_7.c"
        assert clean.filename \
            == "fuzz_fork-join_lock-protected_clean_7.c"

    @pytest.mark.parametrize("topology,idiom", SUPPORTED_FAMILIES)
    def test_every_family_race_free_variant_checks(self, topology,
                                                   idiom):
        scenario = generate_scenario(
            ScenarioSpec(topology=topology, idiom=idiom, gen_seed=11))
        assert scenario.oracle.kind == "race-free"
        assert scenario.formal is None
        check_ok(scenario.source, scenario.filename)

    @pytest.mark.parametrize("topology,idiom", SUPPORTED_FAMILIES)
    def test_every_family_racy_variant_checks(self, topology, idiom):
        scenario = generate_scenario(
            ScenarioSpec(topology=topology, idiom=idiom,
                         race_kinds=RACE_KINDS, gen_seed=11))
        assert scenario.oracle.kind == "racy"
        assert len(scenario.oracle.races) == len(RACE_KINDS)
        assert scenario.formal is not None
        check_ok(scenario.source, scenario.filename)

    def test_race_free_scenario_runs_clean(self):
        scenario = generate_scenario(
            _spec("worker-pool", "ownership-transfer", gen_seed=3))
        result = run_ok(scenario.source, seed=1)
        assert not result.reports, result.render_reports()

    def test_injected_race_names_are_distinct(self):
        scenario = generate_scenario(
            _spec(race_kinds=("write-write", "lock-elision"),
                  gen_seed=21))
        names = [r.global_name for r in scenario.oracle.races]
        assert len(set(names)) == len(names)
        for name in names:
            assert name in scenario.source


class TestSampling:
    def test_sampling_is_deterministic_and_covers_families(self):
        import random

        specs_a = sample_specs(random.Random(4), 26)
        specs_b = sample_specs(random.Random(4), 26)
        assert specs_a == specs_b
        assert len(specs_a) == 26
        # Two full cycles through the grid: every family appears.
        assert {s.family for s in specs_a} \
            == {f"{t}/{i}" for t, i in SUPPORTED_FAMILIES}

    def test_racy_fraction_is_respected(self):
        import random

        all_racy = sample_specs(random.Random(0), 10, racy_fraction=1.0)
        none_racy = sample_specs(random.Random(0), 10,
                                 racy_fraction=0.0)
        assert all(s.racy for s in all_racy)
        assert not any(s.racy for s in none_racy)

    def test_family_filter(self):
        import random

        specs = sample_specs(random.Random(0), 6,
                             families=[("pipeline", "read-mostly")])
        assert {s.family for s in specs} == {"pipeline/read-mostly"}


class TestFormalOracle:
    def test_machine_confirms_injected_races(self):
        scenario = generate_scenario(
            _spec(race_kinds=("write-write", "lock-elision"),
                  gen_seed=13))
        found = verify_formal(scenario, seeds=40)
        assert found, "no races to confirm"
        assert all(found.values()), found

    def test_race_free_scenario_has_no_formal_companion(self):
        scenario = generate_scenario(_spec(gen_seed=13))
        assert verify_formal(scenario) == {}
