"""The fuzz campaign: oracle scoring, violation artifacts, report
schema, and the corpus replay gate's failure modes.

The forced-violation tests work by lying to the pipeline: a racy source
labeled race-free must surface as a ``false-positive`` violation (with a
shrunk, replayable artifact), and a fabricated race on a clean source
must surface as ``missed-race`` — proving the oracle comparison actually
runs in both directions rather than rubber-stamping the generator.
"""

import copy
import json
import os
import shutil

import pytest

from repro.explore.shrink import load_artifact, replay_artifact
from repro.formal.gen import RaceSpec
from repro.fuzz.gen import generate_scenario
from repro.fuzz.pipeline import (
    FUZZ_REPORT_SCHEMA, VIOLATION_KINDS, FuzzConfig, FuzzReport,
    OracleViolation, fuzz_campaign, fuzz_scenario, replay_corpus,
    validate_fuzz_report,
)
from repro.fuzz.scenarios import Scenario, ScenarioOracle, ScenarioSpec

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")

#: a committed-corpus spec: its injected races are known to surface
#: within an 8-seed random+pct sweep (the corpus builder proved it)
RACY_SPEC = ScenarioSpec(
    topology="fork-join", idiom="lock-protected", n_workers=4,
    n_items=6, array_len=12, rounds=1, density=0.3,
    race_kinds=("write-write", "lock-elision"), gen_seed=1067521741)

CLEAN_SPEC = ScenarioSpec(
    topology="scatter-gather", idiom="barrier-phased", n_workers=2,
    n_items=3, array_len=8, rounds=2, density=0.6, gen_seed=5)

CONFIG = FuzzConfig(seeds=8, policies=("random", "pct"),
                    max_steps=120_000, shrink=False)


def _campaign_report():
    return fuzz_campaign(CONFIG, specs=[RACY_SPEC, CLEAN_SPEC])


@pytest.fixture(scope="module")
def report():
    return _campaign_report()


class TestCampaign:
    def test_tiny_campaign_has_no_violations(self, report):
        assert report.ok, [v.as_dict() for v in report.violations]
        assert len(report.scenarios) == 2
        racy_row = report.scenarios[0]
        assert racy_row["racy"] is True
        assert racy_row["sharc_keys"], \
            "injected races produced no reports"
        clean_row = report.scenarios[1]
        assert clean_row["racy"] is False
        assert clean_row["sharc_keys"] == []

    def test_every_scenario_ran_both_backends(self, report):
        per_sweep = CONFIG.seeds * len(CONFIG.policies)
        for row in report.scenarios:
            assert row["schedules"] == 2 * per_sweep
            assert row["crashes"] == 0

    def test_families_rollup(self, report):
        families = report.families
        assert families["fork-join/lock-protected"] \
            == {"scenarios": 1, "racy": 1, "violations": 0}
        assert families["scatter-gather/barrier-phased"]["racy"] == 0

    def test_report_payload_validates_and_renders(self, report):
        payload = report.as_dict()
        assert validate_fuzz_report(payload) == []
        assert payload["schema"] == FUZZ_REPORT_SCHEMA
        assert json.loads(json.dumps(payload)) == payload
        text = report.render()
        assert "2 scenarios" in text
        assert "no oracle violations" in text

    def test_campaign_sampling_is_deterministic(self):
        a = fuzz_campaign(FuzzConfig(budget=4, seeds=1,
                                     policies=("random",),
                                     gen_seed=2, shrink=False))
        b = fuzz_campaign(FuzzConfig(budget=4, seeds=1,
                                     policies=("random",),
                                     gen_seed=2, shrink=False))
        assert [r["scenario"] for r in a.scenarios] \
            == [r["scenario"] for r in b.scenarios]


class TestForcedViolations:
    def test_racy_source_labeled_clean_is_a_false_positive(self,
                                                           tmp_path):
        racy = generate_scenario(RACY_SPEC)
        lied = Scenario(spec=CLEAN_SPEC, source=racy.source,
                        oracle=ScenarioOracle(kind="race-free"))
        config = FuzzConfig(seeds=8, policies=("random", "pct"),
                            shrink=True, out_dir=str(tmp_path))
        report = FuzzReport(config=config)
        fuzz_scenario(lied, config, report)
        kinds = {v.kind for v in report.violations}
        assert "false-positive" in kinds
        fp = next(v for v in report.violations
                  if v.kind == "false-positive")
        assert fp.seed is not None and fp.policy
        assert fp.artifact and os.path.exists(fp.artifact)
        payload = load_artifact(fp.artifact)
        assert payload["fuzz"]["violation"] == "false-positive"
        assert payload["fuzz"]["spec"] == CLEAN_SPEC.as_dict()
        assert payload["fuzz"]["oracle"]["kind"] == "race-free"
        # The artifact replays to the reports it was shrunk to keep.
        replayed = replay_artifact(payload)
        assert set(payload["report_keys"]) \
            <= set(replayed.report_counts)

    def test_clean_source_with_fabricated_race_is_a_missed_race(self):
        clean = generate_scenario(CLEAN_SPEC)
        phantom = RaceSpec(kind="write-write",
                           global_name="fz_phantom",
                           threads=("w0", "w1"), values=(1, 2))
        lied = Scenario(spec=RACY_SPEC, source=clean.source,
                        oracle=ScenarioOracle(kind="racy",
                                              races=(phantom,)))
        config = FuzzConfig(seeds=2, policies=("random",),
                            shrink=False)
        report = FuzzReport(config=config)
        fuzz_scenario(lied, config, report)
        assert [v.kind for v in report.violations] == ["missed-race"]
        violation = report.violations[0]
        assert "fz_phantom" in violation.detail
        assert violation.artifact is None
        payload = report.as_dict()
        assert validate_fuzz_report(payload) == []
        assert "ORACLE VIOLATIONS" in report.render()


class TestViolationModel:
    def test_dict_round_trip(self):
        violation = OracleViolation(
            kind="backend-divergence", scenario="a.c", family="x/y",
            detail="steps diverged", seed=3, policy="random",
            artifact="/tmp/a.json")
        assert OracleViolation.from_dict(violation.as_dict()) \
            == violation

    def test_report_ok_tracks_violations(self):
        report = FuzzReport(config=FuzzConfig())
        assert report.ok
        report.violations.append(OracleViolation(
            kind="missed-race", scenario="a.c", family="x/y",
            detail="gone"))
        assert not report.ok


class TestValidateFuzzReport:
    def test_rejects_non_object(self):
        assert validate_fuzz_report([]) == ["payload is not an object"]

    def test_flags_schema_and_missing_sections(self):
        problems = validate_fuzz_report({"schema": "bogus/9"})
        assert any("schema" in p for p in problems)
        assert any("scenarios" in p for p in problems)
        assert any("violations" in p for p in problems)
        assert any("stats" in p for p in problems)
        assert any("families" in p for p in problems)

    def test_flags_bad_violation_rows(self, report):
        payload = copy.deepcopy(report.as_dict())
        payload["violations"] = [
            {"kind": "made-up", "scenario": "a.c", "family": "f",
             "detail": "d"},
            {"kind": "missed-race", "scenario": 7, "family": "f",
             "detail": "d"},
            "not-an-object",
        ]
        problems = validate_fuzz_report(payload)
        assert any("violations[0].kind" in p for p in problems)
        assert any("violations[1].scenario" in p for p in problems)
        assert any("violations[2]" in p for p in problems)

    def test_flags_negative_stats(self, report):
        payload = copy.deepcopy(report.as_dict())
        payload["stats"]["eraser_missed"] = -1
        problems = validate_fuzz_report(payload)
        assert any("stats.eraser_missed" in p for p in problems)

    def test_violation_kinds_is_the_closed_set(self):
        assert set(VIOLATION_KINDS) == {
            "missed-race", "false-positive", "unexpected-race",
            "backend-divergence"}


class TestReplayCorpusGate:
    """The gate must actually fail on tampered artifacts — a gate that
    cannot fire protects nothing."""

    @pytest.fixture
    def corpus_copy(self, tmp_path):
        name = sorted(os.listdir(CORPUS))[0]
        shutil.copy(os.path.join(CORPUS, name), tmp_path / name)
        return str(tmp_path), name

    def _rewrite(self, directory, name, mutate):
        path = os.path.join(directory, name)
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        mutate(payload)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

    def test_pristine_artifact_passes(self, corpus_copy):
        directory, name = corpus_copy
        rows = replay_corpus(directory, backends=("interp",))
        assert [row["ok"] for row in rows] == [True]
        assert rows[0]["artifact"] == name
        assert rows[0]["problems"] == []

    def test_tampered_expectation_fails_the_gate(self, corpus_copy):
        directory, name = corpus_copy

        def bump_steps(payload):
            payload["fuzz"]["expect"]["steps"] += 1

        self._rewrite(directory, name, bump_steps)
        rows = replay_corpus(directory, backends=("interp",))
        assert not rows[0]["ok"]
        assert any("steps diverged from recorded expectation" in p
                   for p in rows[0]["problems"])

    def test_phantom_report_key_fails_the_gate(self, corpus_copy):
        directory, name = corpus_copy

        def add_phantom(payload):
            payload["report_keys"].append("write conflict ghost@1")

        self._rewrite(directory, name, add_phantom)
        rows = replay_corpus(directory, backends=("interp",))
        assert not rows[0]["ok"]
        assert any("missing expected reports" in p
                   for p in rows[0]["problems"])

    def test_unrunnable_artifact_reports_a_crash_row(self, corpus_copy):
        directory, name = corpus_copy

        def break_source(payload):
            payload["source"] = "int main() { return syntax error"

        self._rewrite(directory, name, break_source)
        rows = replay_corpus(directory, backends=("interp",))
        assert not rows[0]["ok"]
        assert any("replay crashed" in p for p in rows[0]["problems"])

    def test_name_filter_selects_a_subset(self, tmp_path):
        names = sorted(os.listdir(CORPUS))[:2]
        for name in names:
            shutil.copy(os.path.join(CORPUS, name), tmp_path / name)
        rows = replay_corpus(str(tmp_path), backends=("interp",),
                             names=[names[1]])
        assert [row["artifact"] for row in rows] == [names[1]]
