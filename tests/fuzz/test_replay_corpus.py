"""The committed corpus replays deterministically, forever.

Every artifact under ``tests/fuzz/corpus/`` is a ddmin-shrunk failing
schedule from a generated scenario, saved together with the full
run-to-completion execution recorded when it was built
(``fuzz.expect``).  This suite re-runs each one under both the
tree-walking and the compiled backend and holds the replay to that
recording bit-for-bit — same executed trace, same step count, same
report multiset.  Any divergence means either a backend broke replay
determinism or the checker's verdict on a pinned schedule changed; both
are regressions, which is the point of committing the corpus.
"""

import json
import os

import pytest

from repro.fuzz.pipeline import replay_corpus
from repro.fuzz.replay import seed_from_artifact
from repro.fuzz.scenarios import ScenarioOracle, ScenarioSpec

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")
ARTIFACTS = sorted(n for n in os.listdir(CORPUS)
                   if n.endswith(".json"))


def _payload(name):
    with open(os.path.join(CORPUS, name), encoding="utf-8") as handle:
        return json.load(handle)


class TestCorpusShape:
    def test_corpus_has_at_least_ten_artifacts(self):
        assert len(ARTIFACTS) >= 10

    def test_corpus_spans_the_family_grid(self):
        specs = [ScenarioSpec.from_dict(_payload(n)["fuzz"]["spec"])
                 for n in ARTIFACTS]
        assert len({s.topology for s in specs}) >= 4
        assert len({s.idiom for s in specs}) >= 3
        # Family diversity, not twelve copies of one scenario.
        assert len({s.family for s in specs}) >= 10

    @pytest.mark.parametrize("name", ARTIFACTS)
    def test_artifact_schema(self, name):
        payload = _payload(name)
        assert payload["kind"] == "sharc-schedule"
        assert payload["checker"] == "sharc"
        assert payload["source"]
        assert payload["trace"], "empty pinned schedule"
        assert payload["report_keys"], "artifact preserves no failure"
        seed, policy = seed_from_artifact(payload)
        assert seed >= 0 and policy
        fuzz = payload["fuzz"]
        assert fuzz["violation"] == "regression"
        expect = fuzz["expect"]
        assert expect["steps"] > 0
        assert expect["trace"]
        assert set(payload["report_keys"]) <= set(
            expect["report_counts"])

    @pytest.mark.parametrize("name", ARTIFACTS)
    def test_saved_failure_matches_the_injected_oracle(self, name):
        payload = _payload(name)
        oracle = ScenarioOracle.from_dict(payload["fuzz"]["oracle"])
        assert oracle.kind == "racy"
        assert oracle.matched_races(payload["report_keys"]), \
            "saved reports do not hit the injected race"


class TestCorpusReplay:
    @pytest.mark.parametrize("name", ARTIFACTS)
    def test_artifact_replays_bit_identically_under_both_backends(
            self, name):
        rows = replay_corpus(CORPUS, backends=("interp", "compiled"),
                             names=[name])
        assert [row["backend"] for row in rows] \
            == ["interp", "compiled"]
        bad = [row for row in rows if not row["ok"]]
        assert not bad, bad
