"""The replay frontend: artifact coordinates, trace conversion, and the
shrink -> save -> replay -> re-shrink fixpoint.

The fixpoint property is the round-trip contract: because the shrinker
is deterministic (ReplayPolicy over the saved trace, fixed ddmin order),
re-shrinking from an artifact's own coordinates must land on exactly the
same minimal trace — any drift means save/load dropped something the
shrinker depends on.
"""

import json

import pytest

from repro.explore import (
    explore_source, load_artifact, replay_artifact, save_artifact,
    shrink_failure,
)
from repro.fuzz.replay import (
    replay_trace_file, reshrink_artifact, schedule_from_events,
    schedule_from_trace_file, seed_from_artifact,
)
from repro.obs import TraceConfig
from repro.obs.events import Event
from repro.obs.export import write_jsonl
from repro.runtime.interp import run_source

RACY = """
int counter = 0;
void *bump(void *arg) {
  int i;
  for (i = 0; i < 5; i++) counter = counter + 1;
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
"""


class TestSeedFromArtifact:
    def test_accepts_plain_coordinates(self):
        assert seed_from_artifact({"seed": 42, "policy": "random"}) \
            == (42, "random")

    @pytest.mark.parametrize("seed", [True, False, "7", 3.0, None])
    def test_rejects_non_int_seeds(self, seed):
        with pytest.raises(ValueError, match="seed must be an int"):
            seed_from_artifact({"seed": seed, "policy": "random"})

    @pytest.mark.parametrize("policy", [7, "", None, 0.5])
    def test_rejects_non_string_policies(self, policy):
        with pytest.raises(ValueError, match="policy must be"):
            seed_from_artifact({"seed": 1, "policy": policy})


class TestShrinkFixpoint:
    """shrink -> save -> load -> replay -> re-shrink, per policy, with
    multi-digit seeds (a bool/str seed surviving the JSON round trip is
    exactly the bug seed_from_artifact guards against)."""

    @pytest.mark.parametrize("policy", ["random", "round-robin", "pct",
                                        "pb"])
    def test_round_trip_is_a_fixpoint(self, policy, tmp_path):
        summary = explore_source(RACY, "racy.c", checker="sharc",
                                 seeds=6, seed_start=10,
                                 policies=(policy,), max_steps=60_000)
        outcome = summary.first_failure
        assert outcome is not None, f"{policy}: no failing schedule"
        assert outcome.seed >= 10  # multi-digit, not a truthy bool
        first = shrink_failure(RACY, "racy.c", seed=outcome.seed,
                               policy=outcome.policy, checker="sharc",
                               target_keys=outcome.report_keys,
                               max_steps=60_000)
        path = tmp_path / f"{policy}.json"
        save_artifact(first, str(path))
        payload = load_artifact(str(path))
        assert seed_from_artifact(payload) \
            == (outcome.seed, outcome.policy)
        # The saved minimal schedule still reproduces its reports.
        replayed = replay_artifact(payload)
        assert set(payload["report_keys"]) \
            <= set(replayed.report_counts)
        # Re-shrinking from the artifact's own coordinates is a no-op.
        second = reshrink_artifact(payload)
        assert second.trace == first.trace
        assert second.original_trace == first.original_trace
        assert second.report_keys == first.report_keys
        assert second.switches == first.switches

    def test_fixpoint_survives_a_json_byte_round_trip(self, tmp_path):
        summary = explore_source(RACY, "racy.c", checker="sharc",
                                 seeds=6, seed_start=10,
                                 policies=("random",),
                                 max_steps=60_000)
        outcome = summary.first_failure
        first = shrink_failure(RACY, "racy.c", seed=outcome.seed,
                               policy=outcome.policy, checker="sharc",
                               target_keys=outcome.report_keys,
                               max_steps=60_000)
        path = tmp_path / "a.json"
        save_artifact(first, str(path))
        # Decode/re-encode the raw bytes: what a git checkout sees.
        reloaded = json.loads(path.read_text())
        path.write_text(json.dumps(reloaded))
        second = reshrink_artifact(load_artifact(str(path)))
        assert second.trace == first.trace


def _run_event(tid, items):
    return Event(cat="sched", name="run", tid=tid, ts=0, dur=items,
                 args={"items": items})


class TestScheduleFromEvents:
    def test_extracts_and_merges_consecutive_bursts(self):
        events = [
            _run_event(1, 3),
            _run_event(1, 2),  # same tid: merged
            Event(cat="check", name="chkread", tid=2, ts=0, dur=1,
                  args={}),  # not a sched event
            _run_event(2, 4),
            Event(cat="sched", name="block", tid=2, ts=0, dur=0,
                  args={}),  # sched but not a run burst
            _run_event(1, 1),
        ]
        assert schedule_from_events(events) == [(1, 5), (2, 4), (1, 1)]

    def test_skips_empty_bursts(self):
        events = [_run_event(1, 2), _run_event(2, 0), _run_event(2, 3)]
        assert schedule_from_events(events) == [(1, 2), (2, 3)]

    def test_empty_stream(self):
        assert schedule_from_events([]) == []


class TestTraceFileRoundTrip:
    @pytest.fixture
    def traced_run(self):
        return run_source(RACY, "racy.c", seed=3, trace=TraceConfig(),
                          record_trace=True)

    def test_jsonl_trace_reproduces_the_recorded_schedule(
            self, traced_run, tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(str(path), traced_run.events, traced_run.reports,
                    thread_names=traced_run.thread_names)
        schedule = schedule_from_trace_file(str(path))
        assert schedule == traced_run.trace
        assert schedule == schedule_from_events(traced_run.events)

    def test_schedule_artifact_is_accepted_as_a_trace(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text(json.dumps({
            "kind": "sharc-schedule",
            "trace": [[1, 3], [2, 2], [1, 1]],
        }))
        assert schedule_from_trace_file(str(path)) \
            == [(1, 3), (2, 2), (1, 1)]

    def test_replay_trace_file_reproduces_the_run(self, traced_run,
                                                  tmp_path):
        path = tmp_path / "run.jsonl"
        write_jsonl(str(path), traced_run.events, traced_run.reports,
                    thread_names=traced_run.thread_names)
        replayed = replay_trace_file(RACY, str(path),
                                     filename="racy.c")
        assert replayed.trace == traced_run.trace
        assert replayed.report_counts == traced_run.report_counts

    def test_replay_trace_file_rejects_traces_without_bursts(
            self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_jsonl(str(path), [Event(cat="check", name="chkread",
                                      tid=1, ts=0, dur=1, args={})], [])
        with pytest.raises(ValueError, match="no sched/run events"):
            replay_trace_file(RACY, str(path))
