"""Pretty-printer tests: rendering and reparse stability."""

import pytest

from repro.cfront.parser import parse_expression, parse_program
from repro.cfront.pretty import pretty_expr, pretty_program, pretty_type


class TestExprRendering:
    @pytest.mark.parametrize("text", [
        "x", "42", "NULL", "f(a, b)", "a->b.c", "v[3]",
        "sizeof(int)", "&x", "x++", "--y",
    ])
    def test_atoms_render_exactly(self, text):
        assert pretty_expr(parse_expression(text)) == text

    def test_binop_parenthesized(self):
        assert pretty_expr(parse_expression("1 + 2 * 3")) == \
            "(1 + (2 * 3))"

    def test_string_escapes_roundtrip(self):
        e = parse_expression(r'"a\nb\"c"')
        again = parse_expression(pretty_expr(e))
        assert again.value == e.value

    def test_scast_renders(self):
        text = pretty_expr(parse_expression("SCAST(char private *, p)"))
        assert text.startswith("SCAST(") and "private" in text

    def test_expr_reparse_fixpoint(self):
        for text in ["a = b = c + 1", "p->q[i] * 2", "!(a && b) || c",
                     "x ? y : z", "(a, b, c)", "*p++"]:
            once = pretty_expr(parse_expression(text))
            twice = pretty_expr(parse_expression(once))
            assert once == twice, text


class TestTypeRendering:
    def render_global(self, source):
        prog = parse_program(source)
        decl = prog.globals()[0]
        return pretty_type(decl.qtype, decl.name)

    def test_pointer_with_modes(self):
        out = self.render_global("char dynamic * private p;")
        assert "dynamic" in out and "private" in out

    def test_locked_mode(self):
        prog = parse_program(
            "typedef struct s { mutex *m; int locked(m) v; } s_t;")
        field = dict(prog.structs.fields("s"))["v"]
        assert "locked(m)" in pretty_type(field, "v")

    def test_function_pointer(self):
        out = self.render_global("void (*cb)(int x);")
        assert "(*cb)" in out

    def test_hide_inferred_modes(self):
        prog = parse_program("private int x;")
        decl = prog.globals()[0]
        shown = pretty_type(decl.qtype, "x", show_inferred=False)
        assert "private" in shown  # explicit stays
        decl.qtype.explicit = False
        hidden = pretty_type(decl.qtype, "x", show_inferred=False)
        assert "private" not in hidden


class TestProgramRendering:
    SOURCE = """
    typedef struct node { struct node *next; int v; } node_t;
    int total = 0;
    int sum(node_t *head) {
      int acc = 0;
      while (head) {
        acc = acc + head->v;
        head = head->next;
      }
      return acc;
    }
    """

    def test_program_reparses(self):
        prog = parse_program(self.SOURCE)
        text = pretty_program(prog)
        again = parse_program(text)
        assert [f.name for f in again.functions()] == ["sum"]
        assert again.structs.is_defined("node")

    def test_program_render_fixpoint(self):
        prog = parse_program(self.SOURCE)
        once = pretty_program(prog)
        twice = pretty_program(parse_program(once))
        assert once == twice

    def test_all_statement_forms_render(self):
        source = """
        void f(int n) {
          int i;
          for (i = 0; i < n; i++) {
            if (i % 2) continue;
            else i = i + 1;
          }
          do n--; while (n > 0);
          while (1) break;
          return;
        }
        """
        prog = parse_program(source)
        text = pretty_program(prog)
        again = parse_program(text)
        assert pretty_program(again) == text
