"""Unit tests for the parser: declarations, qualifier placement,
statements, expressions, and error reporting."""

import pytest

from repro.errors import ParseError
from repro.cfront import cast as A
from repro.cfront.ctypes import (
    ArrayType, FuncType, Prim, PtrType, StructType,
)
from repro.cfront.parser import parse_expression, parse_program
from repro.sharc.modes import ModeKind


def first_global(source):
    prog = parse_program(source)
    return prog.globals()[0]


def first_func(source):
    prog = parse_program(source)
    return prog.functions()[0]


class TestDeclarations:
    def test_simple_int(self):
        decl = first_global("int x;")
        assert decl.name == "x"
        assert isinstance(decl.qtype.base, Prim)
        assert decl.qtype.base.name == "int"

    def test_initializer(self):
        decl = first_global("int x = 41 + 1;")
        assert isinstance(decl.init, A.Binop)

    def test_multiple_declarators(self):
        prog = parse_program("int a, b, c;")
        assert [g.name for g in prog.globals()] == ["a", "b", "c"]

    def test_pointer(self):
        decl = first_global("char *p;")
        assert isinstance(decl.qtype.base, PtrType)
        assert decl.qtype.base.target.base.name == "char"

    def test_double_pointer(self):
        decl = first_global("int **pp;")
        assert isinstance(decl.qtype.base.target.base, PtrType)

    def test_array(self):
        decl = first_global("long v[8];")
        assert isinstance(decl.qtype.base, ArrayType)
        assert decl.qtype.base.length == 8

    def test_array_of_pointers(self):
        decl = first_global("char *names[4];")
        assert isinstance(decl.qtype.base, ArrayType)
        assert isinstance(decl.qtype.base.elem.base, PtrType)

    def test_unsigned_combinations(self):
        for text, name in [("unsigned x;", "unsigned int"),
                           ("unsigned long x;", "unsigned long"),
                           ("unsigned char x;", "unsigned char"),
                           ("long int x;", "long"),
                           ("signed int x;", "int")]:
            decl = first_global(text)
            assert decl.qtype.base.name == name, text

    def test_static_and_extern(self):
        prog = parse_program("static int a; extern int b;")
        assert prog.globals()[0].storage == "static"
        assert prog.globals()[1].storage == "extern"

    def test_const_is_accepted_and_ignored(self):
        decl = first_global("const int x;")
        assert decl.qtype.base.name == "int"


class TestQualifierPlacement:
    def test_prefix_qualifier(self):
        decl = first_global("private int x;")
        assert decl.qtype.mode.kind is ModeKind.PRIVATE
        assert decl.qtype.explicit

    def test_postfix_qualifier(self):
        decl = first_global("int dynamic x;")
        assert decl.qtype.mode.kind is ModeKind.DYNAMIC

    def test_qualifier_after_star_binds_to_pointer(self):
        decl = first_global("char * dynamic p;")
        assert decl.qtype.mode.kind is ModeKind.DYNAMIC

    def test_qualifier_before_star_binds_to_target(self):
        decl = first_global("char readonly * p;")
        assert decl.qtype.mode is None
        assert decl.qtype.base.target.mode.kind is ModeKind.READONLY

    def test_both_positions(self):
        decl = first_global("char dynamic * private p;")
        assert decl.qtype.mode.kind is ModeKind.PRIVATE
        assert decl.qtype.base.target.mode.kind is ModeKind.DYNAMIC

    def test_locked_records_expression(self):
        prog = parse_program("""
            typedef struct s { mutex *mut; char *locked(mut) d; } s_t;
        """)
        field = dict(prog.structs.fields("s"))["d"]
        assert field.mode.kind is ModeKind.LOCKED
        assert field.mode.lock == "mut"

    def test_locked_with_path_expression(self):
        prog = parse_program("""
            typedef struct q { mutex *m; } q_t;
            void f(q_t *h) { char locked(h->m) *p; }
        """)
        # Just checking it parses; the mode is on the pointee.
        func = prog.functions()[0]
        assert func.name == "f"

    def test_unannotated_has_no_mode(self):
        decl = first_global("int x;")
        assert decl.qtype.mode is None
        assert not decl.qtype.explicit


class TestStructsAndTypedefs:
    def test_struct_definition(self):
        prog = parse_program("struct point { int x; int y; };")
        assert prog.structs.is_defined("point")
        assert [f for f, _ in prog.structs.fields("point")] == ["x", "y"]

    def test_self_referential_struct(self):
        prog = parse_program("struct node { struct node *next; int v; };")
        next_t = dict(prog.structs.fields("node"))["next"]
        assert isinstance(next_t.base, PtrType)
        assert next_t.base.target.base.name == "node"

    def test_typedef_of_struct(self):
        prog = parse_program(
            "typedef struct pair { int a; int b; } pair_t;"
            "pair_t p;")
        decl = prog.globals()[0]
        assert isinstance(decl.qtype.base, StructType)
        assert decl.qtype.base.name == "pair"

    def test_typedef_of_pointer(self):
        prog = parse_program("typedef char *str_t; str_t s;")
        assert isinstance(prog.globals()[0].qtype.base, PtrType)

    def test_racy_typedef_marks_struct(self):
        prog = parse_program(
            "typedef struct spin { int s; } racy spin_t;")
        assert prog.structs.is_racy("spin")

    def test_prelude_mutex_and_cond(self):
        prog = parse_program("mutex m; cond c;")
        assert prog.structs.is_racy("__mutex")
        assert prog.structs.is_racy("__cond")

    def test_function_pointer_field(self):
        prog = parse_program(
            "struct ops { void (*run)(int x); int id; };")
        run_t = dict(prog.structs.fields("ops"))["run"]
        assert isinstance(run_t.base, PtrType)
        assert isinstance(run_t.base.target.base, FuncType)


class TestFunctions:
    def test_definition_and_params(self):
        func = first_func("int add(int a, int b) { return a + b; }")
        assert func.name == "add"
        assert func.param_names == ["a", "b"]
        assert len(func.qtype.base.params) == 2

    def test_prototype(self):
        prog = parse_program("int f(void);")
        assert prog.prototypes()[0].name == "f"

    def test_void_param_list(self):
        func = first_func("int f(void) { return 0; }")
        assert func.qtype.base.params == []

    def test_varargs(self):
        prog = parse_program("int log_it(char *fmt, ...);")
        assert prog.prototypes()[0].qtype.base.varargs

    def test_array_param_decays(self):
        func = first_func("long sum(int v[], int n) { return 0; }")
        assert isinstance(func.qtype.base.params[0].base, PtrType)

    def test_private_param(self):
        func = first_func("void use(char private *p) { }")
        target = func.qtype.base.params[0].base.target
        assert target.mode.kind is ModeKind.PRIVATE


class TestStatements:
    def source(self, body):
        return f"void f() {{ {body} }}"

    def stmts(self, body):
        return first_func(self.source(body)).body.stmts

    def test_if_else(self):
        (s,) = self.stmts("if (1) ; else ;")
        assert isinstance(s, A.If) and s.other is not None

    def test_while(self):
        (s,) = self.stmts("while (x) x = x - 1;")
        assert isinstance(s, A.While)

    def test_do_while(self):
        (s,) = self.stmts("do x = 1; while (0);")
        assert isinstance(s, A.DoWhile)

    def test_for_with_decl(self):
        (s,) = self.stmts("for (int i = 0; i < 3; i++) ;")
        assert isinstance(s, A.For)
        assert isinstance(s.init, A.DeclStmt)

    def test_for_empty_clauses(self):
        (s,) = self.stmts("for (;;) break;")
        assert s.init is None and s.cond is None and s.step is None

    def test_break_continue(self):
        (s,) = self.stmts("while (1) { break; continue; }")
        body = s.body.stmts
        assert isinstance(body[0], A.Break)
        assert isinstance(body[1], A.Continue)

    def test_return_value(self):
        (s,) = self.stmts("return 3;")
        assert isinstance(s, A.Return) and s.value.value == 3

    def test_local_declaration(self):
        (s,) = self.stmts("int x = 5;")
        assert isinstance(s, A.DeclStmt)

    def test_goto_rejected(self):
        with pytest.raises(ParseError, match="goto"):
            parse_program(self.source("goto done;"))

    def test_switch_rejected(self):
        with pytest.raises(ParseError, match="switch"):
            parse_program(self.source("switch (x) { }"))


class TestExpressions:
    def expr(self, text):
        return parse_expression(text)

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+" and e.rhs.op == "*"

    def test_precedence_comparison_over_logic(self):
        e = self.expr("a < b && c > d")
        assert e.op == "&&"

    def test_assignment_right_associative(self):
        e = self.expr("a = b = 1")
        assert isinstance(e.rhs, A.Assign)

    def test_compound_assign(self):
        e = self.expr("x += 2")
        assert e.op == "+="

    def test_ternary(self):
        e = self.expr("a ? b : c")
        assert isinstance(e, A.CondExpr)

    def test_unary_chain(self):
        e = self.expr("!*p")
        assert e.op == "!" and e.operand.op == "*"

    def test_postfix_incr(self):
        e = self.expr("x++")
        assert isinstance(e, A.Unop) and e.postfix

    def test_prefix_incr(self):
        e = self.expr("++x")
        assert isinstance(e, A.Unop) and not e.postfix

    def test_member_chain(self):
        e = self.expr("a->b.c")
        assert isinstance(e, A.Member) and not e.arrow
        assert e.obj.arrow

    def test_index_and_call(self):
        e = self.expr("f(x)[3]")
        assert isinstance(e, A.Index)
        assert isinstance(e.arr, A.Call)

    def test_scast(self):
        e = self.expr("SCAST(char private *, p)")
        assert isinstance(e, A.SCastExpr)
        assert e.to.base.target.mode.kind is ModeKind.PRIVATE

    def test_cast_in_function_body(self):
        func = first_func("void f() { long v = (long) 3; }")
        decl = func.body.stmts[0].decls[0]
        assert isinstance(decl.init, A.CastExpr)

    def test_sizeof_type(self):
        e = self.expr("sizeof(int)")
        assert isinstance(e, A.SizeofExpr) and e.of_type is not None

    def test_sizeof_expr(self):
        e = self.expr("sizeof x")
        assert e.of_expr is not None

    def test_address_of(self):
        e = self.expr("&x")
        assert e.op == "&"

    def test_null_keyword(self):
        e = self.expr("NULL")
        assert isinstance(e, A.NullLit)

    def test_comma(self):
        e = self.expr("a, b, c")
        assert isinstance(e, A.CommaExpr) and len(e.parts) == 3


class TestParseErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("int x")

    def test_bad_type(self):
        with pytest.raises(ParseError):
            parse_program("frobnicate x;")

    def test_unbalanced_braces(self):
        with pytest.raises(ParseError):
            parse_program("void f() { if (1) { }")

    def test_error_carries_location(self):
        try:
            parse_program("int x = ;")
        except ParseError as exc:
            assert exc.loc.line == 1
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
