"""Unit tests for the type representation: sizes, layout, shapes."""

import pytest

from repro.cfront.ctypes import (
    ArrayType, FuncType, Prim, PtrType, QualType, StructTable, StructType,
    make_prim, make_ptr, modes_agree, shape_equal,
)
from repro.cfront.parser import parse_program
from repro.sharc import modes as M


@pytest.fixture
def structs():
    return StructTable()


class TestSizes:
    def test_primitive_sizes(self, structs):
        for name, size in [("char", 1), ("short", 2), ("int", 4),
                           ("long", 8), ("float", 4), ("double", 8),
                           ("unsigned long", 8)]:
            assert Prim(name).size(structs) == size

    def test_pointer_size(self, structs):
        p = PtrType(make_prim("char"))
        assert p.size(structs) == 8

    def test_array_size(self, structs):
        a = ArrayType(make_prim("int"), 10)
        assert a.size(structs) == 40

    def test_function_type_sized_as_pointer(self, structs):
        f = FuncType(make_prim("void"), [])
        assert f.size(structs) == 8


class TestStructLayout:
    def test_packing_with_alignment(self, structs):
        structs.define("s", [("c", make_prim("char")),
                             ("i", make_prim("int")),
                             ("p", make_ptr(make_prim("char")))])
        layout = structs.layout("s")
        assert layout.field("c").offset == 0
        assert layout.field("i").offset == 4   # aligned to 4
        assert layout.field("p").offset == 8   # aligned to 8
        assert layout.size == 16
        assert layout.align == 8

    def test_trailing_padding(self, structs):
        structs.define("t", [("p", make_ptr(make_prim("int"))),
                             ("c", make_prim("char"))])
        assert structs.layout("t").size == 16  # 9 rounded to align 8

    def test_nested_struct_size(self, structs):
        structs.define("inner", [("a", make_prim("long"))])
        structs.define("outer", [("i", QualType(StructType("inner"))),
                                 ("b", make_prim("char"))])
        assert structs.layout("outer").size == 16

    def test_unknown_field_raises(self, structs):
        structs.define("s", [("x", make_prim("int"))])
        with pytest.raises(KeyError):
            structs.layout("s").field("nope")

    def test_undefined_struct_raises(self, structs):
        with pytest.raises(KeyError):
            structs.layout("ghost")

    def test_redefinition_invalidates_layout_cache(self, structs):
        structs.define("s", [("x", make_prim("int"))])
        assert structs.layout("s").size == 4
        structs.define("s", [("x", make_prim("long"))])
        assert structs.layout("s").size == 8


class TestShapes:
    def test_shape_ignores_modes(self):
        a = make_ptr(make_prim("char", M.PRIVATE), M.DYNAMIC)
        b = make_ptr(make_prim("char", M.DYNAMIC), M.PRIVATE)
        assert shape_equal(a, b)

    def test_shape_distinguishes_base(self):
        a = make_ptr(make_prim("char"))
        b = make_ptr(make_prim("int"))
        assert not shape_equal(a, b)

    def test_function_shapes_by_signature(self):
        f1 = QualType(FuncType(make_prim("void"), [make_prim("int")]))
        f2 = QualType(FuncType(make_prim("void"), [make_prim("int")]))
        f3 = QualType(FuncType(make_prim("void"), [make_prim("long")]))
        assert shape_equal(f1, f2)
        assert not shape_equal(f1, f3)

    def test_modes_agree_below_outermost(self):
        a = make_ptr(make_prim("char", M.DYNAMIC), M.PRIVATE)
        b = make_ptr(make_prim("char", M.DYNAMIC), M.DYNAMIC)
        assert modes_agree(a, b)
        c = make_ptr(make_prim("char", M.PRIVATE), M.PRIVATE)
        assert not modes_agree(a, c)


class TestWalkAndClone:
    def test_walk_visits_all_positions(self):
        t = make_ptr(make_ptr(make_prim("int")))
        assert len(list(t.walk())) == 3

    def test_walk_function_type(self):
        f = QualType(FuncType(make_prim("int"),
                              [make_ptr(make_prim("char"))]))
        positions = list(f.walk())
        assert len(positions) == 4  # func, ret, param, param target

    def test_clone_is_deep(self):
        t = make_ptr(make_prim("char", M.DYNAMIC))
        c = t.clone()
        c.base.target.mode = M.PRIVATE
        assert t.base.target.mode is M.DYNAMIC

    def test_clone_resets_qvar(self):
        t = make_prim("int")
        t.qvar = 7
        assert t.clone().qvar is None


class TestConvenience:
    def test_pointee_of_array(self):
        t = QualType(ArrayType(make_prim("int", M.DYNAMIC), 4))
        assert t.pointee().mode is M.DYNAMIC

    def test_pointee_of_non_pointer_raises(self):
        with pytest.raises(ValueError):
            make_prim("int").pointee()

    def test_is_void_ptr(self):
        t = make_ptr(make_prim("void"))
        assert t.is_void_ptr
        assert not make_ptr(make_prim("char")).is_void_ptr

    def test_prelude_mutex_layout(self):
        prog = parse_program("mutex m;")
        assert prog.structs.layout("__mutex").size == 8
