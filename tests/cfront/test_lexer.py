"""Unit tests for the tokenizer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LexError
from repro.cfront.lexer import Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (tok,) = tokenize("hello")[:-1]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "hello"

    def test_identifier_with_underscore_and_digits(self):
        (tok,) = tokenize("_my_var2")[:-1]
        assert tok.kind is TokenKind.IDENT

    def test_keywords_are_not_identifiers(self):
        for kw in ("int", "while", "private", "dynamic", "SCAST",
                   "locked", "racy", "readonly", "struct"):
            (tok,) = tokenize(kw)[:-1]
            assert tok.kind is TokenKind.KEYWORD, kw

    def test_sharc_qualifiers_are_keywords(self):
        assert kinds("private readonly racy dynamic locked") == \
            [TokenKind.KEYWORD] * 5

    def test_locations_track_lines_and_columns(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].loc.line == 1 and tokens[0].loc.col == 1
        assert tokens[1].loc.line == 2 and tokens[1].loc.col == 3


class TestNumbers:
    def test_decimal_int(self):
        (tok,) = tokenize("42")[:-1]
        assert tok.kind is TokenKind.INT and tok.value == 42

    def test_hex_int(self):
        (tok,) = tokenize("0x1F")[:-1]
        assert tok.value == 31

    def test_float(self):
        (tok,) = tokenize("3.25")[:-1]
        assert tok.kind is TokenKind.FLOAT and tok.value == 3.25

    def test_float_with_exponent(self):
        (tok,) = tokenize("1e3")[:-1]
        assert tok.kind is TokenKind.FLOAT and tok.value == 1000.0

    def test_float_negative_exponent(self):
        (tok,) = tokenize("2.5e-2")[:-1]
        assert tok.value == 0.025

    def test_integer_suffixes_ignored(self):
        (tok,) = tokenize("10UL")[:-1]
        assert tok.kind is TokenKind.INT and tok.value == 10

    def test_member_access_is_not_float(self):
        # "x.y" must not lex the dot into a number.
        assert texts("x.y") == ["x", ".", "y"]

    @given(st.integers(min_value=0, max_value=2**62))
    def test_any_decimal_roundtrips(self, n):
        (tok,) = tokenize(str(n))[:-1]
        assert tok.value == n


class TestStringsAndChars:
    def test_simple_string(self):
        (tok,) = tokenize('"hello"')[:-1]
        assert tok.kind is TokenKind.STRING and tok.value == "hello"

    def test_string_escapes(self):
        (tok,) = tokenize(r'"a\n\t\\\"b\0"')[:-1]
        assert tok.value == 'a\n\t\\"b\0'

    def test_hex_escape(self):
        (tok,) = tokenize(r'"\x41"')[:-1]
        assert tok.value == "A"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_char_literal(self):
        (tok,) = tokenize("'a'")[:-1]
        assert tok.kind is TokenKind.CHAR and tok.value == ord("a")

    def test_char_escape(self):
        (tok,) = tokenize(r"'\n'")[:-1]
        assert tok.value == ord("\n")

    def test_unterminated_char_raises(self):
        with pytest.raises(LexError):
            tokenize("'ab")


class TestPunctuation:
    def test_longest_match_wins(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]
        assert texts("a->b") == ["a", "->", "b"]
        assert texts("a--b") == ["a", "--", "b"]

    def test_all_compound_operators(self):
        ops = ["->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
               "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
               "^=", "<<=", ">>=", "..."]
        for op in ops:
            (tok,) = tokenize(op)[:-1]
            assert tok.text == op, op

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestTrivia:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_include_is_skipped(self):
        assert texts('#include <stdio.h>\nint') == ["int"]

    def test_define_expands_integers(self):
        tokens = tokenize("#define N 8\nN")
        assert tokens[0].kind is TokenKind.INT
        assert tokens[0].value == 8

    def test_define_hex(self):
        tokens = tokenize("#define MASK 0xFF\nMASK")
        assert tokens[0].value == 255

    def test_non_integer_define_raises(self):
        with pytest.raises(LexError):
            tokenize("#define F foo\nF")

    def test_unknown_directive_raises(self):
        with pytest.raises(LexError):
            tokenize("#ifdef X\n")


@given(st.lists(
    st.sampled_from(["x", "42", "+", "while", "private", '"s"',
                     "->", "3.5", "(", ")", "{", "}"]),
    min_size=0, max_size=30))
def test_token_stream_roundtrip(parts):
    """Lexing the space-joined rendering of tokens reproduces them."""
    source = " ".join(parts)
    tokens = tokenize(source)
    rendered = " ".join(
        f'"{t.text}"' if t.kind is TokenKind.STRING else t.text
        for t in tokens[:-1])
    again = tokenize(rendered)
    assert [(t.kind, t.text) for t in again] == \
        [(t.kind, t.text) for t in tokens]
