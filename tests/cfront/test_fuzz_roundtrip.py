"""Grammar fuzzing: random mini-C programs roundtrip through
parse → pretty-print → parse → pretty-print to a fixpoint, and the whole
static pipeline never crashes on them (it may report diagnostics)."""

import random

from hypothesis import given, settings, strategies as st

from repro.cfront.parser import parse_program
from repro.cfront.pretty import pretty_program
from repro.sharc.checker import check_source

PRIMS = ["int", "long", "char", "double"]
MODES = ["", "private ", "readonly ", "racy ", "dynamic "]


class SourceGen:
    """Generates random but syntactically valid mini-C sources."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.globals: list[str] = []
        self.structs: list[str] = []
        self.counter = 0

    def name(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def gen_type(self, depth: int = 0) -> str:
        base = self.rng.choice(PRIMS)
        mode = self.rng.choice(MODES)
        stars = ""
        if depth < 2 and self.rng.random() < 0.4:
            stars = "*" + self.rng.choice(MODES)
        return f"{base} {mode}{stars}".strip()

    def gen_struct(self) -> str:
        name = self.name("s")
        fields = []
        for _ in range(self.rng.randint(1, 4)):
            fields.append(f"  {self.gen_type()} {self.name('f')};")
        self.structs.append(name)
        return "struct %s {\n%s\n};" % (name, "\n".join(fields))

    def gen_expr(self, vars_: list[str], depth: int = 0) -> str:
        if depth >= 3 or not vars_ or self.rng.random() < 0.4:
            if vars_ and self.rng.random() < 0.5:
                return self.rng.choice(vars_)
            return str(self.rng.randint(0, 99))
        op = self.rng.choice(["+", "-", "*", "==", "<", "&&"])
        return (f"({self.gen_expr(vars_, depth + 1)} {op} "
                f"{self.gen_expr(vars_, depth + 1)})")

    def gen_stmt(self, vars_: list[str], depth: int = 0) -> str:
        kind = self.rng.choice(
            ["assign", "if", "while", "for", "decl", "ret"]
            if depth < 2 else ["assign", "decl", "ret"])
        if kind == "assign" and vars_:
            target = self.rng.choice(vars_)
            return f"{target} = {self.gen_expr(vars_)};"
        if kind == "if":
            inner = self.gen_stmt(vars_, depth + 1)
            if self.rng.random() < 0.5:
                other = self.gen_stmt(vars_, depth + 1)
                return (f"if ({self.gen_expr(vars_)}) {{ {inner} }} "
                        f"else {{ {other} }}")
            return f"if ({self.gen_expr(vars_)}) {{ {inner} }}"
        if kind == "while":
            return (f"while (0) {{ {self.gen_stmt(vars_, depth + 1)} }}")
        if kind == "for" and vars_:
            v = self.rng.choice(vars_)
            return (f"for ({v} = 0; {v} < 3; {v}++) "
                    f"{{ {self.gen_stmt(vars_, depth + 1)} }}")
        if kind == "decl":
            name = self.name("v")
            vars_.append(name)
            return f"long {name} = {self.gen_expr(vars_[:-1])};"
        return f"return {self.gen_expr(vars_)};"

    def gen_function(self, name: str) -> str:
        params = []
        vars_ = []
        for _ in range(self.rng.randint(0, 3)):
            pname = self.name("p")
            params.append(f"int {pname}")
            vars_.append(pname)
        body = []
        for _ in range(self.rng.randint(1, 6)):
            body.append("  " + self.gen_stmt(vars_))
        body.append(f"  return {self.gen_expr(vars_)};")
        return "int %s(%s) {\n%s\n}" % (name, ", ".join(params),
                                        "\n".join(body))

    def generate(self) -> str:
        parts = []
        for _ in range(self.rng.randint(0, 2)):
            parts.append(self.gen_struct())
        for _ in range(self.rng.randint(0, 3)):
            name = self.name("g")
            parts.append(f"{self.gen_type()} {name};")
        for i in range(self.rng.randint(0, 2)):
            parts.append(self.gen_function(self.name("fn")))
        parts.append(self.gen_function("main"))
        return "\n".join(parts)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_pretty_print_reaches_fixpoint(seed):
    source = SourceGen(random.Random(seed)).generate()
    prog = parse_program(source, "fuzz.c")
    once = pretty_program(prog)
    twice = pretty_program(parse_program(once, "fuzz-pp.c"))
    assert once == twice


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_pipeline_never_crashes(seed):
    """check_source may report diagnostics on generated programs (e.g.
    REF-CTOR violations from random mode combinations) but must never
    raise."""
    source = SourceGen(random.Random(seed)).generate()
    checked = check_source(source, "fuzz.c")
    checked.render_diagnostics()
    checked.inferred_source()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_clean_programs_execute(seed):
    """Generated programs that pass the static checks also run (the
    interpreter accepts everything the checker accepts)."""
    from repro.runtime.interp import run_checked

    source = SourceGen(random.Random(seed)).generate()
    checked = check_source(source, "fuzz.c")
    if not checked.ok:
        return
    result = run_checked(checked, seed=seed % 7, max_steps=200_000)
    assert result.error is None or "zero" in result.error
