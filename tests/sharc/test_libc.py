"""Tests for the builtin-library table (Section 4.4)."""

import pytest

from repro.cfront.ctypes import FuncType, PtrType
from repro.sharc.libc import BUILTINS, builtin_type, is_builtin


class TestRegistry:
    def test_core_builtins_present(self):
        for name in ("malloc", "free", "memcpy", "strlen", "printf",
                     "thread_create", "thread_join", "mutex_lock",
                     "cond_wait", "world_read", "rand"):
            assert is_builtin(name), name

    def test_paper_aliases(self):
        for alias, target in [("mutexLock", "mutex_lock"),
                              ("condWait", "cond_wait"),
                              ("condSignal", "cond_signal")]:
            assert BUILTINS[alias].sig == BUILTINS[target].sig

    def test_not_builtin(self):
        assert not is_builtin("frobnicate")


class TestSignatures:
    @pytest.mark.parametrize("name", sorted(BUILTINS))
    def test_every_signature_parses(self, name):
        qtype = builtin_type(name)
        assert isinstance(qtype.base, FuncType)

    def test_malloc_signature(self):
        ft = builtin_type("malloc").base
        assert isinstance(ft.ret.base, PtrType)
        assert len(ft.params) == 1

    def test_fresh_instance_per_call(self):
        a = builtin_type("malloc")
        b = builtin_type("malloc")
        assert a is not b
        assert a.base.ret is not b.base.ret

    def test_printf_varargs(self):
        assert builtin_type("printf").base.varargs

    def test_mutex_lock_takes_racy_pointer(self):
        ft = builtin_type("mutex_lock").base
        assert ft.params[0].base.target.mode.is_racy


class TestSummaries:
    def test_memcpy_summary(self):
        b = BUILTINS["memcpy"]
        assert b.summary == {0: "w", 1: "r"}

    def test_strlen_read_summary(self):
        assert BUILTINS["strlen"].summary == {0: "r"}

    def test_thread_create_spawn_markers(self):
        b = BUILTINS["thread_create"]
        assert b.spawn_fn == 0
        assert b.spawn_arg == 1

    def test_allocators_marked(self):
        assert BUILTINS["malloc"].allocates
        assert BUILTINS["strdup"].allocates
        assert not BUILTINS["free"].allocates

    def test_blocking_markers(self):
        assert BUILTINS["mutex_lock"].blocking
        assert BUILTINS["cond_wait"].blocking
        assert not BUILTINS["mutex_unlock"].blocking
