"""Tests for the thread-reachability seed analysis (Section 4.1)."""

from repro.cfront.parser import parse_program
from repro.sharc.seeds import compute_seeds, seed_types


def seeds_of(source):
    return compute_seeds(parse_program(source))


class TestThreadRoots:
    def test_direct_spawn(self):
        info = seeds_of("""
            void *w(void *a) { return NULL; }
            int main() { thread_create(w, NULL); return 0; }
        """)
        assert info.thread_roots == {"w"}

    def test_multiple_roots(self):
        info = seeds_of("""
            void *a(void *x) { return NULL; }
            void *b(void *x) { return NULL; }
            int main() {
              thread_create(a, NULL);
              thread_create(b, NULL);
              return 0;
            }
        """)
        assert info.thread_roots == {"a", "b"}

    def test_no_spawn_no_roots(self):
        info = seeds_of("int main() { return 0; }")
        assert info.thread_roots == set()
        assert info.touched_globals == set()

    def test_spawn_through_pointer_matches_by_shape(self):
        info = seeds_of("""
            void *w1(void *a) { return NULL; }
            void *w2(void *a) { return NULL; }
            int helper(int x) { return x; }
            int main() {
              void *(*fp)(void *x);
              fp = w1;
              thread_create(fp, NULL);
              return 0;
            }
        """)
        # A spawn through a pointer may alias any thread-shaped function.
        assert info.thread_roots == {"w1", "w2"}

    def test_spawn_sites_recorded(self):
        info = seeds_of("""
            void *w(void *a) { return NULL; }
            int main() { thread_create(w, NULL); return 0; }
        """)
        assert len(info.spawn_sites) == 1
        assert info.spawn_sites[0].fn_names == ["w"]


class TestReachability:
    def test_transitive_calls(self):
        info = seeds_of("""
            int g;
            void leaf() { g = 1; }
            void mid() { leaf(); }
            void *w(void *a) { mid(); return NULL; }
            int main() { thread_create(w, NULL); return 0; }
        """)
        assert info.reachable == {"w", "mid", "leaf"}
        assert "g" in info.touched_globals

    def test_main_only_functions_not_reachable(self):
        info = seeds_of("""
            int g;
            void setup() { g = 1; }
            void *w(void *a) { return NULL; }
            int main() { setup(); thread_create(w, NULL); return 0; }
        """)
        assert "setup" not in info.reachable
        assert "g" not in info.touched_globals

    def test_function_referenced_as_value_is_reachable(self):
        info = seeds_of("""
            int g;
            void cb() { g = 2; }
            void *w(void *a) {
              void (*f)();
              f = cb;
              f();
              return NULL;
            }
            int main() { thread_create(w, NULL); return 0; }
        """)
        assert "cb" in info.reachable
        assert "g" in info.touched_globals


class TestTouchedGlobals:
    def test_read_counts_as_touch(self):
        info = seeds_of("""
            int flag;
            void *w(void *a) { int x = flag; return NULL; }
            int main() { thread_create(w, NULL); return 0; }
        """)
        assert "flag" in info.touched_globals

    def test_locals_shadow_globals(self):
        info = seeds_of("""
            int flag;
            void *w(void *a) { int flag; flag = 1; return NULL; }
            int main() { thread_create(w, NULL); return 0; }
        """)
        assert "flag" not in info.touched_globals


class TestSeedTypes:
    def test_thread_formal_pointee_seeded(self):
        prog = parse_program("""
            void *w(void *a) { return NULL; }
            int main() { thread_create(w, NULL); return 0; }
        """)
        info = compute_seeds(prog)
        seeded = seed_types(prog, info)
        func = prog.function("w")
        formal_target = func.qtype.base.params[0].base.target
        assert any(pos is formal_target for pos in seeded)

    def test_thread_return_pointee_seeded(self):
        prog = parse_program("""
            void *w(void *a) { return NULL; }
            int main() { thread_create(w, NULL); return 0; }
        """)
        info = compute_seeds(prog)
        seeded = seed_types(prog, info)
        ret_target = prog.function("w").qtype.base.ret.base.target
        assert any(pos is ret_target for pos in seeded)

    def test_touched_global_positions_seeded(self):
        prog = parse_program("""
            char *shared;
            void *w(void *a) { shared = NULL; return NULL; }
            int main() { thread_create(w, NULL); return 0; }
        """)
        info = compute_seeds(prog)
        seeded = seed_types(prog, info)
        decl = prog.globals()[0]
        # Both the pointer cell and its target position are seeds.
        assert any(pos is decl.qtype for pos in seeded)
        assert any(pos is decl.qtype.base.target for pos in seeded)

    def test_untouched_global_not_seeded(self):
        prog = parse_program("""
            int quiet;
            void *w(void *a) { return NULL; }
            int main() { quiet = 1; thread_create(w, NULL); return 0; }
        """)
        info = compute_seeds(prog)
        seeded = seed_types(prog, info)
        decl = prog.globals()[0]
        assert not any(pos is decl.qtype for pos in seeded)
