"""Tests for conflict-report rendering (the Section 2.1 format)."""

from repro.errors import DiagKind, Loc
from repro.sharc.reports import (
    Access, Report, lock_not_held, oneref_failed, read_conflict,
    write_conflict,
)


def test_read_conflict_matches_paper_layout():
    report = read_conflict(
        0x75324464,
        Access(2, "S->sdata", Loc("pipeline_test.c", 15)),
        Access(1, "nextS->sdata", Loc("pipeline_test.c", 27)))
    assert report.render() == (
        "read conflict(0x75324464):\n"
        " who(2) S->sdata @ pipeline_test.c: 15\n"
        " last(1) nextS->sdata @ pipeline_test.c: 27")


def test_write_conflict_kind():
    report = write_conflict(
        0x75324544,
        Access(2, "*(fdata + i)", Loc("pipeline_test.c", 52)),
        Access(3, "*(fdata + i)", Loc("pipeline_test.c", 62)))
    assert report.kind is DiagKind.WRITE_CONFLICT
    assert report.render().startswith("write conflict(0x75324544):")


def test_lock_not_held_names_the_lock():
    report = lock_not_held(0x100, Access(1, "counter", Loc("a.c", 5)),
                           "locked(lk)")
    text = report.render()
    assert "lock not held" in text
    assert "required lock: locked(lk)" in text
    assert report.last is None


def test_oneref_includes_count():
    report = oneref_failed(0x200, Access(2, "ldata", Loc("a.c", 17)), 3)
    assert "reference count is 3" in report.render()


def test_str_is_render():
    report = lock_not_held(0x1, Access(1, "x", Loc("a.c", 1)), "m")
    assert str(report) == report.render()


def test_reports_are_frozen_values():
    a = Access(1, "x", Loc("a.c", 1))
    r1 = read_conflict(5, a, a)
    r2 = read_conflict(5, a, a)
    assert r1 == r2
