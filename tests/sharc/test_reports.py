"""Tests for conflict-report rendering (the Section 2.1 format)."""

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DiagKind, Loc
from repro.sharc.reports import (
    Access, Report, lock_not_held, oneref_failed, read_conflict,
    write_conflict,
)


def test_read_conflict_matches_paper_layout():
    report = read_conflict(
        0x75324464,
        Access(2, "S->sdata", Loc("pipeline_test.c", 15)),
        Access(1, "nextS->sdata", Loc("pipeline_test.c", 27)))
    assert report.render() == (
        "read conflict(0x75324464):\n"
        " who(2) S->sdata @ pipeline_test.c: 15\n"
        " last(1) nextS->sdata @ pipeline_test.c: 27")


def test_write_conflict_kind():
    report = write_conflict(
        0x75324544,
        Access(2, "*(fdata + i)", Loc("pipeline_test.c", 52)),
        Access(3, "*(fdata + i)", Loc("pipeline_test.c", 62)))
    assert report.kind is DiagKind.WRITE_CONFLICT
    assert report.render().startswith("write conflict(0x75324544):")


def test_lock_not_held_names_the_lock():
    report = lock_not_held(0x100, Access(1, "counter", Loc("a.c", 5)),
                           "locked(lk)")
    text = report.render()
    assert "lock not held" in text
    assert "required lock: locked(lk)" in text
    assert report.last is None


def test_oneref_includes_count():
    report = oneref_failed(0x200, Access(2, "ldata", Loc("a.c", 17)), 3)
    assert "reference count is 3" in report.render()


def test_str_is_render():
    report = lock_not_held(0x1, Access(1, "x", Loc("a.c", 1)), "m")
    assert str(report) == report.render()


def test_reports_are_frozen_values():
    a = Access(1, "x", Loc("a.c", 1))
    r1 = read_conflict(5, a, a)
    r2 = read_conflict(5, a, a)
    assert r1 == r2


def test_history_renders_hist_lines_with_modes():
    who = Access(3, "counter", Loc("racy.c", 6))
    last = Access(2, "counter", Loc("racy.c", 6))
    history = (Access(2, "counter", Loc("racy.c", 6), mode="w"),
               Access(1, "counter", Loc("racy.c", 12), mode="r"))
    text = write_conflict(0x10040, who, last, history).render()
    assert " hist(2) [w] counter @ racy.c: 6" in text
    assert " hist(1) [r] counter @ racy.c: 12" in text


# -- JSON round-trip (property-tested over every DiagKind) -------------------

_texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1,
    max_size=20)

_accesses = st.builds(
    Access,
    tid=st.integers(min_value=0, max_value=255),
    lvalue=_texts,
    loc=st.builds(Loc, _texts, st.integers(min_value=0, max_value=9999),
                  st.integers(min_value=0, max_value=200)),
    mode=st.sampled_from(["", "r", "w"]))

_reports = st.builds(
    Report,
    kind=st.sampled_from(list(DiagKind)),  # incl. two-word kinds
    addr=st.integers(min_value=0, max_value=2**32 - 1),
    who=_accesses,
    last=st.none() | _accesses,
    detail=st.sampled_from(["", "required lock: locked(lk)",
                            "reference count is 3, expected 1"]),
    history=st.lists(_accesses, max_size=4).map(tuple))


@given(report=_reports)
def test_report_json_round_trip(report):
    data = json.loads(json.dumps(report.to_dict()))
    assert Report.from_dict(data) == report


@given(access=_accesses)
def test_access_json_round_trip(access):
    data = json.loads(json.dumps(access.to_dict()))
    assert Access.from_dict(data) == access


def test_every_kind_survives_by_enum_value():
    a = Access(1, "x", Loc("a.c", 1))
    for kind in DiagKind:
        report = Report(kind, 0x20, a)
        assert Report.from_dict(report.to_dict()).kind is kind
