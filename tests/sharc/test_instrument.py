"""Tests for RC-instrumentation marking and the rewritten-source view."""

from tests.conftest import check_ok

from repro.cfront import cast as A
from repro.sharc.checker import check_source


SRC = """
typedef struct item { long v; } item_t;
int main() {
  char *c = malloc(4);
  item_t *it = malloc(sizeof(item_t));
  char private *cp = SCAST(char private *, c);
  long *l = malloc(8);
  l = NULL;
  free(cp);
  free(it);
  return 0;
}
"""


def tracked_assigns(checked):
    func = checked.program.function("main")
    return [e for e in A.all_exprs(func.body)
            if isinstance(e, A.Assign) and getattr(e, "rc_track", False)]


class TestRcMarking:
    def test_only_scast_shapes_tracked(self):
        """Section 4.3: only pointers to locations that might be subject
        to a sharing cast need RC updates — char here, not long or
        struct item."""
        checked = check_ok(SRC)
        assert checked.rc_stats.tracked_shapes == {("prim", "char")}
        for e in tracked_assigns(checked):
            assert e.lhs.ctype.base.target.base.name == "char"

    def test_untracked_pointer_writes_skip_rc(self):
        checked = check_ok(SRC)
        func = checked.program.function("main")
        l_assigns = [e for e in A.all_exprs(func.body)
                     if isinstance(e, A.Assign)
                     and isinstance(e.lhs, A.Ident)
                     and e.lhs.name == "l"]
        assert l_assigns and not any(
            getattr(e, "rc_track", False) for e in l_assigns)

    def test_no_scast_no_tracking(self):
        checked = check_ok("""
        int main() {
          char *c = malloc(4);
          free(c);
          return 0;
        }
        """)
        assert checked.rc_stats.tracked_shapes == set()
        assert checked.rc_stats.rc_writes == 0

    def test_rc_all_tracks_everything(self):
        checked = check_source(SRC, rc_all=True)
        assert checked.ok
        func = checked.program.function("main")
        tracked = [e for e in A.all_exprs(func.body)
                   if getattr(e, "rc_track", False)]
        baseline = check_source(SRC)
        base_tracked = [
            e for e in A.all_exprs(
                baseline.program.function("main").body)
            if getattr(e, "rc_track", False)]
        assert len(tracked) > len(base_tracked)

    def test_tracked_locals_recorded_on_function(self):
        checked = check_ok(SRC)
        func = checked.program.function("main")
        assert "c" in func.rc_locals
        assert "cp" in func.rc_locals
        assert "l" not in func.rc_locals


class TestInstrumentedListing:
    def test_listing_names_checks(self):
        checked = check_ok("""
        mutex lk;
        int locked(lk) c;
        void *w(void *d) {
          char *buf = d;
          mutexLock(&lk);
          c = buf[0];
          mutexUnlock(&lk);
          return NULL;
        }
        int main() { thread_create(w, NULL); return 0; }
        """)
        listing = checked.instrumented_source()
        # The guarding lock is named: two lock-held checks at the same
        # lvalue under different locks must be distinguishable.
        assert "lock-held(c, lk)" in listing
        assert "chkread(buf[0])" in listing

    def test_listing_names_oneref(self):
        checked = check_ok(SRC)
        listing = checked.instrumented_source()
        assert "oneref(c) + null-out" in listing
        assert "refcount update" in listing

    def test_inferred_source_shows_all_modes(self):
        checked = check_ok(SRC)
        text = checked.inferred_source()
        assert "private" in text
