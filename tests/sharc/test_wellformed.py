"""Well-formedness tests (REF-CTOR and friends)."""

from tests.conftest import check, check_ok, error_kinds


class TestRefCtor:
    def test_dynamic_ref_to_private_rejected(self):
        checked = check("""
        int main() {
          int private * dynamic p;
          return 0;
        }
        """)
        assert "WELLFORMED" in error_kinds(checked)

    def test_private_ref_to_anything_ok(self):
        check_ok("""
        int main() {
          int dynamic * private a;
          int private * private b;
          int readonly * private c;
          return 0;
        }
        """)

    def test_readonly_ref_to_private_rejected(self):
        checked = check("""
        int main() {
          int private * readonly p;
          return 0;
        }
        """)
        assert "WELLFORMED" in error_kinds(checked)

    def test_readonly_ref_to_racy_ok(self):
        """Figure 2: mutex racy * readonly mut."""
        check_ok("""
        typedef struct s { mutex *mut; int locked(mut) v; } s_t;
        int main() { return 0; }
        """)

    def test_nested_violation_found(self):
        checked = check("""
        int main() {
          int private * dynamic * private pp;
          return 0;
        }
        """)
        assert "WELLFORMED" in error_kinds(checked)


class TestStructFieldRules:
    def test_private_outermost_field_rejected(self):
        checked = check("""
        typedef struct s { int private bad; } s_t;
        int main() { return 0; }
        """)
        assert "WELLFORMED" in error_kinds(checked)

    def test_private_field_target_allowed_in_private_context(self):
        # 'char private *' as a *parameter* is the paper's main idiom.
        check_ok("void use(char private *p) { } int main() { return 0; }")

    def test_bad_lock_expression_rejected_at_parse(self):
        import pytest
        from repro.errors import ParseError
        with pytest.raises(ParseError):
            check("""
            typedef struct s { int locked(1 +) v; } s_t;
            int main() { return 0; }
            """)

    def test_wellformedness_rechecked_after_inference(self):
        """Inference promotes targets of non-private pointers rather than
        leaving a REF-CTOR violation behind."""
        checked = check_ok("""
        int *slot;
        void *w(void *d) { int v = *slot; return NULL; }
        int main() {
          int here = 1;
          slot = &here;
          thread_create(w, NULL);
          return 0;
        }
        """)
        slot = next(g for g in checked.program.globals()
                    if g.name == "slot")
        assert slot.qtype.mode.is_dynamic
        assert slot.qtype.base.target.mode.is_dynamic
