"""Tests for the static lockset analysis (``repro.sharc.lockset``).

The analysis has two consumers — ``locked(l)`` qualifier refinement and
compile-time ``static-race`` diagnostics — and both are exercised here
through the public pipeline (``check_source(...).lockset_result``), the
same way the interpreter and the CLI consume them.
"""

from tests.conftest import check_ok

LOCKED_COUNTER = """
mutex lk;
int counter = 0;
void *bump(void *arg) {
  int i;
  for (i = 0; i < 5; i++) {
    mutexLock(&lk);
    counter = counter + 1;
    mutexUnlock(&lk);
  }
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  mutexLock(&lk);
  int c = counter;
  mutexUnlock(&lk);
  return c;
}
"""

UNLOCKED_READ = """
mutex lk;
int counter = 0;
void *bump(void *arg) {
  mutexLock(&lk);
  counter = counter + 1;
  mutexUnlock(&lk);
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return counter;
}
"""


class TestRefinement:
    def test_consistently_locked_global_is_refined(self):
        ls = check_ok(LOCKED_COUNTER).lockset_result
        assert len(ls.refinements) == 1
        r = ls.refinements[0]
        assert r.text == "counter"
        assert r.lock == "lk"
        # bump reads + writes it, main reads it: 2 reads, 1 write site
        assert r.sites == 3
        assert r.reads == 2
        assert r.writes == 1
        assert not ls.races

    def test_refinement_marks_access_infos(self):
        checked = check_ok(LOCKED_COUNTER)
        marked = [s.info for li in
                  checked.lockset_result.locations.values()
                  for s in li.sites if s.info.lockset_refined]
        assert marked
        assert all(m.refined_lock == "lk" for m in marked)

    def test_refinement_shows_in_instrumented_listing(self):
        checked = check_ok(LOCKED_COUNTER)
        assert "[locked:lk]" in checked.instrumented_source()

    def test_one_unlocked_access_empties_the_intersection(self):
        """main's bare ``return counter`` kills the refinement — and,
        because a write and a second thread context exist, promotes the
        location to a static race."""
        ls = check_ok(UNLOCKED_READ).lockset_result
        assert not ls.refinements
        assert any(d.message_key.startswith("counter@")
                   for d in ls.races)

    def test_lock_held_through_a_callee(self):
        """The interprocedural summary: the lock is acquired in the
        caller, the access happens in a helper."""
        ls = check_ok("""
        mutex lk;
        int total = 0;
        void add(int n) { total = total + n; }
        void *w(void *arg) {
          mutexLock(&lk);
          add(3);
          mutexUnlock(&lk);
          return NULL;
        }
        int main() {
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          mutexLock(&lk);
          int c = total;
          mutexUnlock(&lk);
          return c;
        }
        """).lockset_result
        assert [r.text for r in ls.refinements] == ["total"]
        assert ls.refinements[0].lock == "lk"

    def test_acquiring_callee_summary(self):
        """A helper that acquires and *leaves* the lock held counts for
        accesses made after the call returns."""
        ls = check_ok("""
        mutex lk;
        int total = 0;
        void enter(void) { mutexLock(&lk); }
        void leave(void) { mutexUnlock(&lk); }
        void *w(void *arg) {
          enter();
          total = total + 1;
          leave();
          return NULL;
        }
        int main() {
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          enter();
          int c = total;
          leave();
          return c;
        }
        """).lockset_result
        assert [r.text for r in ls.refinements] == ["total"]

    def test_lock_through_pointer_taints(self):
        """A lock named only through a pointer is the top element: no
        refinement may rely on it."""
        ls = check_ok("""
        mutex lk;
        int total = 0;
        void *w(void *arg) {
          mutex *p = &lk;
          mutexLock(p);
          total = total + 1;
          mutexUnlock(p);
          return NULL;
        }
        int main() {
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """).lockset_result
        assert not ls.refinements

    def test_pointer_unlock_in_callee_keeps_caller_locks(self):
        """A callee that unlocks through a pointer taints its call
        chain but must NOT erase the caller's named must-held set —
        erasing it (the old global-top behavior) left the caller's
        consistently-locked write with an empty, untainted lockset,
        i.e. a spurious static race."""
        ls = check_ok("""
        mutex lk;
        mutex other;
        int total = 0;
        void drop(void) {
          mutex *p = &other;
          mutexUnlock(p);
        }
        void *w(void *arg) {
          mutexLock(&lk);
          drop();
          total = total + 1;
          mutexUnlock(&lk);
          return NULL;
        }
        int main() {
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """).lockset_result
        assert not ls.races
        assert [r.lock for r in ls.refinements] == ["lk"]

    def test_taint_stays_inside_its_call_chain(self):
        """The pointer-locking worker taints itself; an unrelated
        worker with a clean named-lock discipline keeps its
        refinement."""
        ls = check_ok("""
        mutex lk;
        mutex plk;
        int clean = 0;
        int messy = 0;
        void *tainted(void *arg) {
          mutex *p = &plk;
          mutexLock(p);
          messy = messy + 1;
          mutexUnlock(p);
          return NULL;
        }
        void *neat(void *arg) {
          mutexLock(&lk);
          clean = clean + 1;
          mutexUnlock(&lk);
          return NULL;
        }
        int main() {
          int t1 = thread_create(tainted, NULL);
          int t2 = thread_create(tainted, NULL);
          int t3 = thread_create(neat, NULL);
          int t4 = thread_create(neat, NULL);
          thread_join(t1); thread_join(t2);
          thread_join(t3); thread_join(t4);
          return 0;
        }
        """).lockset_result
        assert [(r.text, r.lock) for r in ls.refinements] == \
            [("clean", "lk")]
        assert not ls.races  # 'messy' is tainted, never a static race

    def test_two_locks_intersection_survives(self):
        """Accesses under {a,b} and {a} intersect to {a}."""
        ls = check_ok("""
        mutex a;
        mutex b;
        int x = 0;
        void *w1(void *arg) {
          mutexLock(&a);
          mutexLock(&b);
          x = x + 1;
          mutexUnlock(&b);
          mutexUnlock(&a);
          return NULL;
        }
        void *w2(void *arg) {
          mutexLock(&a);
          x = x + 1;
          mutexUnlock(&a);
          return NULL;
        }
        int main() {
          int t1 = thread_create(w1, NULL);
          int t2 = thread_create(w2, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """).lockset_result
        assert [r.lock for r in ls.refinements] == ["a"]


class TestStaticRaces:
    def test_unlocked_shared_write_is_a_static_race(self):
        checked = check_ok("""
        int shared = 0;
        void *w(void *arg) { shared = shared + 1; return NULL; }
        int main() {
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          return shared;
        }
        """)
        ls = checked.lockset_result
        assert any(d.message_key.startswith("shared@")
                   for d in ls.races)
        assert any(k.startswith("static-race shared@")
                   for k in ls.race_keys)
        # races are warnings: the program still type-checks
        assert checked.ok

    def test_read_only_sharing_is_not_a_race(self):
        ls = check_ok("""
        int config = 7;
        void *w(void *arg) { int x = config; return NULL; }
        int main() {
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """).lockset_result
        assert not ls.races

    def test_single_thread_context_is_not_a_race(self):
        """One worker spawned once: the write needs a second thread
        context to conflict with (main's own accesses count)."""
        ls = check_ok("""
        int slot = 0;
        void *w(void *arg) { slot = 5; return NULL; }
        int main() {
          int t = thread_create(w, NULL);
          thread_join(t);
          return 0;
        }
        """).lockset_result
        assert not ls.races

    def test_doubly_spawned_root_races_with_itself(self):
        ls = check_ok("""
        int slot = 0;
        void *w(void *arg) { slot = slot + 1; return NULL; }
        int main() {
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """).lockset_result
        assert "w" in ls.multi_spawned
        assert any(d.message_key.startswith("slot@")
                   for d in ls.races)

    def test_diagnostic_carries_both_sites(self):
        ls = check_ok(UNLOCKED_READ.replace("mutexLock(&lk);", "")
                      .replace("mutexUnlock(&lk);", "")).lockset_result
        diag = next(d for d in ls.races
                    if d.message_key.startswith("counter@"))
        assert "possible data race on 'counter'" in diag.message
        notes = " ".join(diag.notes)
        assert "write in" in notes
        assert "conflicting" in notes
        assert diag.message_key.startswith("counter@")

    def test_seeded_racy_program_caught_with_zero_execution(self):
        """Acceptance criterion: the generator's injected race is found
        by ``check_source`` alone — no interpreter involved."""
        from repro.explore.frontends import racy_c_program

        src, spec = racy_c_program(3, kind="write-write")
        ls = check_ok(src, "racy3.c").lockset_result
        assert any(spec.global_name in k for k in ls.race_keys)


class TestResultSurface:
    def test_summary_and_report_lines(self):
        ls = check_ok(LOCKED_COUNTER).lockset_result
        assert "1 location(s) refined" in ls.summary()
        lines = ls.report_lines()
        assert any("refined 'counter' to locked(lk)" in line
                   for line in lines)

    def test_race_keys_sorted_and_unique(self):
        from repro.explore.frontends import racy_c_program

        src, _ = racy_c_program(3, kind="write-write")
        keys = check_ok(src, "racy3.c").lockset_result.race_keys
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))

    def test_annotated_locked_globals_are_not_analyzed(self):
        """locked(l)-annotated data already has its discipline; only
        inferred-dynamic locations are candidates."""
        ls = check_ok("""
        mutex lk;
        int locked(lk) c = 0;
        void *w(void *arg) {
          mutexLock(&lk); c = c + 1; mutexUnlock(&lk);
          return NULL;
        }
        int main() {
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """).lockset_result
        assert not ls.refinements
        assert not ls.races


class TestSummaryFallback:
    def test_nonconvergence_poisons_only_the_unstable_chain(self):
        """When the summary fixpoint runs out of rounds, only the
        still-oscillating functions and their transitive callers fall
        to top; an unrelated function keeps its stable summary (the
        old fallback collapsed every summary to global top)."""
        from repro.cfront.parser import parse_program
        from repro.sharc.lockset import (
            Summary, _Walker, _compute_summaries)

        program = parse_program("""
        mutex a;
        void g(void);
        void f(void) { g(); }
        void g(void) { f(); mutexLock(&a); }
        void h(void) { mutexLock(&a); }
        int main() { return 0; }
        """, "t.c")
        funcs = [f for f in program.functions() if f.body is not None]
        walker = _Walker(frozenset(["a"]), {f.name: f for f in funcs},
                         {})
        # Two rounds are not enough for the f <-> g cycle: the `else`
        # fallback fires, but must leave h's converged summary alone.
        summaries = _compute_summaries(walker, funcs, rounds=2)
        assert summaries["f"] == Summary(kill_all=True, taint=True)
        assert summaries["g"] == Summary(kill_all=True, taint=True)
        assert summaries["h"] == Summary(plus=frozenset(["a"]))
        assert summaries["main"] == Summary()


class TestWorkloadRegression:
    """Pins EXPERIMENTS.md's Table 1 static-race census: annotated
    fftw keeps exactly its two documented ownership-transfer false
    positives (the planner handoff lockset reasoning cannot see), and
    the taint fixes above must not perturb any workload's keys."""

    def _races(self, name, variant):
        from repro.bench.workloads import get_workload

        workload = get_workload(name)
        source = (workload.annotated_source if variant == "annotated"
                  else workload.unannotated_source)
        return check_ok(source, f"{name}.c").lockset_result.race_keys

    def test_annotated_fftw_has_exactly_the_two_documented_fps(self):
        assert self._races("fftw", "annotated") == [
            "static-race plan.checksum@62",
            "static-race plan.data@63",
        ]

    def test_unannotated_fftw_adds_exactly_two_more(self):
        assert self._races("fftw", "unannotated") == [
            "static-race plan.checksum@62",
            "static-race plan.data@63",
            "static-race plan.n@75",
            "static-race plan.reps@77",
        ]

    def test_other_annotated_workloads_stay_statically_clean(self):
        for name in ("pfscan", "aget", "pbzip2", "dillo", "stunnel"):
            assert self._races(name, "annotated") == [], name
