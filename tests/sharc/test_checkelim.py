"""Tests for the static check eliminator (:mod:`repro.sharc.checkelim`).

These pin the *marking* behaviour: which dynamic checks get the
``elide`` hint, which array walks get the ``range`` hint, and what the
instrumented listing shows for both.  The run-time half — that consuming
the marks never changes reports, steps, or scheduling — lives in
``tests/runtime/test_checkelim_identity.py``."""

from repro.cfront import cast as A
from repro.sharc.checkelim import mark_elisions
from tests.conftest import check_ok


def _marks(checked):
    """(elided lvalues, range lvalues) actually attached to the AST."""
    elided, ranged = [], []
    for func in checked.program.functions():
        for e in A.all_exprs(func.body):
            for attr in ("sharc_read", "sharc_write"):
                info = getattr(e, attr, None)
                if info is None:
                    continue
                if getattr(e, "sharc_check_elided", False):
                    elided.append(info.lvalue_text)
                if getattr(e, "sharc_range_check", False):
                    ranged.append(info.lvalue_text)
    return elided, ranged


def _prog(body: str) -> str:
    # The globals must really be cross-thread shared, or inference gives
    # them a static mode and no dynamic checks exist to elide.
    return f"""
    int g = 0;
    int h = 0;
    int buf[64];
    void helper() {{ }}
    void *w(void *a) {{
      int x; int i;
      {body}
      return NULL;
    }}
    int main() {{
      int t1 = thread_create(w, NULL);
      int t2 = thread_create(w, NULL);
      thread_join(t1);
      thread_join(t2);
      return 0;
    }}
    """


class TestRedundantCheckElision:
    def test_second_read_of_same_lvalue_is_elided(self):
        checked = check_ok(_prog("x = g; x = x + g;"))
        elided, _ = _marks(checked)
        assert elided == ["g"]
        assert checked.elim_stats.elided_reads == 1

    def test_call_between_checks_blocks_elision(self):
        # A call is a yield point: another thread may mutate the shadow
        # state before the second read executes.
        checked = check_ok(_prog("x = g; helper(); x = x + g;"))
        elided, _ = _marks(checked)
        assert elided == []

    def test_write_covers_a_later_read(self):
        checked = check_ok(_prog("g = 1; x = g;"))
        elided, _ = _marks(checked)
        assert "g" in elided
        assert checked.elim_stats.elided_reads >= 1

    def test_read_does_not_cover_a_later_write(self):
        # chkread only proves read permission; the write still needs the
        # full writer-bit check.
        checked = check_ok(_prog("x = g; g = 1;"))
        assert checked.elim_stats.elided_writes == 0

    def test_checks_of_different_lvalues_are_independent(self):
        checked = check_ok(_prog("x = g; x = x + h;"))
        elided, _ = _marks(checked)
        assert elided == []

    def test_branch_meet_requires_both_arms(self):
        both = check_ok(_prog(
            "if (x) { x = g; } else { x = g + 1; } x = x + g;"))
        one = check_ok(_prog(
            "if (x) { x = g; } else { x = 1; } x = x + g;"))
        assert _marks(both)[0] == ["g"]
        assert _marks(one)[0] == []

    def test_loop_carried_cover_found_on_second_pass(self):
        # buf[i] = buf[i] + 1: iteration n's write covers iteration
        # n+1's read of the *textually* same lvalue — the runtime
        # recheck guard is what makes that safe when i moved.
        checked = check_ok(_prog(
            "for (i = 0; i < 8; i++) buf[i] = buf[i] + 1;"))
        assert checked.elim_stats.elided_reads >= 1

    def test_break_in_loop_clears_covers(self):
        # With a break the post-loop state may come from any iteration
        # prefix, so nothing survives the loop.
        with_break = check_ok(_prog(
            "x = g; while (x) { if (h) break; x = x - 1; } x = x + g;"))
        without = check_ok(_prog(
            "x = g; while (x) { x = x - 1; } x = x + g;"))
        assert "g" not in _marks(with_break)[0]
        assert "g" in _marks(without)[0]

    def test_continue_path_kill_reaches_the_back_edge(self):
        # The continue edge re-enters the loop head having skipped the
        # body tail.  Here the continue path calls helper() — a yield
        # point that kills the g cover — and only the tail (skipped on
        # continue) re-establishes it, so the head read of g must NOT
        # be elided: on a continue iteration another thread may have
        # taken the granule during the call.  Without the call on the
        # continue path the head read's own cover legitimately carries
        # around both edges.
        racy = check_ok(_prog(
            "while (x < 8) { x = g;"
            " if (h) { helper(); x = x + 1; continue; }"
            " g = x; x = x + 1; }"))
        control = check_ok(_prog(
            "while (x < 8) { x = g;"
            " if (h) { x = x + 1; continue; }"
            " g = x; x = x + 1; }"))
        assert "g" not in _marks(racy)[0]
        assert "g" in _marks(control)[0]

    def test_continue_path_kill_in_for_and_dowhile(self):
        for_loop = check_ok(_prog(
            "for (i = 0; i < 8; i++) { x = g;"
            " if (h) { helper(); continue; }"
            " g = x; }"))
        do_loop = check_ok(_prog(
            "do { x = g;"
            " if (h) { helper(); x = x + 1; continue; }"
            " g = x; x = x + 1; } while (x < 8);"))
        assert "g" not in _marks(for_loop)[0]
        assert "g" not in _marks(do_loop)[0]

    def test_continue_in_nested_loop_does_not_kill_outer(self):
        # The inner loop's continue targets the inner loop; the outer
        # loop's loop-carried cover is untouched.
        checked = check_ok(_prog(
            "while (x < 8) { x = g; g = x;"
            " for (i = 0; i < 2; i++) { if (i) continue; x = x + 1; }"
            " x = x + 1; }"))
        assert "g" in _marks(checked)[0]

    def test_remarking_is_a_no_op(self):
        # Existing marks persist; a second pass finds nothing new to
        # count, so accidental double-marking can't inflate the stats.
        checked = check_ok(_prog("x = g; x = x + g;"))
        assert checked.elim_stats.elided == 1
        again = mark_elisions(checked.program)
        assert again.elided == 0
        assert _marks(checked)[0] == ["g"]


class TestRangeMarking:
    def test_monotone_array_walk_is_range_marked(self):
        checked = check_ok(_prog(
            "for (i = 0; i < 64; i++) x = x + buf[i];"))
        _, ranged = _marks(checked)
        assert "buf[i]" in ranged
        assert checked.elim_stats.range_reads >= 1

    def test_downward_walk_is_range_marked(self):
        checked = check_ok(_prog(
            "for (i = 63; i >= 0; i--) buf[i] = i;"))
        assert checked.elim_stats.range_writes >= 1

    def test_call_in_body_blocks_range_marking(self):
        checked = check_ok(_prog(
            "for (i = 0; i < 64; i++) { helper(); x = x + buf[i]; }"))
        assert checked.elim_stats.ranges == 0

    def test_unstepped_index_is_not_range_marked(self):
        # j never moves inside the loop, so buf[j] is no array walk.
        # (buf[x] with x = x + ... WOULD count: x is stepped.)
        checked = check_ok(_prog(
            "int j; j = 3; for (i = 0; i < 64; i++) x = x + buf[j];"))
        _, ranged = _marks(checked)
        assert "buf[j]" not in ranged


class TestWorkloadCensus:
    """The acceptance anchor: the Table 1 models the benchmark measures
    actually carry marks (pfscan and dillo are the array-walking ones)."""

    def _stats(self, name):
        from repro.bench.workloads import all_workloads
        workload = {w.name: w for w in all_workloads()}[name]
        return check_ok(workload.annotated_source).elim_stats

    def test_pfscan_has_elision_and_range_sites(self):
        stats = self._stats("pfscan")
        assert stats.elided >= 1
        assert stats.ranges >= 2

    def test_dillo_has_elision_sites(self):
        stats = self._stats("dillo")
        assert stats.elided >= 2


class TestListing:
    def test_listing_flags_elided_and_range_checks(self):
        from repro.sharc.instrument import instrumented_listing
        checked = check_ok(_prog(
            "x = g; x = x + g; for (i = 0; i < 64; i++) x = x + buf[i];"))
        listing = instrumented_listing(checked.program)
        table = listing.split("// --- runtime checks ---")[1]
        assert "chkread(g) [elide]" in table
        # The loop read is both loop-carried-covered and a range walk.
        assert "chkread(buf[i]) [elide,range]" in table
        # The un-elided first read is listed bare.
        assert "chkread(g)\n" in table

    def test_golden_check_table(self):
        """Golden test of the whole check table for one small program:
        order, lock naming, and flags."""
        from repro.sharc.instrument import instrumented_listing
        checked = check_ok("""
mutex lk;
int locked(lk) c = 0;
int g = 0;
void *w(void *a) {
  int x;
  mutexLock(&lk);
  c = c + 1;
  mutexUnlock(&lk);
  x = g;
  x = x + g;
  return NULL;
}
int main() {
  int t1 = thread_create(w, NULL);
  int t2 = thread_create(w, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
""")
        listing = instrumented_listing(checked.program)
        table = [line for line in listing.splitlines()
                 if line.startswith("// test.c:")]
        assert table == [
            "// test.c:8:3: lock-held(c, lk)",
            "// test.c:8:7: lock-held(c, lk)",
            "// test.c:10:7: chkread(g)",
            "// test.c:11:11: chkread(g) [elide]",
        ]
