"""Static-checking tests: write rules, lock constancy, SCAST legality,
library policies, suggestions, and liveness warnings."""

from tests.conftest import check, check_ok, error_kinds


SPAWN = """
void *w(void *d) {{ {wbody} return NULL; }}
int main() {{ thread_create(w, NULL); {mbody} return 0; }}
"""


class TestReadonlyWrites:
    def test_write_to_readonly_global_rejected(self):
        checked = check("""
        int readonly limit = 10;
        int main() { limit = 20; return 0; }
        """)
        assert "READONLY_WRITE" in error_kinds(checked)

    def test_readonly_global_initializer_allowed(self):
        check_ok("int readonly limit = 10; int main() { return 0; }")

    def test_readonly_field_of_private_struct_writable(self):
        check_ok("""
        typedef struct cfg { int readonly version; } cfg_t;
        int main() {
          cfg_t *c = malloc(sizeof(cfg_t));
          c->version = 3;
          return 0;
        }
        """)

    def test_readonly_field_of_dynamic_struct_not_writable(self):
        checked = check("""
        typedef struct cfg { int readonly version; } cfg_t;
        void *w(void *d) {
          cfg_t *c = d;
          c->version = 4;
          return NULL;
        }
        int main() { thread_create(w, NULL); return 0; }
        """)
        assert "READONLY_WRITE" in error_kinds(checked)

    def test_readonly_reads_always_allowed(self):
        check_ok("""
        int readonly limit = 10;
        void *w(void *d) { int x = limit; return NULL; }
        int main() { thread_create(w, NULL); return 0; }
        """)


class TestLockedChecks:
    def test_locked_global_with_global_mutex(self):
        check_ok("""
        mutex lk;
        int locked(lk) counter;
        void *w(void *d) {
          mutexLock(&lk);
          counter = counter + 1;
          mutexUnlock(&lk);
          return NULL;
        }
        int main() { thread_create(w, NULL); return 0; }
        """)

    def test_lock_expression_must_be_constant(self):
        # The defaulting rules promote a lock-named local to readonly, so
        # reassigning it surfaces as a readonly-write error; an explicit
        # non-readonly annotation would surface as LOCK_NOT_CONSTANT.
        checked = check("""
        mutex a; mutex b;
        void f() {
          mutex *m;
          int locked(m) *p;
          m = &a;
          m = &b;     // reassigned: not constant
          p = NULL;
        }
        int main() { f(); return 0; }
        """)
        assert error_kinds(checked) & {"LOCK_NOT_CONSTANT",
                                       "READONLY_WRITE"}

    def test_single_assignment_local_lock_ok(self):
        check_ok("""
        mutex a;
        void f() {
          mutex *m = &a;
          int locked(m) *p;
          p = NULL;
        }
        int main() { f(); return 0; }
        """)

    def test_locked_field_initializable_while_private(self):
        check_ok("""
        typedef struct s { mutex *mut;
                           char locked(mut) * locked(mut) d; } s_t;
        int main() {
          s_t *x = malloc(sizeof(s_t));
          x->d = NULL;   // private instance: no lock needed
          return 0;
        }
        """)

    def test_lock_path_through_nonreadonly_member_rejected(self):
        checked = check("""
        typedef struct s { mutex * dynamic mref;
                           int locked(mref) v; } s_t;
        void *w(void *d) {
          s_t *h = d;
          int x = h->v;
          return NULL;
        }
        int main() { thread_create(w, NULL); return 0; }
        """)
        assert "LOCK_NOT_CONSTANT" in error_kinds(checked)


class TestAssignmentCompat:
    def test_private_to_dynamic_target_mismatch(self):
        checked = check(SPAWN.format(
            wbody="char *shared = d; char private *mine; mine = shared;",
            mbody=""))
        assert "MODE_MISMATCH" in error_kinds(checked)

    def test_suggestion_names_the_cast(self):
        checked = check(SPAWN.format(
            wbody="char *shared = d; char private *mine; mine = shared;",
            mbody=""))
        texts = [d.message for d in checked.suggestions]
        assert any("SCAST(char private *, shared)" in t for t in texts)

    def test_deep_mismatch_not_castable(self):
        checked = check("""
        int main() {
          char dynamic * dynamic * p1;
          char private * dynamic * p2;
          p1 = p2;
          return 0;
        }
        """)
        kinds = error_kinds(checked)
        assert "MODE_MISMATCH" in kinds or "WELLFORMED" in kinds
        assert not checked.suggestions  # no cast can fix depth-2

    def test_null_assignable_to_any_pointer(self):
        check_ok("""
        int main() {
          char dynamic *a = NULL;
          char private *b = NULL;
          return 0;
        }
        """)

    def test_plain_cast_cannot_change_modes(self):
        checked = check(SPAWN.format(
            wbody="char *s = d; char private *p; "
                  "p = (char private *) s;",
            mbody=""))
        assert "MODE_MISMATCH" in error_kinds(checked)

    def test_return_type_checked(self):
        checked = check("""
        char dynamic *leak(char private *p) { return p; }
        void *w(void *d) { return NULL; }
        int main() { thread_create(w, NULL); return 0; }
        """)
        assert "MODE_MISMATCH" in error_kinds(checked)

    def test_argument_mismatch_with_suggestion(self):
        checked = check(SPAWN.format(
            wbody="char *shared = d; use(shared);",
            mbody="")
            + "void use(char private *p) { p[0] = 1; }")
        assert "MODE_MISMATCH" in error_kinds(checked)
        assert checked.suggestions


class TestScastLegality:
    def test_void_scast_forbidden(self):
        checked = check("""
        int main() {
          void *v = malloc(4);
          void *w = SCAST(void private *, v);
          return 0;
        }
        """)
        assert "VOID_SCAST" in error_kinds(checked)

    def test_source_must_be_lvalue(self):
        checked = check("""
        char *mk() { return malloc(4); }
        int main() {
          char private *p = SCAST(char private *, mk());
          return 0;
        }
        """)
        assert "BAD_SCAST" in error_kinds(checked)

    def test_base_type_change_rejected(self):
        checked = check("""
        int main() {
          char *c = malloc(4);
          long private *l = SCAST(long private *, c);
          return 0;
        }
        """)
        assert "BAD_SCAST" in error_kinds(checked)

    def test_deep_mode_change_rejected(self):
        checked = check(SPAWN.format(
            wbody="char dynamic * dynamic * pp = d; "
                  "char private * private * qq;"
                  "qq = SCAST(char private * private *, pp);",
            mbody=""))
        assert "BAD_SCAST" in error_kinds(checked)

    def test_legal_cast_counts_oneref(self):
        checked = check_ok("""
        int main() {
          char *a = malloc(4);
          char private *b = SCAST(char private *, a);
          free(b);
          return 0;
        }
        """)
        assert checked.check_stats.oneref_checks == 1


class TestLiveness:
    def test_live_after_scast_warns(self):
        checked = check_ok("""
        int main() {
          char *a = malloc(4);
          char private *b = SCAST(char private *, a);
          a[0] = 1;   // a is null here!
          return 0;
        }
        """)
        assert any(d.kind.name == "LIVE_AFTER_SCAST"
                   for d in checked.warnings)

    def test_no_warning_when_reassigned(self):
        checked = check_ok("""
        int main() {
          char *a = malloc(4);
          char private *b = SCAST(char private *, a);
          a = malloc(4);
          a[0] = 1;
          free(b);
          return 0;
        }
        """)
        assert not any(d.kind.name == "LIVE_AFTER_SCAST"
                       for d in checked.warnings)

    def test_no_warning_for_sibling_branch(self):
        checked = check_ok("""
        int main() {
          char *a = malloc(4);
          char private *b;
          if (1) {
            b = SCAST(char private *, a);
            free(b);
          } else {
            a[0] = 1;
          }
          return 0;
        }
        """)
        assert not any(d.kind.name == "LIVE_AFTER_SCAST"
                       for d in checked.warnings)


class TestLibraryRules:
    def test_unsummarized_requires_private(self):
        # atoi is summarized; mutex_lock's arg must be racy.
        checked = check(SPAWN.format(
            wbody="char *s = d; mutexLock(s);", mbody=""))
        assert "MODE_MISMATCH" in error_kinds(checked)

    def test_summarized_accepts_dynamic(self):
        check_ok(SPAWN.format(
            wbody="char *s = d; long n = strlen(s);", mbody=""))

    def test_summarized_rejects_locked(self):
        checked = check("""
        mutex lk;
        char locked(lk) * readonly buf = malloc(8);
        void *w(void *d) {
          mutexLock(&lk);
          long n = strlen(buf);
          mutexUnlock(&lk);
          return NULL;
        }
        int main() { thread_create(w, NULL); return 0; }
        """)
        assert "MODE_MISMATCH" in error_kinds(checked)

    def test_write_summary_rejects_readonly(self):
        checked = check("""
        char readonly * readonly msg = "hi";
        int main() { memset(msg, 0, 2); return 0; }
        """)
        assert "READONLY_WRITE" in error_kinds(checked)

    def test_read_summary_accepts_readonly(self):
        check_ok("""
        char readonly * readonly msg = "hi";
        int main() { long n = strlen(msg); return 0; }
        """)

    def test_vararg_pointer_must_be_private(self):
        checked = check(SPAWN.format(
            wbody='char *s = d; printf("%s", s);', mbody=""))
        assert "VARARG_NOT_PRIVATE" in error_kinds(checked)

    def test_vararg_readonly_accepted(self):
        check_ok("""
        char readonly * readonly msg = "hi";
        int main() { printf("%s\\n", msg); return 0; }
        """)

    def test_arity_mismatch_reported(self):
        checked = check("int main() { strlen(); return 0; }")
        assert checked.errors


class TestCheckPlacement:
    def test_dynamic_accesses_get_checks(self):
        checked = check_ok(SPAWN.format(
            wbody="char *p = d; char c = p[0]; p[1] = c;", mbody=""))
        assert checked.check_stats.read_checks >= 1
        assert checked.check_stats.write_checks >= 1

    def test_private_accesses_get_no_checks(self):
        checked = check_ok("""
        int main() {
          int x = 1;
          int y = x + 1;
          return y;
        }
        """)
        assert checked.check_stats.total == 0

    def test_racy_accesses_get_no_checks(self):
        checked = check_ok("""
        int racy flag;
        void *w(void *d) { flag = 1; return NULL; }
        int main() { thread_create(w, NULL); return 0; }
        """)
        assert checked.check_stats.total == 0

    def test_locked_accesses_counted(self):
        checked = check_ok("""
        mutex lk;
        int locked(lk) c;
        void *w(void *d) {
          mutexLock(&lk); c = 1; mutexUnlock(&lk);
          return NULL;
        }
        int main() { thread_create(w, NULL); return 0; }
        """)
        assert checked.check_stats.lock_checks >= 1


class TestReadonlyArrays:
    def test_write_to_readonly_global_array_rejected(self):
        checked = check("""
        int readonly table[4];
        int main() { table[0] = 1; return 0; }
        """)
        assert "READONLY_WRITE" in error_kinds(checked)

    def test_readonly_array_field_of_private_struct_writable(self):
        check_ok("""
        typedef struct cfg { int readonly dims[3]; } cfg_t;
        int main() {
          cfg_t *c = malloc(sizeof(cfg_t));
          c->dims[0] = 7;
          return 0;
        }
        """)

    def test_locked_global_array_gets_checks(self):
        checked = check_ok("""
        mutex lk;
        int locked(lk) table[4];
        void *w(void *a) {
          mutexLock(&lk);
          table[0] = table[0] + 1;
          mutexUnlock(&lk);
          return NULL;
        }
        int main() { thread_join(thread_create(w, NULL)); return 0; }
        """)
        assert checked.check_stats.lock_checks >= 2
