"""Tests for the thread-modular abstract interpreter
(:mod:`repro.sharc.absint` + ``domains`` + ``interference``).

Three load-bearing properties:

- **termination**: the interference fixpoint (widening at loop heads)
  stabilises on every Table 1 workload variant and every fuzz scenario
  family — an analysis that spins is worse than none;
- **discharge**: interval reasoning marks ``ai_elide`` / ``ai_range``
  on sites the checkelim dataflow cannot see (covers flowing through
  check-free callees, same-granule adjacent accesses, monotone walks
  around check-free calls) — the runtime half (bit-identity, counter
  plumbing) lives in ``tests/runtime/test_absint_identity.py``;
- **refutation**: per-context index intervals refute static lockset
  races on partitioned arrays, with witness bounds, and confirm the
  overlapping control.
"""

import pytest

from tests.conftest import check_ok

SIX_WORKLOADS = ("pfscan", "aget", "pbzip2", "dillo", "fftw", "stunnel")


def _prog(body: str, extra: str = "") -> str:
    return f"""
    int g = 0;
    int buf[64];
    {extra}
    void *w(void *a) {{
      int x; int i;
      {body}
      return NULL;
    }}
    int main() {{
      int t1 = thread_create(w, NULL);
      int t2 = thread_create(w, NULL);
      thread_join(t1); thread_join(t2);
      return 0;
    }}
    """


class TestFixpointTermination:
    @pytest.mark.parametrize("name", SIX_WORKLOADS)
    @pytest.mark.parametrize("variant", ["annotated", "unannotated"])
    def test_workloads_terminate(self, name, variant):
        from repro.bench.workloads import get_workload

        workload = get_workload(name)
        source = (workload.annotated_source if variant == "annotated"
                  else workload.unannotated_source)
        ai = check_ok(source, f"{name}.c").absint_result
        assert ai.terminated, f"{name}/{variant} did not stabilise"
        assert 1 <= ai.rounds <= 12

    def test_fuzz_scenario_families_terminate(self):
        from repro.fuzz.gen import generate_scenario
        from repro.fuzz.scenarios import (RACE_KINDS,
                                          SUPPORTED_FAMILIES,
                                          ScenarioSpec)

        for topology, idiom in SUPPORTED_FAMILIES:
            for race_kinds in ((), RACE_KINDS):
                scenario = generate_scenario(
                    ScenarioSpec(topology=topology, idiom=idiom,
                                 race_kinds=race_kinds, gen_seed=11))
                ai = check_ok(scenario.source,
                              scenario.filename).absint_result
                assert ai.terminated, scenario.filename

    def test_widening_bounds_an_unbounded_loop(self):
        # No constant bound exists: only widening can stabilise this.
        ai = check_ok(_prog(
            "while (g < x) { g = g + 1; }")).absint_result
        assert ai.terminated


class TestDischargeMarks:
    def _marks(self, checked):
        from repro.cfront import cast as A

        elided, ranged = [], []
        for func in checked.program.functions():
            for e in A.all_exprs(func.body):
                for attr in ("sharc_read", "sharc_write"):
                    info = getattr(e, attr, None)
                    if info is None:
                        continue
                    if info.ai_elide:
                        elided.append(info.lvalue_text)
                    if info.ai_range:
                        ranged.append(info.lvalue_text)
        return elided, ranged

    def test_cover_flows_through_check_free_callee(self):
        """checkelim kills covers at *any* call; absint inlines a
        callee it proved check-free, so the cover survives."""
        checked = check_ok(_prog(
            "x = g; frob(); x = x + g;",
            extra="int frob() { int y; y = 2; return y; }"))
        assert checked.absint_result.stats.ai_elided >= 1
        assert "g" in self._marks(checked)[0]
        # ...and checkelim itself did not already claim the site
        assert checked.elim_stats.elided == 0

    def test_checked_callee_is_modelled_not_blocked(self):
        """Unlike checkelim, a *defined* callee with checks of its own
        is inlined and modelled precisely: its write of g covers the
        read after the call (and its own read is covered by the
        caller's)."""
        checked = check_ok(_prog(
            "x = g; frob(); x = x + g;",
            extra="int frob() { g = g + 1; return 0; }"))
        assert self._marks(checked)[0] == ["g", "g"]

    def test_undefined_callee_blocks_the_cover(self):
        """A declared-but-undefined function stays opaque: nothing to
        inline, so the covers die at the call like any yield point."""
        checked = check_ok(_prog(
            "x = g; ext(); x = x + g;",
            extra="void ext(void);"))
        assert checked.absint_result.stats.ai_elided == 0
        assert self._marks(checked)[0] == []

    def test_adjacent_same_granule_access_elided(self):
        """buf[0] and buf[1] share a 16-byte granule: the interval
        delta proves the second check re-tests the same granule."""
        checked = check_ok(_prog(
            "buf[0] = 1; buf[1] = 2; x = buf[0] + buf[1];"))
        assert checked.absint_result.stats.ai_elided >= 1

    def test_range_walk_around_check_free_call(self):
        """checkelim refuses range marks when the loop body calls
        anything; absint permits calls it proved check-free."""
        checked = check_ok(_prog(
            "for (i = 0; i < 64; i++) { frob(); x = x + buf[i]; }",
            extra="int frob() { int y; y = 1; return y; }"))
        assert checked.absint_result.stats.ai_ranges >= 1
        assert "buf[i]" in self._marks(checked)[1]
        assert checked.elim_stats.ranges == 0

    def test_marks_never_stack_on_checkelim_sites(self):
        """An absint mark is only placed where neither checkelim nor
        lockset already discharged the site — the runtime consults
        them in that order."""
        from repro.cfront import cast as A

        for source in (
                _prog("x = g; x = x + g;"),
                _prog("for (i = 0; i < 64; i++) x = x + buf[i];")):
            checked = check_ok(source)
            for func in checked.program.functions():
                for e in A.all_exprs(func.body):
                    for attr in ("sharc_read", "sharc_write"):
                        info = getattr(e, attr, None)
                        if info is None:
                            continue
                        assert not (info.elide and info.ai_elide)
                        assert not (info.range_walk and info.ai_range)

    def test_check_free_classification(self):
        checked = check_ok(_prog(
            "x = g; frob(); x = x + g;",
            extra="int frob() { int y; y = 2; return y; }"))
        cf = checked.absint_result.check_free
        assert cf["frob"] is True
        assert cf["w"] is False       # reads/writes g dynamically


class TestWorkloadDischarge:
    """Acceptance anchor: on >= 3 of the six Table 1 workloads the
    absint tier statically marks sites checkelim alone could not."""

    def _stats(self, name, variant):
        from repro.bench.workloads import get_workload

        workload = get_workload(name)
        source = (workload.annotated_source if variant == "annotated"
                  else workload.unannotated_source)
        return check_ok(source, f"{name}.c").absint_result.stats

    def test_pfscan_annotated_gains_marks(self):
        assert self._stats("pfscan", "annotated").ai_elided >= 1

    def test_aget_unannotated_gains_marks(self):
        assert self._stats("aget", "unannotated").ai_elided >= 1

    def test_stunnel_unannotated_gains_marks(self):
        assert self._stats("stunnel", "unannotated").ai_elided >= 1

    def test_dillo_unannotated_gains_marks(self):
        assert self._stats("dillo", "unannotated").ai_elided >= 1


PARTITIONED = """
int buf[64];
void *lowhalf(void *a) {
  int i;
  for (i = 0; i < 32; i++) buf[i] = buf[i] + 1;
  return NULL;
}
void *highhalf(void *a) {
  int i;
  for (i = 32; i < 64; i++) buf[i] = buf[i] + 1;
  return NULL;
}
int main() {
  int t1 = thread_create(lowhalf, NULL);
  int t2 = thread_create(highhalf, NULL);
  thread_join(t1); thread_join(t2);
  return 0;
}
"""


class TestRefutation:
    def test_partitioned_array_race_is_interval_refuted(self):
        """The lockset pass reports the classic partitioned-array
        false positive; disjoint per-thread index intervals refute it
        with witness bounds."""
        checked = check_ok(PARTITIONED, "part.c")
        assert checked.lockset_result.race_keys \
            == ["static-race buf@5"]
        verdicts = checked.absint_result.verdicts
        assert [v.verdict for v in verdicts] == ["interval-refuted"]
        assert verdicts[0].witness == {"lowhalf": [0, 31],
                                       "highhalf": [32, 63]}
        assert checked.absint_result.refuted == 1
        assert checked.absint_result.confirmed == 0

    def test_overlapping_ranges_are_confirmed(self):
        source = PARTITIONED.replace("for (i = 32; i < 64; i++)",
                                     "for (i = 0; i < 64; i++)")
        checked = check_ok(source, "part2.c")
        verdicts = checked.absint_result.verdicts
        assert [v.verdict for v in verdicts] == ["interval-confirmed"]
        assert checked.absint_result.refuted == 0

    def test_verdicts_serialize_with_location_and_line(self):
        checked = check_ok(PARTITIONED, "part.c")
        d = checked.absint_result.verdicts[0].as_dict()
        assert d["location"] == "buf"
        assert d["line"] == 5  # the lowhalf write, like the race key
        assert d["verdict"] == "interval-refuted"
        assert d["witness"]

    def test_refutation_never_drops_the_diagnostic(self):
        """Verdicts decorate the lockset findings; the static-race
        diagnostic itself must survive (the refutation is advisory —
        it has no soundness guarantee to stand on)."""
        checked = check_ok(PARTITIONED, "part.c")
        assert checked.lockset_result.races
