"""Inference tests: the Figure 2 behaviours, dynamic_in containment,
mode adoption, and REF-CTOR promotion."""

from tests.conftest import check, check_ok

from repro.cfront.ctypes import FuncType
from repro.sharc import modes as M
from repro.sharc.defaults import collect_local_decls


def local_type(checked, func_name, var_name):
    func = checked.program.function(func_name)
    for d in collect_local_decls(func):
        if d.name == var_name:
            return d.qtype
    for name, ptype in zip(func.param_names, func.qtype.base.params):
        if name == var_name:
            return ptype
    raise KeyError(var_name)


def global_type(checked, name):
    for g in checked.program.globals():
        if g.name == name:
            return g.qtype
    raise KeyError(name)


SPAWNED = """
void *w(void *d) {{ {body} return NULL; }}
int main() {{ thread_create(w, NULL); {main} return 0; }}
"""


class TestBasicInference:
    def test_thread_formal_pointee_dynamic(self):
        checked = check_ok(SPAWNED.format(body="", main=""))
        formal = local_type(checked, "w", "d")
        assert formal.mode.is_private          # the cell itself
        assert formal.base.target.mode.is_dynamic  # the pointee

    def test_untouched_local_private(self):
        checked = check_ok(SPAWNED.format(body="int x; x = 1;", main=""))
        assert local_type(checked, "w", "x").mode.is_private

    def test_touched_global_dynamic(self):
        source = "int flag;\n" + SPAWNED.format(body="flag = 1;", main="")
        checked = check_ok(source)
        assert global_type(checked, "flag").mode.is_dynamic

    def test_untouched_global_private(self):
        source = "int only_main;\n" + SPAWNED.format(
            body="", main="only_main = 2;")
        checked = check_ok(source)
        assert global_type(checked, "only_main").mode.is_private

    def test_assignment_propagates_dynamic_target(self):
        body = "char *p; p = d;"
        checked = check_ok(SPAWNED.format(body=body, main=""))
        p = local_type(checked, "w", "p")
        assert p.base.target.mode.is_dynamic
        assert p.mode.is_private

    def test_escaped_local_becomes_dynamic(self):
        source = """
        int *shared_slot;
        void *w(void *d) { int x = *shared_slot; return NULL; }
        int main() {
          int local = 5;
          shared_slot = &local;
          thread_create(w, NULL);
          return 0;
        }
        """
        checked = check_ok(source)
        assert local_type(checked, "main", "local").mode.is_dynamic


class TestFigure2:
    """The paper's pipeline inference, pinned down."""

    SOURCE = """
    typedef struct stage {
      struct stage *next;
      cond *cv;
      mutex *mut;
      char locked(mut) *locked(mut) sdata;
      void (*fun)(char private *fdata);
    } stage_t;
    void *thrFunc(void *d) {
      stage_t *S = d;
      stage_t *nextS = S->next;
      char *ldata;
      ldata = SCAST(char private *, S->sdata);
      S->fun(ldata);
      return NULL;
    }
    void work(char private *f) { f[0] = 1; }
    int main() {
      stage_t *st = malloc(sizeof(stage_t));
      st->fun = work;
      thread_create(thrFunc, SCAST(stage_t dynamic *, st));
      return 0;
    }
    """

    def fields(self, checked):
        return dict(checked.program.structs.fields("stage"))

    def test_mut_field_readonly(self):
        checked = check_ok(self.SOURCE)
        assert self.fields(checked)["mut"].mode.is_readonly

    def test_mut_target_racy(self):
        checked = check_ok(self.SOURCE)
        assert self.fields(checked)["mut"].base.target.mode.is_racy

    def test_next_field_inherits_with_dynamic_target(self):
        checked = check_ok(self.SOURCE)
        next_f = self.fields(checked)["next"]
        assert next_f.mode.is_inherit
        assert next_f.base.target.mode.is_dynamic

    def test_S_is_private_pointer_to_dynamic(self):
        checked = check_ok(self.SOURCE)
        s = local_type(checked, "thrFunc", "S")
        assert s.mode.is_private
        assert s.base.target.mode.is_dynamic

    def test_ldata_private_via_scast(self):
        checked = check_ok(self.SOURCE)
        ldata = local_type(checked, "thrFunc", "ldata")
        assert ldata.base.target.mode.is_private

    def test_inferred_source_matches_figure2(self):
        checked = check_ok(self.SOURCE)
        text = checked.inferred_source()
        assert "struct __mutex racy *readonly mut" in text
        assert "char locked(mut) *locked(mut) sdata" in text
        assert "void dynamic *private thrFunc(void dynamic *private d)"\
            in text


class TestDynamicIn:
    """The containment property of the internal dynamic_in qualifier."""

    def test_consumer_formal_becomes_dynamic_in(self):
        source = """
        int use(char *p) { return p[0]; }
        void *w(void *d) { char *c = d; use(c); return NULL; }
        int main() { thread_create(w, NULL); return 0; }
        """
        checked = check_ok(source)
        formal = local_type(checked, "use", "p")
        assert formal.base.target.mode.kind is M.ModeKind.DYNAMIC_IN

    def test_private_callers_unaffected(self):
        """A dynamic actual at one call site must not force private
        actuals at other call sites to dynamic (Section 4.1)."""
        source = """
        int use(char *p) { return p[0]; }
        void *w(void *d) { char *c = d; use(c); return NULL; }
        int main() {
          char *mine = malloc(4);
          thread_create(w, NULL);
          use(mine);
          return 0;
        }
        """
        checked = check_ok(source)
        mine = local_type(checked, "main", "mine")
        assert mine.base.target.mode.is_private

    def test_leaking_formal_forces_actual_dynamic(self):
        """A formal stored into a dynamic location pushes dynamic back to
        its actuals (the leak case)."""
        source = """
        char *shared;
        void publish(char *p) { shared = p; }
        void *w(void *d) { char c = shared[0]; return NULL; }
        int main() {
          char *mine = malloc(4);
          publish(mine);
          thread_create(w, NULL);
          return 0;
        }
        """
        checked = check_ok(source)
        mine = local_type(checked, "main", "mine")
        assert mine.base.target.mode.is_dynamic


class TestAdoption:
    def test_racy_adopted_from_neighbour(self):
        source = """
        typedef struct s { mutex *mut; char *locked(mut) d; } s_t;
        void *w(void *x) {
          s_t *h = x;
          mutex *m;
          m = h->mut;
          mutexLock(m);
          mutexUnlock(m);
          return NULL;
        }
        int main() { thread_create(w, NULL); return 0; }
        """
        checked = check_ok(source)
        m = local_type(checked, "w", "m")
        assert m.base.target.mode.is_racy

    def test_readonly_adopted_from_neighbour(self):
        source = """
        char readonly * readonly banner = "hi";
        void *w(void *x) {
          char *p;
          p = banner;
          return NULL;
        }
        int main() { thread_create(w, NULL); return 0; }
        """
        checked = check_ok(source)
        p = local_type(checked, "w", "p")
        assert p.base.target.mode.is_readonly

    def test_locked_never_adopted(self):
        """Lock expressions are contextual, so locked is not adopted;
        the mismatch surfaces as an error + SCAST suggestion."""
        source = """
        typedef struct s { mutex *mut;
                           char locked(mut) * locked(mut) d; } s_t;
        void *w(void *x) {
          s_t *h = x;
          char *p;
          p = h->d;
          return NULL;
        }
        int main() { thread_create(w, NULL); return 0; }
        """
        checked = check(source)
        assert not checked.ok
        assert checked.suggestions  # an SCAST was suggested


class TestPromotion:
    def test_private_annotated_seed_is_error(self):
        source = """
        int private oops;
        void *w(void *d) { oops = 1; return NULL; }
        int main() { thread_create(w, NULL); return 0; }
        """
        checked = check(source)
        assert not checked.ok
        assert any(d.kind.name == "PRIVATE_SHARED" for d in checked.errors)

    def test_string_literal_polymorphic(self):
        """The same literal text can be readonly in one context and
        private in another (per-occurrence polymorphism)."""
        source = """
        char readonly * readonly greeting = "yo";
        int main() {
          char *tmp = strdup("yo");
          free(tmp);
          return 0;
        }
        """
        check_ok(source)


class TestBuiltinPolymorphism:
    def test_malloc_does_not_link_call_sites(self):
        """Two mallocs, one flowing into shared state, one staying local:
        the local one stays private."""
        source = """
        char *shared;
        void *w(void *d) { char c = shared[0]; return NULL; }
        int main() {
          char *a = malloc(4);
          char *b = malloc(4);
          shared = a;
          b[0] = 1;
          free(b);
          thread_create(w, NULL);
          return 0;
        }
        """
        checked = check_ok(source)
        a = local_type(checked, "main", "a")
        b = local_type(checked, "main", "b")
        assert a.base.target.mode.is_dynamic
        assert b.base.target.mode.is_private
