"""Unit tests for the qualifier-constraint graph and solver."""

import pytest

from repro.cfront.ctypes import make_prim
from repro.sharc import modes as M
from repro.sharc.constraints import ConstraintGraph, EdgeKind, Level


def pos(mode=None):
    """A fresh unannotated (or fixed-mode) type position."""
    return make_prim("int", mode)


class TestGraphConstruction:
    def test_ensure_qvar_only_for_unannotated(self):
        graph = ConstraintGraph()
        free = pos()
        fixed = pos(M.DYNAMIC)
        assert graph.ensure_qvar(free) is not None
        assert graph.ensure_qvar(fixed) is None

    def test_qvar_stable_across_calls(self):
        graph = ConstraintGraph()
        p = pos()
        assert graph.ensure_qvar(p) == graph.ensure_qvar(p)

    def test_fixed_to_free_link_becomes_hint(self):
        graph = ConstraintGraph()
        free = pos()
        graph.link(free, pos(M.DYNAMIC), EdgeKind.BODY)
        assert M.DYNAMIC in graph.hints[free.qvar]


class TestSolver:
    def test_seed_propagates_over_body_edges(self):
        graph = ConstraintGraph()
        chain = [pos() for _ in range(5)]
        for a, b in zip(chain, chain[1:]):
            graph.link(a, b, EdgeKind.BODY)
        graph.seed_dynamic(chain[0])
        levels = graph.solve()
        assert all(levels[p.qvar] is Level.DYNAMIC for p in chain)

    def test_body_edges_are_bidirectional(self):
        graph = ConstraintGraph()
        a, b = pos(), pos()
        graph.link(a, b, EdgeKind.BODY)
        graph.seed_dynamic(b)
        levels = graph.solve()
        assert levels[a.qvar] is Level.DYNAMIC

    def test_call_edge_caps_at_dyn_in(self):
        graph = ConstraintGraph()
        actual, formal = pos(), pos()
        graph.link(actual, formal, EdgeKind.CALL_IN)
        graph.seed_dynamic(actual)
        levels = graph.solve()
        assert levels[formal.qvar] is Level.DYN_IN

    def test_call_edge_does_not_flow_backwards(self):
        graph = ConstraintGraph()
        actual, formal = pos(), pos()
        graph.link(actual, formal, EdgeKind.CALL_IN)
        graph.seed_dynamic(formal)  # body-made-dynamic formal...
        levels = graph.solve()
        # ...does push back to its actuals (the leak case).
        assert levels[actual.qvar] is Level.DYNAMIC

    def test_dyn_in_does_not_leak_to_other_actuals(self):
        graph = ConstraintGraph()
        shared_actual, formal, private_actual = pos(), pos(), pos()
        graph.link(shared_actual, formal, EdgeKind.CALL_IN)
        graph.link(private_actual, formal, EdgeKind.CALL_IN)
        graph.seed_dynamic(shared_actual)
        levels = graph.solve()
        assert levels[formal.qvar] is Level.DYN_IN
        assert levels[private_actual.qvar] is Level.PRIVATE

    def test_dyn_in_spreads_over_body_edges(self):
        graph = ConstraintGraph()
        actual, formal, local_copy = pos(), pos(), pos()
        graph.link(actual, formal, EdgeKind.CALL_IN)
        graph.link(formal, local_copy, EdgeKind.BODY)
        graph.seed_dynamic(actual)
        levels = graph.solve()
        assert levels[local_copy.qvar] is Level.DYN_IN


class TestModeAssignment:
    def test_unconstrained_defaults_private(self):
        graph = ConstraintGraph()
        p = pos()
        graph.ensure_qvar(p)
        graph.assign_modes([p])
        assert p.mode.is_private

    def test_dynamic_written_back(self):
        graph = ConstraintGraph()
        p = pos()
        graph.seed_dynamic(p)
        graph.assign_modes([p])
        assert p.mode.is_dynamic

    def test_dyn_in_written_back(self):
        graph = ConstraintGraph()
        actual, formal = pos(), pos()
        graph.link(actual, formal, EdgeKind.CALL_IN)
        graph.seed_dynamic(actual)
        graph.assign_modes([actual, formal])
        assert formal.mode.kind is M.ModeKind.DYNAMIC_IN

    def test_racy_adopted_from_single_hint(self):
        graph = ConstraintGraph()
        p = pos()
        graph.link(p, pos(M.RACY), EdgeKind.BODY)
        graph.assign_modes([p])
        assert p.mode.is_racy

    def test_conflicting_hints_fall_back_to_private(self):
        graph = ConstraintGraph()
        p = pos()
        graph.link(p, pos(M.RACY), EdgeKind.BODY)
        graph.link(p, pos(M.READONLY), EdgeKind.BODY)
        graph.assign_modes([p])
        assert p.mode.is_private

    def test_locked_never_adopted(self):
        graph = ConstraintGraph()
        p = pos()
        graph.link(p, pos(M.locked("lk")), EdgeKind.BODY)
        graph.assign_modes([p])
        assert p.mode.is_private

    def test_dynamic_beats_adoption(self):
        graph = ConstraintGraph()
        p = pos()
        graph.link(p, pos(M.RACY), EdgeKind.BODY)
        graph.seed_dynamic(p)
        graph.assign_modes([p])
        assert p.mode.is_dynamic

    def test_extra_positions_reported(self):
        graph = ConstraintGraph()
        p, q = pos(), pos()
        graph.link(p, q, EdgeKind.BODY)
        extras = graph.extra_positions()
        assert p in extras and q in extras
