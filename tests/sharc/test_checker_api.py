"""Tests for the one-call pipeline API (repro.sharc.checker) and the
top-level package surface."""

import pytest

import repro
from repro.errors import SharcError
from repro.sharc.checker import check_and_run, check_source
from repro.sharc import check_source as pkg_check_source


CLEAN = """
int main() { printf("hi\\n"); return 0; }
"""

BROKEN = """
int readonly x = 1;
int main() { x = 2; return 0; }
"""


class TestCheckedProgram:
    def test_ok_property(self):
        assert check_source(CLEAN).ok
        assert not check_source(BROKEN).ok

    def test_filename_threaded_through(self):
        checked = check_source(BROKEN, "myfile.c")
        assert checked.filename == "myfile.c"
        assert "myfile.c" in checked.render_diagnostics()

    def test_source_retained(self):
        checked = check_source(CLEAN, "a.c")
        assert checked.source == CLEAN

    def test_diagnostics_partitioned(self):
        checked = check_source(BROKEN)
        assert checked.errors and not checked.ok
        assert isinstance(checked.warnings, list)
        assert isinstance(checked.suggestions, list)

    def test_inferred_source_parses_back(self):
        from repro.cfront.parser import parse_program
        checked = check_source(CLEAN)
        parse_program(checked.inferred_source())


class TestCheckAndRun:
    def test_clean_program_runs(self):
        checked, result = check_and_run(CLEAN, seed=1)
        assert checked.ok
        assert result is not None and result.output == "hi\n"

    def test_broken_program_returns_none_result(self):
        checked, result = check_and_run(BROKEN)
        assert not checked.ok
        assert result is None

    def test_require_clean_raises(self):
        with pytest.raises(SharcError, match="static checking failed"):
            check_and_run(BROKEN, require_clean=True)


class TestPackageSurface:
    def test_lazy_toplevel_exports(self):
        assert repro.check_source is pkg_check_source
        assert callable(repro.run_checked)
        assert callable(repro.check_and_run)
        assert repro.__version__

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.frobnicate

    def test_sharc_package_lazy_exports(self):
        import repro.sharc as sharc
        assert sharc.CheckedProgram.__name__ == "CheckedProgram"
        with pytest.raises(AttributeError):
            sharc.nonsense

    def test_run_source_convenience(self):
        from repro.runtime import run_source
        result = run_source(CLEAN, seed=0)
        assert result.output == "hi\n"
        with pytest.raises(SharcError):
            run_source(BROKEN)
