"""Tests for the Section 4.1 defaulting rules."""

from repro.cfront.parser import parse_program
from repro.sharc import modes as M
from repro.sharc.defaults import apply_program_defaults


def defaults(source):
    prog = parse_program(source)
    apply_program_defaults(prog)
    return prog


def field(prog, struct, name):
    return dict(prog.structs.fields(struct))[name]


class TestStructFieldDefaults:
    def test_unannotated_outermost_inherits(self):
        prog = defaults("struct s { int v; };")
        assert field(prog, "s", "v").mode.is_inherit

    def test_explicit_annotation_kept(self):
        prog = defaults("struct s { int dynamic v; };")
        assert field(prog, "s", "v").mode.is_dynamic

    def test_pointer_target_defaults_dynamic_in_struct(self):
        prog = defaults("struct s { char *p; };")
        f = field(prog, "s", "p")
        assert f.mode.is_inherit
        assert f.base.target.mode.is_dynamic

    def test_deep_pointer_targets_dynamic(self):
        prog = defaults("struct s { char **pp; };")
        f = field(prog, "s", "pp")
        assert f.base.target.mode.is_dynamic
        assert f.base.target.base.target.mode.is_dynamic

    def test_racy_struct_pointer_targets(self):
        prog = defaults("struct s { mutex *m2; cond *c2; };")
        assert field(prog, "s", "m2").base.target.mode.is_racy
        assert field(prog, "s", "c2").base.target.mode.is_racy

    def test_embedded_racy_struct_field(self):
        prog = defaults("struct s { mutex m; };")
        assert field(prog, "s", "m").mode.is_racy

    def test_lock_field_promoted_readonly(self):
        prog = defaults(
            "struct s { mutex *mut; char *locked(mut) d; };")
        assert field(prog, "s", "mut").mode.is_readonly

    def test_lock_path_member_promoted(self):
        # locked(owner->m): 'owner' and 'm' both named; sibling 'owner'
        # becomes readonly.
        prog = defaults("""
            struct holder { mutex *m; };
            struct s { struct holder *owner;
                       int locked(owner->m) v; };
        """)
        assert field(prog, "s", "owner").mode.is_readonly

    def test_function_pointer_field_has_no_cell_mode(self):
        prog = defaults("struct s { void (*cb)(int x); };")
        f = field(prog, "s", "cb")
        assert f.mode.is_inherit  # the pointer cell inherits
        assert f.base.target.mode is None  # the function itself: none


class TestDeclDefaults:
    def glob(self, source, name="x"):
        prog = defaults(source)
        return next(g for g in prog.globals() if g.name == name)

    def test_explicit_pointer_mode_copies_to_target(self):
        decl = self.glob("int * dynamic x;")
        assert decl.qtype.mode.is_dynamic
        assert decl.qtype.base.target.mode.is_dynamic

    def test_copy_is_recursive(self):
        decl = self.glob("int * * dynamic x;")
        t1 = decl.qtype.base.target
        assert t1.mode.is_dynamic
        assert t1.base.target.mode.is_dynamic

    def test_explicit_target_not_overwritten(self):
        decl = self.glob("int private * dynamic x;")
        assert decl.qtype.base.target.mode.is_private

    def test_no_copy_from_unannotated_pointer(self):
        decl = self.glob("int *x;")
        assert decl.qtype.mode is None
        assert decl.qtype.base.target.mode is None

    def test_racy_type_variable(self):
        decl = self.glob("mutex x;")
        assert decl.qtype.mode.is_racy

    def test_racy_target_through_pointer(self):
        decl = self.glob("mutex *x;")
        assert decl.qtype.base.target.mode.is_racy

    def test_global_named_in_lock_becomes_readonly(self):
        prog = defaults("""
            mutex *biglock;
            void f() { int locked(biglock) *p; }
        """)
        decl = next(g for g in prog.globals() if g.name == "biglock")
        assert decl.qtype.mode.is_readonly

    def test_local_named_in_lock_becomes_readonly(self):
        prog = defaults("""
            void f(mutex racy *m) {
              mutex *lk;
              int locked(lk) *p;
            }
        """)
        func = prog.functions()[0]
        from repro.sharc.defaults import collect_local_decls
        lk = next(d for d in collect_local_decls(func) if d.name == "lk")
        assert lk.qtype.mode.is_readonly

    def test_param_defaults_applied(self):
        prog = defaults("void f(mutex *m) { }")
        param = prog.functions()[0].qtype.base.params[0]
        assert param.base.target.mode.is_racy
