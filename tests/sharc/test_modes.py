"""Unit tests for the sharing-mode algebra."""

import pytest

from repro.sharc import modes as M


class TestConstruction:
    def test_locked_requires_expression(self):
        with pytest.raises(ValueError):
            M.Mode(M.ModeKind.LOCKED)

    def test_non_locked_rejects_lock(self):
        with pytest.raises(ValueError):
            M.Mode(M.ModeKind.PRIVATE, "lk")

    def test_locked_str(self):
        assert str(M.locked("s->m")) == "locked(s->m)"

    def test_singletons_render(self):
        assert str(M.PRIVATE) == "private"
        assert str(M.DYNAMIC) == "dynamic"
        assert str(M.READONLY) == "readonly"
        assert str(M.RACY) == "racy"

    def test_internal_modes_not_user_visible(self):
        assert not M.ModeKind.DYNAMIC_IN.user_visible
        assert not M.ModeKind.INHERIT.user_visible
        assert M.ModeKind.LOCKED.user_visible


class TestPredicates:
    def test_needs_runtime_check(self):
        assert M.DYNAMIC.needs_runtime_check
        assert M.locked("m").needs_runtime_check
        assert not M.PRIVATE.needs_runtime_check
        assert not M.RACY.needs_runtime_check
        assert not M.READONLY.needs_runtime_check

    def test_kind_predicates(self):
        assert M.PRIVATE.is_private
        assert M.READONLY.is_readonly
        assert M.RACY.is_racy
        assert M.DYNAMIC.is_dynamic
        assert M.locked("m").is_locked
        assert M.INHERIT.is_inherit


class TestTargetCompatibility:
    def test_identical_modes_compatible(self):
        for mode in (M.PRIVATE, M.DYNAMIC, M.READONLY, M.RACY,
                     M.locked("m")):
            assert M.target_compatible(mode, mode)

    def test_locked_compares_lock_text(self):
        assert M.target_compatible(M.locked("a"), M.locked("a"))
        assert not M.target_compatible(M.locked("a"), M.locked("b"))

    def test_dynamic_in_accepts_private_and_dynamic(self):
        assert M.target_compatible(M.DYNAMIC_IN, M.PRIVATE)
        assert M.target_compatible(M.DYNAMIC_IN, M.DYNAMIC)
        assert M.target_compatible(M.PRIVATE, M.DYNAMIC_IN)
        assert M.target_compatible(M.DYNAMIC_IN, M.DYNAMIC_IN)

    def test_dynamic_in_rejects_locked_and_racy(self):
        assert not M.target_compatible(M.DYNAMIC_IN, M.locked("m"))
        assert not M.target_compatible(M.DYNAMIC_IN, M.RACY)

    def test_cross_mode_incompatible(self):
        assert not M.target_compatible(M.PRIVATE, M.DYNAMIC)
        assert not M.target_compatible(M.READONLY, M.DYNAMIC)
        assert not M.target_compatible(M.RACY, M.PRIVATE)
        assert not M.target_compatible(M.locked("m"), M.PRIVATE)


class TestScastConvertible:
    def test_any_resolved_pair_convertible(self):
        assert M.scast_convertible(M.PRIVATE, M.DYNAMIC)
        assert M.scast_convertible(M.DYNAMIC, M.locked("m"))
        assert M.scast_convertible(M.READONLY, M.PRIVATE)

    def test_inherit_must_be_resolved(self):
        with pytest.raises(ValueError):
            M.scast_convertible(M.INHERIT, M.PRIVATE)


class TestModeSummary:
    def test_counting(self):
        summary = M.ModeSummary.count(
            [M.PRIVATE, M.PRIVATE, M.DYNAMIC, M.locked("m")])
        assert summary.counts["private"] == 2
        assert summary.total == 4
