"""Tests for the shared expression-type walker's corners."""

from tests.conftest import check_ok
from repro.cfront import cast as A
from repro.sharc.defaults import collect_local_decls


def expr_types(source, func="main"):
    checked = check_ok(source)
    body = checked.program.function(func).body
    return checked, list(A.all_exprs(body))


class TestTypeAnnotationsOnNodes:
    def test_every_rvalue_gets_a_ctype(self):
        checked, exprs = expr_types("""
        int main() {
          int x = 1;
          long y = x + 2;
          double z = 1.5;
          char *s = "hi";
          return x;
        }
        """)
        idents = [e for e in exprs if isinstance(e, A.Ident)]
        assert idents
        assert all(e.ctype is not None for e in idents)

    def test_member_offsets_attached(self):
        checked, exprs = expr_types("""
        typedef struct pt { int x; int y; } pt_t;
        int main() {
          pt_t p;
          p.y = 5;
          return p.y;
        }
        """)
        members = [e for e in exprs if isinstance(e, A.Member)]
        assert members
        assert all(e.sharc_offset == 4 for e in members)

    def test_index_elem_size_attached(self):
        checked, exprs = expr_types("""
        int main() {
          long v[4];
          v[2] = 9;
          return 0;
        }
        """)
        idx = next(e for e in exprs if isinstance(e, A.Index))
        assert idx.sharc_elem_size == 8
        assert idx.sharc_on_array

    def test_pointer_index_not_on_array(self):
        checked, exprs = expr_types("""
        int main() {
          int *v = malloc(16);
          v[1] = 2;
          return 0;
        }
        """)
        idx = next(e for e in exprs if isinstance(e, A.Index))
        assert not idx.sharc_on_array
        assert idx.sharc_elem_size == 4


class TestStructPolymorphismResolution:
    SOURCE = """
    typedef struct wrap { int tag; struct wrap *peer; } wrap_t;
    void *w(void *d) {
      wrap_t *shared = d;
      wrap_t *mine = malloc(sizeof(wrap_t));
      mine->tag = 1;
      int t = shared->tag;
      return NULL;
    }
    int main() { thread_create(w, NULL); return 0; }
    """

    def test_same_field_two_modes(self):
        """wrap.tag is private through `mine` but dynamic through
        `shared` — the q variable at work."""
        checked, exprs = expr_types(self.SOURCE, func="w")
        members = {id(e): e for e in exprs
                   if isinstance(e, A.Member)}.values()
        by_obj = {e.obj.name: e for e in members
                  if isinstance(e.obj, A.Ident)}
        assert getattr(by_obj["mine"], "sharc_write", None) is None
        assert getattr(by_obj["shared"], "sharc_read", None) is not None


class TestLocalTypes:
    def test_nested_block_locals_visible(self):
        checked = check_ok("""
        int main() {
          int outer = 1;
          if (outer) {
            int inner = 2;
            outer = inner;
          }
          return outer;
        }
        """)
        func = checked.program.function("main")
        names = {d.name for d in collect_local_decls(func)}
        assert names == {"outer", "inner"}

    def test_for_init_declarations_collected(self):
        checked = check_ok("""
        int main() {
          int s = 0;
          for (int i = 0; i < 3; i++) s = s + i;
          return s;
        }
        """)
        func = checked.program.function("main")
        names = {d.name for d in collect_local_decls(func)}
        assert "i" in names
