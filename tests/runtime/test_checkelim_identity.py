"""The check eliminator's soundness gate: running with ``checkelim`` on
vs off must be *bit-identical* — same reports, same step counts, same
scheduling decisions — across seeds and scheduling policies.  The only
thing allowed to differ is the check-mix accounting (full vs range vs
elided) and therefore wall time.

This holds by construction: an elided check still runs the
``ShadowMemory.recheck`` guard, which is exactly the cache-hit prefix of
the full check, and falls back to the full check on a miss.  These tests
keep the construction honest."""

from hypothesis import given, settings, strategies as st

from tests.conftest import check_ok
from repro.explore.driver import run_schedule
from repro.runtime.interp import run_checked

RACY = """
int shared = 0;
int buf[32];
void *w(void *a) {
  int i; int x;
  for (i = 0; i < 16; i++) {
    x = shared;
    shared = x + buf[i];
    buf[i] = buf[i] + 1;
  }
  return NULL;
}
int main() {
  int t1 = thread_create(w, NULL);
  int t2 = thread_create(w, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
"""

POLICIES = ["random", "round-robin", "pct", "pb"]


def _run(checked, seed, policy, checkelim):
    return run_checked(checked, seed=seed, policy=policy,
                       checkelim=checkelim, record_trace=True)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40),
       policy=st.sampled_from(POLICIES))
def test_on_off_runs_are_bit_identical(seed, policy):
    checked = check_ok(RACY)
    on = _run(checked, seed, policy, True)
    off = _run(checked, seed, policy, False)
    assert on.stats.steps_total == off.stats.steps_total
    assert on.trace == off.trace  # every context switch, in order
    assert on.report_counts == off.report_counts
    assert [r.render() for r in on.reports] == \
        [r.render() for r in off.reports]
    assert on.output == off.output
    assert (on.deadlock, on.error, on.timeout, on.exit_code) == \
        (off.deadlock, off.error, off.timeout, off.exit_code)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40),
       policy=st.sampled_from(POLICIES))
def test_explore_outcomes_are_identical(seed, policy):
    """The ``sharc explore`` path (trace hash included) can't tell the
    two configurations apart either."""
    on = run_schedule(RACY, "t.c", seed, policy, checkelim=True)
    off = run_schedule(RACY, "t.c", seed, policy, checkelim=False)
    assert on.trace_hash == off.trace_hash
    assert on.report_keys == off.report_keys
    assert (on.steps, on.switches, on.deadlock, on.error) == \
        (off.steps, off.switches, off.deadlock, off.error)


class TestCheckMix:
    """What IS allowed to change: how the same checks get discharged."""

    def test_elision_actually_fires(self):
        checked = check_ok(RACY)
        on = _run(checked, 3, "random", True)
        assert on.stats.checks_elided > 0
        assert on.stats.checks_elided_pct > 0.0

    def test_off_run_never_elides(self):
        checked = check_ok(RACY)
        off = _run(checked, 3, "random", False)
        assert off.stats.checks_elided == 0
        assert off.stats.checks_elided_pct == 0.0

    def test_total_dynamic_checks_are_conserved(self):
        # Every check an on-run elides, the off-run walks in full: the
        # grand total of check *sites hit* is the same run to run.
        checked = check_ok(RACY)
        on = _run(checked, 3, "random", True)
        off = _run(checked, 3, "random", False)
        assert (on.stats.checks_full + on.stats.checks_range
                + on.stats.checks_elided) == \
            (off.stats.checks_full + off.stats.checks_range
             + off.stats.checks_elided)
        assert on.stats.accesses_dynamic == off.stats.accesses_dynamic


class TestWorkloadReduction:
    """The acceptance criterion: >= 20%% fewer full shadow walks on at
    least two Table 1 workloads, with everything observable identical."""

    def _pair(self, name):
        from repro.bench.workloads import all_workloads
        workload = {w.name: w for w in all_workloads()}[name]
        from repro.bench.harness import run_workload
        on = run_workload(workload, checkelim=True)
        off = run_workload(workload, checkelim=False)
        return on, off

    def _assert_reduced(self, name):
        on, off = self._pair(name)
        assert on.sharc_steps == off.sharc_steps
        assert on.reports == off.reports
        walked_on = (on.sharc_result.stats.checks_full
                     + on.sharc_result.stats.checks_range)
        walked_off = (off.sharc_result.stats.checks_full
                      + off.sharc_result.stats.checks_range)
        assert walked_on <= 0.8 * walked_off, \
            f"{name}: {walked_on} vs {walked_off} shadow walks"

    def test_pfscan_walks_drop_at_least_20_pct(self):
        self._assert_reduced("pfscan")

    def test_dillo_walks_drop_at_least_20_pct(self):
        self._assert_reduced("dillo")
