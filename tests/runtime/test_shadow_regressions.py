"""Regression tests for three shadow-memory bugs.

Each test here fails on the pre-fix implementation:

1. ``chkread`` conflicts reported whichever thread *touched* the granule
   last instead of the thread that is the *writer* (Figure 6's judgment
   is "another thread is the writer").
2. ``clear_range`` (``free()``) left the freed granules in the
   per-thread first-access logs, so the logs grew without bound (every
   function return frees a stack slab) and a later thread exit walked
   granules belonging to a different object.
3. ``_check_tid`` accepted thread id 0 (and negatives), silently
   aliasing bit 0 — the "single thread reads and writes" writer bit —
   and corrupting the encoding.
4. Zero-size accesses (``memcpy(p, q, 0)``, empty summary ranges) were
   clamped to one granule and checked memory the program never touched,
   so they could set bits and report phantom conflicts.
5. ``chkread`` by the thread that *is* the granule's writer reported the
   thread as conflicting with itself once any other thread's reader bit
   appeared alongside the writer bit.
"""

import pytest

from repro.errors import Loc
from repro.runtime.shadow import GRANULE_SHIFT, ShadowMemory

LOC = Loc("t.c", 1)


@pytest.fixture
def shadow():
    return ShadowMemory(nbytes=1)


class TestReadConflictNamesTheWriter:
    """Bug 1: misattribution of chkread conflicts under 3 threads."""

    def test_conflict_reports_writer_not_last_reader(self, shadow):
        # Thread 1 writes the granule, becoming its writer.
        shadow.chkwrite(0x100, 4, 1, "shared->buf", Loc("w.c", 10))
        # Thread 3 reads it — a conflict for thread 3, and the granule's
        # most recent *access* is now thread 3's innocent read.
        shadow.chkread(0x100, 4, 3, "shared->buf", Loc("r3.c", 30))
        # Thread 2 reads: the conflicting party is thread 1 (the writer),
        # not thread 3 (merely the last accessor).
        conflict, _ = shadow.chkread(0x100, 4, 2, "shared->buf",
                                     Loc("r2.c", 20))
        assert conflict is not None
        assert conflict.tid == 1
        assert conflict.is_write
        assert conflict.loc.line == 10

    def test_write_conflict_still_reports_last_access(self, shadow):
        # chkwrite's judgment is "any other thread read or wrote", so the
        # last access — even a read — is the right report there.
        shadow.chkread(0x200, 4, 1, "x", Loc("r.c", 5))
        conflict, _ = shadow.chkwrite(0x200, 4, 2, "x", Loc("w.c", 6))
        assert conflict is not None
        assert conflict.tid == 1
        assert not conflict.is_write


class TestClearRangePurgesThreadLogs:
    """Bug 2: free + realloc + thread exit."""

    def test_freed_granules_leave_every_thread_log(self, shadow):
        shadow.chkwrite(0x100, 32, 1, "p", LOC)
        shadow.chkread(0x100, 32, 1, "p", LOC)
        granules = set(shadow.granules(0x100, 32))
        assert granules <= shadow.thread_log[1]
        shadow.clear_range(0x100, 32)  # free(p)
        for tid, log in shadow.thread_log.items():
            assert not granules & log, (
                f"freed granules still logged for thread {tid}")

    def test_free_realloc_exit_keeps_new_owner_intact(self, shadow):
        # Thread 1 owns an object, then frees it.
        shadow.chkwrite(0x100, 16, 1, "old", LOC)
        shadow.clear_range(0x100, 16)
        # The allocator hands the same address to a new object owned by
        # thread 2.
        shadow.chkwrite(0x100, 16, 2, "new", LOC)
        # Thread 1 exits.  Its exit walk must not visit the recycled
        # granule at all — the log entry died with the free.
        shadow.clear_thread(1)
        granule = 0x100 >> GRANULE_SHIFT
        assert shadow.bits[granule] == (1 << 2) | 1
        # Thread 2 is still the sole owner: no conflict, fast path.
        conflict, slow = shadow.chkwrite(0x100, 16, 2, "new", LOC)
        assert conflict is None and slow == 0

    def test_logs_do_not_grow_across_alloc_free_cycles(self, shadow):
        # The stack pattern: every "call" touches a fresh slab (the bump
        # allocator never reuses addresses) and frees it on return.
        for i in range(50):
            addr = 0x1000 + i * 64
            shadow.chkwrite(addr, 64, 1, "frame", LOC)
            shadow.clear_range(addr, 64)
        assert len(shadow.thread_log.get(1, set())) == 0


class TestTidValidation:
    """Bug 3: thread id 0 aliases the writer bit."""

    def test_chkread_rejects_tid_zero(self, shadow):
        with pytest.raises(ValueError, match="bit 0"):
            shadow.chkread(0x100, 4, 0, "x", LOC)

    def test_chkwrite_rejects_tid_zero(self, shadow):
        with pytest.raises(ValueError, match="reserved"):
            shadow.chkwrite(0x100, 4, 0, "x", LOC)

    def test_negative_tid_rejected(self, shadow):
        with pytest.raises(ValueError):
            shadow.chkread(0x100, 4, -1, "x", LOC)

    def test_rejected_tid_leaves_no_state(self, shadow):
        with pytest.raises(ValueError):
            shadow.chkwrite(0x100, 4, 0, "x", LOC)
        assert shadow.bits == {}
        assert shadow.thread_log == {}
        assert shadow.updates == 0


class TestZeroSizeAccessIsNoOp:
    """Bug 4: zero-size accesses must not walk (or claim) any granule."""

    def test_zero_size_read_and_write_return_clean(self, shadow):
        for chk in (shadow.chkread, shadow.chkwrite,
                    shadow.chkread_range, shadow.chkwrite_range):
            assert chk(0x100, 0, 1, "p", LOC) == (None, 0)
        assert shadow.bits == {}
        assert shadow.updates == 0
        assert shadow.touched == set()
        assert shadow.thread_log == {}

    def test_zero_size_read_ignores_another_threads_write(self, shadow):
        # Thread 1 owns the granule; thread 2's zero-size overlapping
        # "access" reads no bytes and must not be reported as a race.
        shadow.chkwrite(0x100, 16, 1, "buf", LOC)
        conflict, slow = shadow.chkread(0x100, 0, 2, "buf+0..0", LOC)
        assert conflict is None and slow == 0
        # ...and thread 2 gained no reader bit for thread 1 to trip on.
        conflict, slow = shadow.chkwrite(0x100, 16, 1, "buf", LOC)
        assert conflict is None

    def test_zero_size_recheck_guards_hold_vacuously(self, shadow):
        assert shadow.recheck(0x100, 0, 1, True)
        assert shadow.recheck_locked(0x100, 0, 1, True, "p", LOC)
        assert shadow.updates == 0
        assert shadow.bits == {}

    def test_zero_size_does_not_disturb_the_fastpath_cache(self, shadow):
        shadow.chkwrite(0x200, 4, 1, "x", LOC)
        shadow.chkread(0x300, 0, 1, "y", LOC)
        # The cached range is still 0x200's write: the next identical
        # write takes the fast path.
        before = shadow.fastpath_hits
        conflict, slow = shadow.chkwrite(0x200, 4, 1, "x", LOC)
        assert conflict is None and slow == 0
        assert shadow.fastpath_hits > before


class TestWriterDoesNotConflictWithItself:
    """Bug 5: the granule's writer re-reading it is not a race."""

    def _seed_writer_plus_foreign_reader(self, shadow, addr=0x100):
        # Thread 1 writes (bits = writer|t1); thread 2's read is a
        # genuine conflict for *thread 2* but still sets t2's bit.
        shadow.chkwrite(addr, 4, 1, "q->data", Loc("w.c", 7))
        conflict, _ = shadow.chkread(addr, 4, 2, "q->data", Loc("r.c", 8))
        assert conflict is not None and conflict.tid == 1

    def test_writer_reread_is_clean(self, shadow):
        self._seed_writer_plus_foreign_reader(shadow)
        # Thread 1 — still the writer on record — reads its own data:
        # "another thread is the writer" does not hold.
        conflict, slow = shadow.chkread(0x100, 4, 1, "q->data",
                                        Loc("r1.c", 9))
        assert conflict is None
        assert slow == 0  # thread 1's bit was already set: fast path

    def test_writer_reread_is_clean_on_range_walk(self, shadow):
        shadow.range_threshold = 1  # force the page-sliced range path
        self._seed_writer_plus_foreign_reader(shadow)
        conflict, _ = shadow.chkread(0x100, 4, 1, "q->data",
                                     Loc("r1.c", 9))
        assert conflict is None

    def test_foreign_reader_still_conflicts_after_writer_reread(
            self, shadow):
        self._seed_writer_plus_foreign_reader(shadow)
        shadow.chkread(0x100, 4, 1, "q->data", Loc("r1.c", 9))
        # Thread 3 reading is still a real race with writer thread 1.
        conflict, _ = shadow.chkread(0x100, 4, 3, "q->data",
                                     Loc("r3.c", 10))
        assert conflict is not None
        assert conflict.tid == 1 and conflict.is_write
