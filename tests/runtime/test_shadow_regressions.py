"""Regression tests for three shadow-memory bugs.

Each test here fails on the pre-fix implementation:

1. ``chkread`` conflicts reported whichever thread *touched* the granule
   last instead of the thread that is the *writer* (Figure 6's judgment
   is "another thread is the writer").
2. ``clear_range`` (``free()``) left the freed granules in the
   per-thread first-access logs, so the logs grew without bound (every
   function return frees a stack slab) and a later thread exit walked
   granules belonging to a different object.
3. ``_check_tid`` accepted thread id 0 (and negatives), silently
   aliasing bit 0 — the "single thread reads and writes" writer bit —
   and corrupting the encoding.
"""

import pytest

from repro.errors import Loc
from repro.runtime.shadow import GRANULE_SHIFT, ShadowMemory

LOC = Loc("t.c", 1)


@pytest.fixture
def shadow():
    return ShadowMemory(nbytes=1)


class TestReadConflictNamesTheWriter:
    """Bug 1: misattribution of chkread conflicts under 3 threads."""

    def test_conflict_reports_writer_not_last_reader(self, shadow):
        # Thread 1 writes the granule, becoming its writer.
        shadow.chkwrite(0x100, 4, 1, "shared->buf", Loc("w.c", 10))
        # Thread 3 reads it — a conflict for thread 3, and the granule's
        # most recent *access* is now thread 3's innocent read.
        shadow.chkread(0x100, 4, 3, "shared->buf", Loc("r3.c", 30))
        # Thread 2 reads: the conflicting party is thread 1 (the writer),
        # not thread 3 (merely the last accessor).
        conflict, _ = shadow.chkread(0x100, 4, 2, "shared->buf",
                                     Loc("r2.c", 20))
        assert conflict is not None
        assert conflict.tid == 1
        assert conflict.is_write
        assert conflict.loc.line == 10

    def test_write_conflict_still_reports_last_access(self, shadow):
        # chkwrite's judgment is "any other thread read or wrote", so the
        # last access — even a read — is the right report there.
        shadow.chkread(0x200, 4, 1, "x", Loc("r.c", 5))
        conflict, _ = shadow.chkwrite(0x200, 4, 2, "x", Loc("w.c", 6))
        assert conflict is not None
        assert conflict.tid == 1
        assert not conflict.is_write


class TestClearRangePurgesThreadLogs:
    """Bug 2: free + realloc + thread exit."""

    def test_freed_granules_leave_every_thread_log(self, shadow):
        shadow.chkwrite(0x100, 32, 1, "p", LOC)
        shadow.chkread(0x100, 32, 1, "p", LOC)
        granules = set(shadow.granules(0x100, 32))
        assert granules <= shadow.thread_log[1]
        shadow.clear_range(0x100, 32)  # free(p)
        for tid, log in shadow.thread_log.items():
            assert not granules & log, (
                f"freed granules still logged for thread {tid}")

    def test_free_realloc_exit_keeps_new_owner_intact(self, shadow):
        # Thread 1 owns an object, then frees it.
        shadow.chkwrite(0x100, 16, 1, "old", LOC)
        shadow.clear_range(0x100, 16)
        # The allocator hands the same address to a new object owned by
        # thread 2.
        shadow.chkwrite(0x100, 16, 2, "new", LOC)
        # Thread 1 exits.  Its exit walk must not visit the recycled
        # granule at all — the log entry died with the free.
        shadow.clear_thread(1)
        granule = 0x100 >> GRANULE_SHIFT
        assert shadow.bits[granule] == (1 << 2) | 1
        # Thread 2 is still the sole owner: no conflict, fast path.
        conflict, slow = shadow.chkwrite(0x100, 16, 2, "new", LOC)
        assert conflict is None and slow == 0

    def test_logs_do_not_grow_across_alloc_free_cycles(self, shadow):
        # The stack pattern: every "call" touches a fresh slab (the bump
        # allocator never reuses addresses) and frees it on return.
        for i in range(50):
            addr = 0x1000 + i * 64
            shadow.chkwrite(addr, 64, 1, "frame", LOC)
            shadow.clear_range(addr, 64)
        assert len(shadow.thread_log.get(1, set())) == 0


class TestTidValidation:
    """Bug 3: thread id 0 aliases the writer bit."""

    def test_chkread_rejects_tid_zero(self, shadow):
        with pytest.raises(ValueError, match="bit 0"):
            shadow.chkread(0x100, 4, 0, "x", LOC)

    def test_chkwrite_rejects_tid_zero(self, shadow):
        with pytest.raises(ValueError, match="reserved"):
            shadow.chkwrite(0x100, 4, 0, "x", LOC)

    def test_negative_tid_rejected(self, shadow):
        with pytest.raises(ValueError):
            shadow.chkread(0x100, 4, -1, "x", LOC)

    def test_rejected_tid_leaves_no_state(self, shadow):
        with pytest.raises(ValueError):
            shadow.chkwrite(0x100, 4, 0, "x", LOC)
        assert shadow.bits == {}
        assert shadow.thread_log == {}
        assert shadow.updates == 0
