"""The campaign telemetry stream (repro.obs.telemetry).

Covers the writer protocol (heartbeats, multi-sweep accumulation,
rate/ETA with an injected clock), the crash-safety contract (truncated
tails parse), the status fold, and the two invariants the tentpole
rests on: the stream alone reconstructs a live view, and telemetry
never perturbs the run it observes (bit-identity by seed).
"""

import io
import json

import pytest

from repro.explore.driver import explore_source
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA, CampaignStatus, ProgressPrinter, TelemetryWriter,
    read_telemetry, supports_live, validate_status, validate_telemetry,
)

RACY = """
int counter = 0;
void *bump(void *arg) {
  counter = counter + 1;
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
"""


class FakeClock:
    """Deterministic monotonic clock: each reading advances by
    ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def _stream(tmp_path, **kwargs):
    return TelemetryWriter(str(tmp_path / "telemetry.jsonl"), **kwargs)


class TestWriter:
    def test_start_and_final_frame_the_stream(self, tmp_path):
        writer = _stream(tmp_path, campaign="demo", total=10,
                         clock=FakeClock())
        writer.final()
        records = read_telemetry(writer.path)
        assert [r["kind"] for r in records] == ["start", "final"]
        assert records[0]["schema"] == TELEMETRY_SCHEMA
        assert records[0]["campaign"] == "demo"
        assert validate_telemetry(records) == []

    def test_heartbeat_every_flush_batch(self, tmp_path):
        writer = _stream(tmp_path, flush_every=2, clock=FakeClock())
        summary = explore_source(RACY, "racy.c", seeds=3,
                                 policies=("random",),
                                 telemetry=writer)
        writer.final()
        records = read_telemetry(writer.path)
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "start" and kinds[-1] == "final"
        assert kinds.count("sweep-start") == 1
        assert kinds.count("sweep-end") == 1
        progress = [r for r in records if r["kind"] == "progress"]
        # 3 outcomes at flush_every=2: one mid-sweep heartbeat plus the
        # end-of-sweep flush of the odd remainder.
        assert len(progress) == 2
        assert progress[-1]["done"] == summary.schedules == 3
        assert validate_telemetry(records) == []

    def test_rate_and_eta_use_injected_clock(self, tmp_path):
        clock = FakeClock(step=0.0)  # manual control
        clock.now = 0.0
        writer = _stream(tmp_path, total=4, flush_every=100,
                         clock=lambda: clock.now)
        writer.begin_sweep("a.c", "sharc", ("random",), 4)

        class _O:
            policy, checker, seed = "random", "sharc", 0
            trace_hash, reports, report_keys = "h", 0, ()

        clock.now = 2.0
        writer.record_outcome(_O())
        writer.progress()
        record = read_telemetry(writer.path)[-1]
        # 1 schedule / 2 seconds; 3 remaining at 0.5/s -> 6s ETA.
        assert record["rate"] == pytest.approx(0.5)
        assert record["eta_seconds"] == pytest.approx(6.0)
        writer.close()

    def test_multi_sweep_totals_accumulate(self, tmp_path):
        writer = _stream(tmp_path, clock=FakeClock())
        explore_source(RACY, "racy.c", seeds=2, policies=("random",),
                       telemetry=writer)
        explore_source(RACY, "racy.c", seeds=2, policies=("random",),
                       checker="eraser", telemetry=writer)
        writer.final()
        records = read_telemetry(writer.path)
        final = records[-1]
        assert final["done"] == final["total"] == 4
        starts = [r for r in records if r["kind"] == "sweep-start"]
        assert [s["checker"] for s in starts] == ["sharc", "eraser"]
        assert validate_telemetry(records) == []

    def test_violation_emitted_once_per_report_key(self, tmp_path):
        writer = _stream(tmp_path, clock=FakeClock())
        explore_source(RACY, "racy.c", seeds=12,
                       policies=("pct", "random"), telemetry=writer)
        writer.final()
        records = read_telemetry(writer.path)
        violations = [r for r in records if r["kind"] == "violation"]
        keys = [v["report"] for v in violations]
        assert len(keys) == len(set(keys)), "duplicate violation records"
        for v in violations:
            assert isinstance(v["seed"], int) and v["policy"]


class TestCrashSafety:
    def test_truncated_tail_is_dropped(self, tmp_path):
        writer = _stream(tmp_path, clock=FakeClock())
        writer.emit("progress", done=1, total=2, distinct_traces=1,
                    failing=0, crashes=0, per_policy={},
                    per_backend={})
        writer.close()
        with open(writer.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "final", "t": 3.0, "do')  # killed
        records = read_telemetry(writer.path)
        assert [r["kind"] for r in records] == ["start", "progress"]
        status = CampaignStatus.from_records(records)
        assert status.state == "running"
        assert status.done == 1

    def test_every_record_is_durable_as_written(self, tmp_path):
        """The file must be parseable after *every* emit — no buffered
        tail held back by the writer."""
        writer = _stream(tmp_path, clock=FakeClock())
        for i in range(3):
            writer.emit("scenario", name=f"s{i}", verdict="ok")
            assert len(read_telemetry(writer.path)) == 2 + i
        writer.close()


class TestValidators:
    def test_flags_bad_first_record_and_schema(self):
        assert validate_telemetry([]) == ["empty telemetry stream"]
        bad = [{"kind": "progress", "t": 0.0}]
        assert any("start" in p for p in validate_telemetry(bad))
        wrong = [{"kind": "start", "t": 0.0, "schema": "bogus/9"}]
        assert any("schema" in p for p in validate_telemetry(wrong))

    def test_flags_unknown_kinds_and_bad_timestamps(self):
        records = [
            {"kind": "start", "t": 1.0, "schema": TELEMETRY_SCHEMA},
            {"kind": "mystery", "t": 2.0},
            {"kind": "final", "t": 0.5},
        ]
        problems = validate_telemetry(records)
        assert any("unknown kind" in p for p in problems)
        assert any("backwards" in p for p in problems)

    def test_flags_malformed_progress(self):
        records = [
            {"kind": "start", "t": 0.0, "schema": TELEMETRY_SCHEMA},
            {"kind": "progress", "t": 1.0, "done": -1, "total": 2,
             "distinct_traces": 0, "failing": 0, "crashes": 0},
        ]
        problems = validate_telemetry(records)
        assert any("progress.done" in p for p in problems)
        assert any("per_policy" in p for p in problems)

    def test_status_payload_validates(self, tmp_path):
        writer = _stream(tmp_path, clock=FakeClock())
        explore_source(RACY, "racy.c", seeds=2, policies=("random",),
                       telemetry=writer)
        writer.final()
        payload = CampaignStatus.from_file(writer.path).as_dict()
        assert validate_status(payload) == []
        assert payload["state"] == "finished"
        broken = dict(payload, state="bogus", done=-1)
        problems = validate_status(broken)
        assert any("state" in p for p in problems)
        assert any("done" in p for p in problems)


class TestCampaignStatus:
    def test_folds_stream_into_live_view(self, tmp_path):
        writer = _stream(tmp_path, flush_every=1, clock=FakeClock())
        summary = explore_source(RACY, "racy.c", seeds=4,
                                 policies=("random", "pct"),
                                 telemetry=writer)
        writer.final()
        status = CampaignStatus.from_file(writer.path)
        assert status.finished and not status.interrupted
        assert status.done == summary.schedules
        assert status.distinct_traces == summary.distinct_traces
        assert status.failing == len(summary.failures)
        assert set(status.per_policy) == set(summary.per_policy)
        # flush_every=1: one coverage sample per schedule, monotone x.
        xs = [x for x, _ in status.coverage_curve]
        assert xs == sorted(xs) and len(xs) == summary.schedules
        text = status.render()
        assert f"{status.done}/{status.total}" in text
        assert "distinct traces" in text

    def test_mid_campaign_stream_reads_as_running(self, tmp_path):
        writer = _stream(tmp_path, flush_every=1, clock=FakeClock())
        explore_source(RACY, "racy.c", seeds=2, policies=("random",),
                       telemetry=writer)
        writer.close()  # no final record: campaign still going
        status = CampaignStatus.from_file(writer.path)
        assert status.state == "running"
        assert "current sweep" in status.render()

    def test_interrupted_final_record(self, tmp_path):
        writer = _stream(tmp_path, clock=FakeClock())
        writer.final(interrupted=True)
        status = CampaignStatus.from_file(writer.path)
        assert status.state == "interrupted"


class TestBitIdentity:
    def test_telemetry_does_not_perturb_outcomes(self, tmp_path):
        """The determinism contract: a telemetry-on sweep produces the
        exact same outcome rows (steps, traces, reports, order) as a
        telemetry-off sweep of the same grid."""
        writer = _stream(tmp_path, flush_every=1, clock=FakeClock())
        with_telemetry = explore_source(
            RACY, "racy.c", seeds=5, policies=("random", "pct"),
            telemetry=writer)
        writer.final()
        without = explore_source(
            RACY, "racy.c", seeds=5, policies=("random", "pct"))
        assert with_telemetry.outcomes == without.outcomes
        assert with_telemetry.trace_hashes == without.trace_hashes

    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    def test_backends_agree_under_telemetry(self, tmp_path, backend):
        writer = _stream(tmp_path, clock=FakeClock())
        summary = explore_source(RACY, "racy.c", seeds=3,
                                 policies=("random",), backend=backend,
                                 telemetry=writer)
        writer.final()
        baseline = explore_source(RACY, "racy.c", seeds=3,
                                  policies=("random",))
        assert [o.trace_hash for o in summary.outcomes] == \
            [o.trace_hash for o in baseline.outcomes]
        assert [o.steps for o in summary.outcomes] == \
            [o.steps for o in baseline.outcomes]


class TestProgressPrinter:
    def test_live_mode_redraws_in_place(self):
        out = io.StringIO()
        printer = ProgressPrinter(out, live=True)
        printer.update("1/10")
        printer.update("2/10")
        printer.close()
        text = out.getvalue()
        assert "\r\x1b[K" in text
        assert text.endswith("\n")

    def test_plain_mode_emits_clean_lines(self):
        out = io.StringIO()
        printer = ProgressPrinter(out, live=False)
        printer.update("1/10")
        printer.update("1/10")  # duplicate: suppressed
        printer.update("2/10")
        printer.close()
        assert out.getvalue() == "1/10\n2/10\n"
        assert "\x1b" not in out.getvalue()

    def test_quiet_suppresses_everything(self):
        out = io.StringIO()
        printer = ProgressPrinter(out, quiet=True, live=True)
        printer.update("1/10")
        printer.close()
        assert out.getvalue() == ""

    def test_supports_live_detection(self, monkeypatch):
        assert not supports_live(io.StringIO())  # no isatty -> False

        class Tty(io.StringIO):
            def isatty(self):
                return True

        monkeypatch.setenv("TERM", "xterm-256color")
        assert supports_live(Tty())
        monkeypatch.setenv("TERM", "dumb")
        assert not supports_live(Tty())

    def test_printer_defaults_to_stream_detection(self):
        printer = ProgressPrinter(io.StringIO())
        assert printer.live is False


class TestFuzzTelemetry:
    def test_fuzz_campaign_streams_scenarios(self, tmp_path):
        from repro.fuzz import FuzzConfig, fuzz_campaign

        writer = _stream(tmp_path, clock=FakeClock())
        config = FuzzConfig(budget=2, seeds=2, policies=("random",),
                            shrink=False, max_steps=40_000)
        report = fuzz_campaign(config, telemetry=writer)
        writer.final()
        records = read_telemetry(writer.path)
        assert validate_telemetry(records) == []
        scenarios = [r for r in records if r["kind"] == "scenario"]
        assert len(scenarios) == len(report.scenarios) == 2
        # 3 sweeps per scenario: interp, compiled, eraser.
        starts = [r for r in records if r["kind"] == "sweep-start"]
        assert len(starts) == 6
        backends = {s["backend"] for s in starts}
        assert backends == {"interp", "compiled"}
        final = records[-1]
        assert final["done"] == final["total"]


def test_module_reexports():
    import repro.obs as obs

    assert obs.TELEMETRY_SCHEMA == TELEMETRY_SCHEMA
    assert obs.TelemetryWriter is TelemetryWriter
    assert json.dumps(CampaignStatus().as_dict())  # JSON-serializable
