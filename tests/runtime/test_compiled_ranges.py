"""Range-batched checks vs scalar loops under the *compiled* backend.

``chkread_range``/``chkwrite_range`` are the page-sliced batch walk the
check eliminator routes monotone array walks through; the scalar path
(``checkelim=False``) performs one full ``chkread``/``chkwrite`` per
element instead.  The existing equivalence tests pin this down at the
shadow-memory unit level and for whole programs under the tree-walking
interpreter only; these properties close the gap by holding the
*compiled* executor to the same contract: the batched and scalar walks
— and the two backends — must be bit-identical in everything except the
check-mix accounting.
"""

from hypothesis import given, settings, strategies as st

import repro.runtime.shadow as shadow_mod
from repro.errors import Loc
from repro.runtime.interp import make_interp, run_checked
from repro.runtime.shadow import GRANULE_SHIFT, ShadowMemory

from ..conftest import check_ok

G = 1 << GRANULE_SHIFT
LOC = Loc("t.c", 1)

POLICIES = ["random", "round-robin", "pct", "pb"]
ARRAY_LENS = [4, 8, 16, 24]


def _walk_source(array_len: int) -> str:
    """A writer/reader pair walking a shared dynamic array — the access
    pattern the range-batched APIs exist for (and racy by design, so the
    equivalence must hold on the conflict paths too, not just the
    fast paths)."""
    return f"""
int dynamic buf[{array_len}];
int total = 0;
void *writer(void *arg) {{
  int i;
  for (i = 0; i < {array_len}; i++) buf[i] = i + 1;
  return NULL;
}}
void *reader(void *arg) {{
  int i;
  int acc = 0;
  for (i = 0; i < {array_len}; i++) acc = acc + buf[i];
  total = acc;
  return NULL;
}}
int main() {{
  int t1 = thread_create(writer, NULL);
  int t2 = thread_create(reader, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}}
"""


_CHECKED = {n: None for n in ARRAY_LENS}


def _checked(array_len):
    if _CHECKED[array_len] is None:
        _CHECKED[array_len] = check_ok(_walk_source(array_len))
    return _CHECKED[array_len]


def _run(checked, seed, policy, *, backend, checkelim=True):
    return run_checked(checked, seed=seed, policy=policy,
                       backend=backend, checkelim=checkelim,
                       record_trace=True)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=30),
       policy=st.sampled_from(POLICIES),
       array_len=st.sampled_from(ARRAY_LENS))
def test_range_walk_and_scalar_loop_agree_under_compiled(seed, policy,
                                                         array_len):
    """Property: under the compiled backend, the range-batched run and
    the scalar per-element run are bit-identical — same schedule, steps,
    reports — with only the check mix allowed to differ."""
    checked = _checked(array_len)
    ranged = _run(checked, seed, policy, backend="compiled")
    scalar = _run(checked, seed, policy, backend="compiled",
                  checkelim=False)
    # The two configurations really took different check paths.
    assert ranged.stats.checks_range > 0
    assert scalar.stats.checks_range == 0
    assert scalar.stats.checks_full > ranged.stats.checks_full
    # ... and agree on everything observable.
    assert ranged.stats.steps_total == scalar.stats.steps_total
    assert ranged.trace == scalar.trace
    assert ranged.report_counts == scalar.report_counts
    assert [r.render() for r in ranged.reports] \
        == [r.render() for r in scalar.reports]
    assert (ranged.deadlock, ranged.error, ranged.timeout,
            ranged.exit_code) \
        == (scalar.deadlock, scalar.error, scalar.timeout,
            scalar.exit_code)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=30),
       policy=st.sampled_from(POLICIES),
       array_len=st.sampled_from(ARRAY_LENS))
def test_backends_agree_on_the_range_batched_path(seed, policy,
                                                  array_len):
    """Property: interp and compiled runs of the same range-heavy
    program agree bit-for-bit *including* the check-mix counters — the
    compiled backend must route exactly the same accesses through the
    range APIs, not just reach the same verdict."""
    checked = _checked(array_len)
    interp = _run(checked, seed, policy, backend="interp")
    compiled = _run(checked, seed, policy, backend="compiled")
    assert interp.stats.steps_total == compiled.stats.steps_total
    assert interp.trace == compiled.trace
    assert interp.report_counts == compiled.report_counts
    assert interp.stats.checks_range == compiled.stats.checks_range
    assert interp.stats.checks_full == compiled.stats.checks_full
    assert interp.stats.checks_elided == compiled.stats.checks_elided


class TestRangeThresholdKnob:
    """DEFAULT_RANGE_THRESHOLD is the module-level knob tests use to
    force either path; the executors' internally built shadows must
    inherit it."""

    def test_compiled_shadow_inherits_the_module_default(
            self, monkeypatch):
        monkeypatch.setattr(shadow_mod, "DEFAULT_RANGE_THRESHOLD", 3)
        interp = make_interp(_checked(8), backend="compiled", seed=0)
        assert interp.shadow.range_threshold == 3

    def test_threshold_flips_the_scalar_delegation(self, monkeypatch):
        """Scalar checks spanning >= threshold granules auto-delegate
        to the range walk; the conflict verdict must not care which
        path ran."""
        monkeypatch.setattr(shadow_mod, "DEFAULT_RANGE_THRESHOLD", 1)
        low = ShadowMemory(nbytes=1)
        assert low.range_threshold == 1
        monkeypatch.setattr(shadow_mod, "DEFAULT_RANGE_THRESHOLD",
                            1 << 60)
        high = ShadowMemory(nbytes=1)
        for shadow in (low, high):
            shadow.chkwrite(0x100, 4 * G, 1, "buf", LOC)
            conflict, _ = shadow.chkwrite(0x100, 4 * G, 2, "buf", LOC)
            assert conflict is not None
            assert conflict.tid == 1
        assert low.range_calls > 0
        assert high.range_calls == 0

    def test_compiled_run_is_insensitive_to_the_threshold(
            self, monkeypatch):
        """The explicit range APIs batch regardless of the scalar
        delegation threshold, so whole-program behaviour is identical
        at both extremes."""
        results = []
        for threshold in (1, 1 << 60):
            monkeypatch.setattr(shadow_mod, "DEFAULT_RANGE_THRESHOLD",
                                threshold)
            result = _run(_checked(16), 5, "random",
                          backend="compiled")
            results.append((result.stats.steps_total, result.trace,
                            result.report_counts,
                            result.stats.checks_range))
        assert results[0] == results[1]
        assert results[0][3] > 0
