"""The lockset refinement's soundness gate: running with ``lockset`` on
vs off must be *bit-identical* — same reports, same step counts, same
scheduling decisions — across seeds and scheduling policies, exactly
like the check eliminator's gate in ``test_checkelim_identity``.

This holds by construction: a refined check runs the held-lock-log test
plus ``ShadowMemory.recheck_locked``, which succeeds only when the full
check would have been conflict-free at cost 1 and then replays that fast
path's exact effects; any miss falls back to the full check."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import check_ok
from repro.explore.driver import run_schedule
from repro.runtime.interp import run_checked

# A mix the analysis can sink its teeth into: one consistently locked
# counter (refined), one read-mostly locked config (refined), and one
# unlocked racy global (static race; conflicts keep firing dynamically).
MIXED = """
mutex lk;
int counter = 0;
int config = 0;
int racy_g = 0;
void *w(void *a) {
  int i; int c;
  for (i = 0; i < 8; i++) {
    mutexLock(&lk);
    c = config;
    counter = counter + c + 1;
    mutexUnlock(&lk);
    racy_g = racy_g + 1;
  }
  return NULL;
}
int main() {
  mutexLock(&lk);
  config = 2;
  mutexUnlock(&lk);
  int t1 = thread_create(w, NULL);
  int t2 = thread_create(w, NULL);
  thread_join(t1);
  thread_join(t2);
  mutexLock(&lk);
  int c = counter;
  mutexUnlock(&lk);
  return c;
}
"""

POLICIES = ["random", "round-robin", "pct", "pb"]


def _run(checked, seed, policy, lockset):
    return run_checked(checked, seed=seed, policy=policy,
                       lockset=lockset, record_trace=True)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40),
       policy=st.sampled_from(POLICIES))
def test_on_off_runs_are_bit_identical(seed, policy):
    checked = check_ok(MIXED)
    on = _run(checked, seed, policy, True)
    off = _run(checked, seed, policy, False)
    assert on.stats.steps_total == off.stats.steps_total
    assert on.trace == off.trace  # every context switch, in order
    assert on.report_counts == off.report_counts
    assert [r.render() for r in on.reports] == \
        [r.render() for r in off.reports]
    assert on.output == off.output
    assert (on.deadlock, on.error, on.timeout, on.exit_code) == \
        (off.deadlock, off.error, off.timeout, off.exit_code)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40),
       policy=st.sampled_from(POLICIES))
def test_explore_outcomes_are_identical(seed, policy):
    """The ``sharc explore`` path (trace hash included) can't tell the
    two configurations apart either."""
    on = run_schedule(MIXED, "t.c", seed, policy, lockset=True)
    off = run_schedule(MIXED, "t.c", seed, policy, lockset=False)
    assert on.trace_hash == off.trace_hash
    assert on.report_keys == off.report_keys
    assert (on.steps, on.switches, on.deadlock, on.error) == \
        (off.steps, off.switches, off.deadlock, off.error)


class TestCheckMix:
    """What IS allowed to change: how the same checks get discharged."""

    def test_refined_checks_actually_fire(self):
        checked = check_ok(MIXED)
        on = _run(checked, 3, "random", True)
        assert on.stats.checks_locked_refined > 0
        assert on.stats.checks_locked_pct > 0.0

    def test_off_run_never_takes_the_locked_path(self):
        checked = check_ok(MIXED)
        off = _run(checked, 3, "random", False)
        assert off.stats.checks_locked_refined == 0
        assert off.stats.checks_locked_pct == 0.0

    def test_total_dynamic_checks_are_conserved(self):
        # Every check the on-run discharges through the held-lock log,
        # the off-run walks in full: the grand total of check sites hit
        # is the same run to run.
        checked = check_ok(MIXED)
        on = _run(checked, 3, "random", True)
        off = _run(checked, 3, "random", False)
        total = lambda s: (s.checks_full + s.checks_range
                           + s.checks_elided + s.checks_locked_refined)
        assert total(on.stats) == total(off.stats)
        assert on.stats.accesses_dynamic == off.stats.accesses_dynamic

    def test_shadow_state_identical_after_runs(self):
        """The refined fast path replays the full check's effects, so
        even the final shadow bitmaps and last-access maps agree."""
        checked = check_ok(MIXED)
        on = _run(checked, 5, "random", True)
        off = _run(checked, 5, "random", False)
        assert on.stats.shadow_updates == off.stats.shadow_updates


class TestWorkloadAcceptance:
    """The acceptance criterion: on pfscan/dillo/fftw the refinement
    converts a nonzero fraction of dynamic checks to locked(l) checks,
    with everything observable bit-identical."""

    def _pair(self, name, seed=None):
        from repro.bench.workloads import get_workload
        from repro.bench.harness import run_workload
        workload = get_workload(name)
        on = run_workload(workload, annotated=False, seed=seed,
                          lockset=True)
        off = run_workload(workload, annotated=False, seed=seed,
                          lockset=False)
        return on, off

    @pytest.mark.parametrize("name", ["pfscan", "dillo", "fftw"])
    def test_nonzero_conversion_and_identity(self, name):
        on, off = self._pair(name)
        assert on.sharc_steps == off.sharc_steps
        assert on.reports == off.reports
        s_on = on.sharc_result.stats
        s_off = off.sharc_result.stats
        assert s_on.checks_locked_refined > 0, \
            f"{name}: no checks were converted to locked(l)"
        assert s_off.checks_locked_refined == 0
        assert sorted(on.sharc_result.report_counts.items()) == \
            sorted(off.sharc_result.report_counts.items())
        assert on.lockset_refined > 0  # refined locations reported

    @pytest.mark.parametrize("name", ["pfscan", "dillo", "fftw"])
    @pytest.mark.parametrize("seed", [2, 23])
    def test_identity_across_seeds(self, name, seed):
        on, off = self._pair(name, seed=seed)
        assert on.sharc_steps == off.sharc_steps
        assert sorted(on.sharc_result.report_counts.items()) == \
            sorted(off.sharc_result.report_counts.items())
        assert on.sharc_result.stats.checks_locked_refined > 0
