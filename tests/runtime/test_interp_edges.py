"""Interpreter edge-case tests: the corners that bite."""

import pytest

from tests.conftest import check_ok, run_clean, run_ok
from repro.runtime.interp import run_checked


class TestCompoundOps:
    def test_compound_assign_on_member(self):
        assert run_clean("""
        typedef struct acc { long total; } acc_t;
        int main() {
          acc_t a;
          a.total = 10;
          a.total += 5;
          a.total *= 2;
          printf("%ld\\n", a.total);
          return 0;
        }
        """).output == "30\n"

    def test_compound_assign_on_array_element(self):
        assert run_clean("""
        int main() {
          int v[3];
          v[1] = 4;
          v[1] <<= 2;
          v[1] |= 1;
          printf("%d\\n", v[1]);
          return 0;
        }
        """).output == "17\n"

    def test_pointer_compound_add_scales(self):
        assert run_clean("""
        int main() {
          long *v = malloc(40);
          long *p = v;
          p += 3;
          *p = 7;
          printf("%ld\\n", v[3]);
          return 0;
        }
        """).output == "7\n"

    def test_increment_on_member(self):
        assert run_clean("""
        typedef struct ctr { int n; } ctr_t;
        int main() {
          ctr_t c;
          c.n = 0;
          c.n++;
          ++c.n;
          printf("%d\\n", c.n);
          return 0;
        }
        """).output == "2\n"

    def test_postfix_vs_prefix_value(self):
        assert run_clean("""
        int main() {
          int x = 5;
          int a = x++;
          int b = ++x;
          printf("%d %d %d\\n", a, b, x);
          return 0;
        }
        """).output == "5 7 7\n"


class TestLocked_compound:
    def test_compound_assign_checks_read_and_write(self):
        checked = check_ok("""
        mutex lk;
        int locked(lk) c = 0;
        void *w(void *a) {
          c += 1;          // no lock held: both accesses illegal
          return NULL;
        }
        int main() { thread_join(thread_create(w, NULL)); return 0; }
        """)
        result = run_checked(checked, seed=0)
        assert result.reports


class TestGlobals:
    def test_global_initializer_with_call(self):
        """C99-style relaxation: global initializers run in main's
        prologue, so allocation calls are allowed (used by the aget
        model)."""
        assert run_clean("""
        char dynamic * readonly buf = malloc(32);
        int main() {
          buf[0] = 65;
          printf("%c\\n", buf[0]);
          return 0;
        }
        """).output == "A\n"

    def test_global_initializer_order(self):
        assert run_clean("""
        int a = 10;
        int b = 32;
        int main() { printf("%d\\n", a + b); return 0; }
        """).output == "42\n"

    def test_extern_global_gets_no_storage(self):
        # extern declarations alone must not allocate (or crash).
        checked = check_ok("""
        extern int other;
        int mine = 3;
        int main() { return mine; }
        """)
        result = run_checked(checked)
        assert result.error is None


class TestScopesAndShadowing:
    def test_frame_isolation_between_calls(self):
        assert run_clean("""
        int probe(int set) {
          int local;
          if (set)
            local = 99;
          return local;   // fresh frame: zero-initialized
        }
        int main() {
          probe(1);
          printf("%d\\n", probe(0));
          return 0;
        }
        """).output == "0\n"

    def test_recursive_frames_are_independent(self):
        assert run_clean("""
        int depth(int n) {
          int mine = n;
          if (n > 0)
            depth(n - 1);
          return mine;     // untouched by the recursive call
        }
        int main() { printf("%d\\n", depth(5)); return 0; }
        """).output == "5\n"


class TestMisc:
    def test_rand_is_seeded(self):
        checked = check_ok("""
        int main() { printf("%d\\n", rand() % 100); return 0; }
        """)
        a = run_checked(checked, seed=5)
        b = run_checked(checked, seed=5)
        c = run_checked(checked, seed=6)
        assert a.output == b.output
        assert a.output != c.output or True  # seeds *may* collide

    def test_srand_controls_sequence(self):
        result = run_clean("""
        int main() {
          srand(7);
          int a = rand();
          srand(7);
          int b = rand();
          printf("%d\\n", a == b);
          return 0;
        }
        """)
        assert result.output == "1\n"

    def test_sizeof_struct(self):
        assert run_clean("""
        typedef struct big { long a; char b; } big_t;
        int main() {
          printf("%ld\\n", sizeof(big_t) + 0);
          return 0;
        }
        """).output == "16\n"

    def test_negative_modulo_c_semantics(self):
        assert run_clean("""
        int main() {
          printf("%d %d\\n", -9 % 4, 9 % -4);
          return 0;
        }
        """).output == "-1 1\n"

    def test_max_steps_reports_timeout(self):
        checked = check_ok("int main() { while (1) ; return 0; }")
        result = run_checked(checked, max_steps=500)
        assert result.timeout

    def test_float_to_int_cast_truncates(self):
        assert run_clean("""
        int main() {
          double d = 3.9;
          int i = (int) d;
          printf("%d\\n", i);
          return 0;
        }
        """).output == "3\n"

    def test_char_literal_arithmetic(self):
        assert run_clean("""
        int main() {
          char c = 'a' + 2;
          printf("%c\\n", c);
          return 0;
        }
        """).output == "c\n"
