"""Tests for mutexes, condvars, and the held-lock log (Section 4.2.2)."""

import pytest

from repro.errors import InterpError
from repro.runtime.locks import LockTable


@pytest.fixture
def locks():
    return LockTable()


class TestMutex:
    def test_acquire_free_lock(self, locks):
        assert locks.try_acquire(0x100, 1)
        assert locks.mutex(0x100).owner == 1

    def test_contended_acquire_fails(self, locks):
        locks.try_acquire(0x100, 1)
        assert not locks.try_acquire(0x100, 2)

    def test_release_then_acquire(self, locks):
        locks.try_acquire(0x100, 1)
        locks.release(0x100, 1)
        assert locks.try_acquire(0x100, 2)

    def test_recursive_acquire_is_error(self, locks):
        locks.try_acquire(0x100, 1)
        with pytest.raises(InterpError, match="re-acquires"):
            locks.try_acquire(0x100, 1)

    def test_foreign_release_is_error(self, locks):
        locks.try_acquire(0x100, 1)
        with pytest.raises(InterpError, match="owned by"):
            locks.release(0x100, 2)

    def test_release_unheld_is_error(self, locks):
        with pytest.raises(InterpError):
            locks.release(0x100, 1)


class TestHeldLog:
    """The paper's mechanism: acquisitions append the lock's address to a
    thread-private log; locked-mode accesses consult it."""

    def test_holds_after_acquire(self, locks):
        locks.try_acquire(0x100, 1)
        assert locks.holds(1, 0x100)
        assert not locks.holds(2, 0x100)

    def test_not_held_after_release(self, locks):
        locks.try_acquire(0x100, 1)
        locks.release(0x100, 1)
        assert not locks.holds(1, 0x100)

    def test_multiple_locks_tracked(self, locks):
        locks.try_acquire(0x100, 1)
        locks.try_acquire(0x200, 1)
        assert locks.held_by(1) == {0x100, 0x200}

    def test_thread_exit_reports_leaked_locks(self, locks):
        locks.try_acquire(0x100, 1)
        leaked = locks.thread_exit(1)
        assert leaked == {0x100}
        assert not locks.holds(1, 0x100)

    def test_acquisition_counter(self, locks):
        locks.try_acquire(0x100, 1)
        locks.release(0x100, 1)
        locks.try_acquire(0x100, 2)
        assert locks.acquisitions == 2


class TestCondVar:
    def test_condvar_created_on_demand(self, locks):
        cv = locks.condvar(0x300)
        assert cv.addr == 0x300
        assert locks.condvar(0x300) is cv
