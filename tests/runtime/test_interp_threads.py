"""Interpreter tests: threads, synchronization, scheduling."""

import pytest

from tests.conftest import check_ok, run_clean, run_ok
from repro.runtime.interp import run_checked


class TestSpawnJoin:
    def test_join_returns_thread_result(self):
        result = run_clean("""
        void *worker(void *arg) { return NULL; }
        int main() {
          int t = thread_create(worker, NULL);
          thread_join(t);
          printf("joined %d\\n", t);
          return 0;
        }
        """)
        assert result.output == "joined 2\n"

    def test_many_threads(self):
        result = run_clean("""
        int racy touches = 0;
        void *worker(void *arg) { touches++; return NULL; }
        int main() {
          int tids[5];
          int i;
          for (i = 0; i < 5; i++)
            tids[i] = thread_create(worker, NULL);
          for (i = 0; i < 5; i++)
            thread_join(tids[i]);
          printf("%d\\n", touches > 0);
          return 0;
        }
        """)
        assert result.output == "1\n"
        assert result.stats.threads_peak >= 2

    def test_thread_argument_passed(self):
        # Initialize while private, then move to the thread with a
        # sharing cast (the init-before-spawn idiom; without the cast
        # SharC would rightly report main's write vs the worker's read).
        result = run_clean("""
        void *worker(void *arg) {
          int *p = arg;
          printf("got %d\\n", *p);
          return NULL;
        }
        int main() {
          int *v = malloc(4);
          *v = 77;
          thread_create(worker, SCAST(int dynamic *, v));
          thread_join(2);
          return 0;
        }
        """, seed=1)
        assert result.output == "got 77\n"

    def test_thread_exit_value(self):
        result = run_clean("""
        void *worker(void *arg) {
          thread_exit(NULL);
          printf("unreachable\\n");
          return NULL;
        }
        int main() {
          thread_join(thread_create(worker, NULL));
          return 0;
        }
        """)
        assert result.output == ""

    def test_too_many_threads_for_shadow(self):
        """The 8n-1 limitation (Section 4.2.1) surfaces as a runtime
        error when thread 8 performs its first checked access."""
        source = """
        int shared = 0;
        void *worker(void *arg) { shared = shared + 1; return NULL; }
        int main() {
          int tids[8];
          int i;
          for (i = 0; i < 8; i++)
            tids[i] = thread_create(worker, NULL);
          for (i = 0; i < 8; i++)
            thread_join(tids[i]);
          return 0;
        }
        """
        checked = check_ok(source)
        result = run_checked(checked, seed=0, policy="serial")
        assert result.error is not None
        assert "8n-1" in result.error or "capacity" in result.error
        # With two shadow bytes the same program fits (15 threads).
        result2 = run_checked(checked, seed=0, shadow_bytes=2,
                              policy="serial")
        assert result2.error is None


class TestMutexes:
    COUNTER = """
    mutex lk;
    int locked(lk) counter = 0;
    void *bump(void *arg) {{
      int i;
      for (i = 0; i < {n}; i++) {{
        mutexLock(&lk);
        counter = counter + 1;
        mutexUnlock(&lk);
      }}
      return NULL;
    }}
    int main() {{
      int a = thread_create(bump, NULL);
      int b = thread_create(bump, NULL);
      thread_join(a);
      thread_join(b);
      mutexLock(&lk);
      printf("%d\\n", counter);
      mutexUnlock(&lk);
      return 0;
    }}
    """

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mutual_exclusion_preserves_count(self, seed):
        result = run_clean(self.COUNTER.format(n=20), seed=seed)
        assert result.output == "40\n"

    def test_lock_held_at_exit_is_reported(self):
        result = run_ok("""
        mutex lk;
        void *w(void *arg) { mutexLock(&lk); return NULL; }
        int main() {
          thread_join(thread_create(w, NULL));
          return 0;
        }
        """)
        assert any("still holding" in r.detail for r in result.reports)

    def test_unlock_of_foreign_lock_is_error(self):
        from repro.sharc.checker import check_source
        checked = check_source("""
        mutex lk;
        int main() { mutexUnlock(&lk); return 0; }
        """)
        result = run_checked(checked)
        assert result.error is not None


class TestCondVars:
    def test_signal_wakes_waiter(self):
        result = run_clean("""
        mutex lk;
        cond cv;
        int locked(lk) ready = 0;
        void *waiter(void *arg) {
          mutexLock(&lk);
          while (!ready)
            condWait(&cv, &lk);
          mutexUnlock(&lk);
          printf("woke\\n");
          return NULL;
        }
        int main() {
          int t = thread_create(waiter, NULL);
          mutexLock(&lk);
          ready = 1;
          condSignal(&cv);
          mutexUnlock(&lk);
          thread_join(t);
          return 0;
        }
        """, seed=4)
        assert result.output == "woke\n"

    def test_broadcast_wakes_all(self):
        result = run_clean("""
        mutex lk;
        cond cv;
        int locked(lk) go = 0;
        int racy woke = 0;
        void *waiter(void *arg) {
          mutexLock(&lk);
          while (!go)
            condWait(&cv, &lk);
          mutexUnlock(&lk);
          woke++;
          return NULL;
        }
        int main() {
          int a = thread_create(waiter, NULL);
          int b = thread_create(waiter, NULL);
          mutexLock(&lk);
          go = 1;
          condBroadcast(&cv);
          mutexUnlock(&lk);
          thread_join(a);
          thread_join(b);
          printf("%d\\n", woke);
          return 0;
        }
        """, seed=2)
        assert result.output == "2\n"


class TestDeadlock:
    def test_lock_order_deadlock_detected(self):
        from repro.sharc.checker import check_source
        checked = check_source("""
        mutex a; mutex b;
        void *w1(void *x) {
          mutexLock(&a); thread_yield(); mutexLock(&b);
          mutexUnlock(&b); mutexUnlock(&a);
          return NULL;
        }
        void *w2(void *x) {
          mutexLock(&b); thread_yield(); mutexLock(&a);
          mutexUnlock(&a); mutexUnlock(&b);
          return NULL;
        }
        int main() {
          int t1 = thread_create(w1, NULL);
          int t2 = thread_create(w2, NULL);
          thread_join(t1);
          thread_join(t2);
          return 0;
        }
        """)
        assert checked.ok
        deadlocked = 0
        for seed in range(12):
            result = run_checked(checked, seed=seed, max_burst=1)
            if result.deadlock is not None:
                deadlocked += 1
        assert deadlocked > 0  # some interleaving must trip it

    def test_self_join_deadlocks(self):
        from repro.sharc.checker import check_source
        checked = check_source("""
        int main() { thread_join(1); return 0; }
        """)
        result = run_checked(checked)
        assert result.deadlock is not None


class TestDeterminism:
    def test_same_seed_same_trace(self):
        source = """
        int racy x = 0;
        void *w(void *a) { int i; for (i = 0; i < 9; i++) x++; return NULL; }
        int main() {
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          printf("%d\\n", x);
          return 0;
        }
        """
        checked = check_ok(source)
        a = run_checked(checked, seed=5)
        b = run_checked(checked, seed=5)
        assert a.output == b.output
        assert a.stats.steps_total == b.stats.steps_total
        assert a.stats.context_switches == b.stats.context_switches

    def test_racy_mode_permits_lost_updates(self):
        """racy counters may actually lose updates under some schedule —
        without any report (that is the point of the mode)."""
        source = """
        int racy x = 0;
        void *w(void *a) { int i; for (i = 0; i < 9; i++) x = x + 1; return NULL; }
        int main() {
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          printf("%d\\n", x);
          return 0;
        }
        """
        checked = check_ok(source)
        values = set()
        for seed in range(8):
            result = run_checked(checked, seed=seed, max_burst=2)
            assert not result.reports
            values.add(result.output.strip())
        assert values  # ran; any value (<=18) is acceptable
