"""Tests for the Eraser-style lockset baseline (Section 6.2)."""

import pytest

from repro.errors import Loc
from repro.runtime.eraser import EraserChecker, LockState
from tests.conftest import check_ok
from repro.runtime.interp import run_checked

LOC = Loc("e.c", 1)


def access(checker, addr, tid, write, held=()):
    return checker.on_access(addr, 4, tid, write, frozenset(held),
                             "x", LOC)


@pytest.fixture
def checker():
    return EraserChecker()


class TestStateMachine:
    def test_first_access_exclusive(self, checker):
        assert access(checker, 0x100, 1, True) == []
        state = checker.granules[0x10]
        assert state.state is LockState.EXCLUSIVE
        assert state.owner == 1

    def test_initialization_unlocked_is_fine(self, checker):
        """The whole point of the EXCLUSIVE state: unlocked init by one
        thread does not report."""
        for _ in range(5):
            assert access(checker, 0x100, 1, True) == []

    def test_second_thread_read_moves_to_shared(self, checker):
        access(checker, 0x100, 1, True)
        assert access(checker, 0x100, 2, False, held=()) == []
        assert checker.granules[0x10].state is LockState.SHARED

    def test_read_sharing_never_reports(self, checker):
        access(checker, 0x100, 1, False)
        for tid in (2, 3, 4):
            assert access(checker, 0x100, tid, False) == []

    def test_consistent_lock_keeps_quiet(self, checker):
        access(checker, 0x100, 1, True, held={0x900})
        assert access(checker, 0x100, 2, True, held={0x900}) == []
        assert access(checker, 0x100, 3, True, held={0x900, 0x901}) == []

    def test_inconsistent_lock_reports(self, checker):
        access(checker, 0x100, 1, True, held={0x900})
        access(checker, 0x100, 2, True, held={0x900})
        reports = access(checker, 0x100, 3, True, held={0x901})
        assert reports
        assert "lockset" in reports[0].detail

    def test_unlocked_write_after_sharing_reports(self, checker):
        access(checker, 0x100, 1, True)
        reports = access(checker, 0x100, 2, True, held=())
        assert reports

    def test_one_report_per_granule(self, checker):
        access(checker, 0x100, 1, True)
        access(checker, 0x100, 2, True)
        assert access(checker, 0x100, 1, True) == []

    def test_free_resets_state(self, checker):
        access(checker, 0x100, 1, True)
        checker.free_range(0x100, 16)
        assert access(checker, 0x100, 2, True) == []

    def test_ownership_transfer_is_a_false_positive(self, checker):
        """The paper's point: a correct handoff (writer then new owner,
        mediated elsewhere) empties the lockset and reports."""
        access(checker, 0x100, 1, True, held=())     # producer fills
        reports = access(checker, 0x100, 2, True, held=())  # new owner
        assert reports  # Eraser cannot model the transfer


class TestEraserInterp:
    RACY = """
    int shared = 0;
    void *w(void *a) {
      int i;
      for (i = 0; i < 10; i++)
        shared = shared + 1;
      return NULL;
    }
    int main() {
      int t1 = thread_create(w, NULL);
      int t2 = thread_create(w, NULL);
      thread_join(t1);
      thread_join(t2);
      return 0;
    }
    """

    def test_detects_real_races_too(self):
        checked = check_ok(self.RACY)
        result = run_checked(checked, seed=1, checker="eraser")
        assert result.reports

    def test_locked_program_clean_under_eraser(self):
        checked = check_ok("""
        mutex lk;
        int locked(lk) c = 0;
        void *w(void *a) {
          int i;
          for (i = 0; i < 10; i++) {
            mutexLock(&lk); c = c + 1; mutexUnlock(&lk);
          }
          return NULL;
        }
        int main() {
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """)
        result = run_checked(checked, seed=1, checker="eraser")
        assert not result.reports

    def test_eraser_monitors_every_access(self):
        checked = check_ok(self.RACY)
        sharc = run_checked(checked, seed=1)
        eraser = run_checked(checked, seed=1, checker="eraser")
        assert eraser.stats.steps_checks > sharc.stats.steps_checks

    def test_unknown_checker_rejected(self):
        checked = check_ok(self.RACY)
        with pytest.raises(ValueError):
            run_checked(checked, checker="valgrind")


class TestComparison:
    def test_paper_positioning_holds(self):
        from repro.bench.comparison_eraser import run_comparison
        result = run_comparison()
        assert result.sharc_reports == 0
        assert result.eraser_reports > 0     # false positive on handoff
        assert result.eraser_overhead > 5 * max(result.sharc_overhead,
                                                0.01)
