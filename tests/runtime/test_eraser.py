"""Tests for the Eraser-style lockset baseline (Section 6.2)."""

import pytest

from repro.errors import Loc
from repro.runtime.eraser import EraserChecker, LockState
from tests.conftest import check_ok
from repro.runtime.interp import run_checked

LOC = Loc("e.c", 1)


def access(checker, addr, tid, write, held=()):
    return checker.on_access(addr, 4, tid, write, frozenset(held),
                             "x", LOC)


@pytest.fixture
def checker():
    return EraserChecker()


class TestStateMachine:
    def test_first_access_exclusive(self, checker):
        assert access(checker, 0x100, 1, True) == []
        state = checker.granules[0x10]
        assert state.state is LockState.EXCLUSIVE
        assert state.owner == 1

    def test_initialization_unlocked_is_fine(self, checker):
        """The whole point of the EXCLUSIVE state: unlocked init by one
        thread does not report."""
        for _ in range(5):
            assert access(checker, 0x100, 1, True) == []

    def test_second_thread_read_moves_to_shared(self, checker):
        access(checker, 0x100, 1, True)
        assert access(checker, 0x100, 2, False, held=()) == []
        assert checker.granules[0x10].state is LockState.SHARED

    def test_read_sharing_never_reports(self, checker):
        access(checker, 0x100, 1, False)
        for tid in (2, 3, 4):
            assert access(checker, 0x100, tid, False) == []

    def test_consistent_lock_keeps_quiet(self, checker):
        access(checker, 0x100, 1, True, held={0x900})
        assert access(checker, 0x100, 2, True, held={0x900}) == []
        assert access(checker, 0x100, 3, True, held={0x900, 0x901}) == []

    def test_inconsistent_lock_reports(self, checker):
        access(checker, 0x100, 1, True, held={0x900})
        access(checker, 0x100, 2, True, held={0x900})
        reports = access(checker, 0x100, 3, True, held={0x901})
        assert reports
        assert "lockset" in reports[0].detail

    def test_unlocked_write_after_sharing_reports(self, checker):
        access(checker, 0x100, 1, True)
        reports = access(checker, 0x100, 2, True, held=())
        assert reports

    def test_one_report_per_granule(self, checker):
        access(checker, 0x100, 1, True)
        access(checker, 0x100, 2, True)
        assert access(checker, 0x100, 1, True) == []

    def test_free_resets_state(self, checker):
        access(checker, 0x100, 1, True)
        checker.free_range(0x100, 16)
        assert access(checker, 0x100, 2, True) == []

    def test_ownership_transfer_is_a_false_positive(self, checker):
        """The paper's point: a correct handoff (writer then new owner,
        mediated elsewhere) empties the lockset and reports."""
        access(checker, 0x100, 1, True, held=())     # producer fills
        reports = access(checker, 0x100, 2, True, held=())  # new owner
        assert reports  # Eraser cannot model the transfer


class TestEdgeCases:
    """Corner behavior the differential static-vs-dynamic scoring leans
    on: partial frees, tid reuse after exit, and the exact transition
    point from read-sharing to lockset enforcement."""

    def test_free_range_mid_granule_resets_whole_granule(self, checker):
        """Freeing any byte range resets every granule it overlaps —
        including a range that starts and ends mid-granule."""
        access(checker, 0x100, 1, True)          # granule 0x10
        access(checker, 0x118, 1, True)          # granule 0x11
        access(checker, 0x118, 2, True)          # 0x11 leaves EXCLUSIVE
        checker.free_range(0x108, 4)             # mid-granule slice of 0x10
        assert 0x10 not in checker.granules      # reset outright
        assert checker.granules[0x11].state is LockState.SHARED_MODIFIED
        # the reset granule restarts its state machine: a fresh thread's
        # access is initialization again, not a race
        assert access(checker, 0x100, 3, True) == []
        assert checker.granules[0x10].state is LockState.EXCLUSIVE
        assert checker.granules[0x10].owner == 3

    def test_free_range_spanning_granules_resets_all_of_them(self, checker):
        access(checker, 0x100, 1, True)
        access(checker, 0x118, 1, True)
        checker.free_range(0x10c, 16)            # straddles 0x10 and 0x11
        assert 0x10 not in checker.granules
        assert 0x11 not in checker.granules

    def test_thread_exit_keeps_state_so_tid_reuse_inherits_it(self,
                                                              checker):
        """Eraser has no happens-before for exit: EXCLUSIVE(1) survives
        the owner's death, so a recycled tid 1 still looks like the
        owner and an unlocked write by it stays silent — the documented
        false-negative flavor of the missing exit edge."""
        access(checker, 0x100, 1, True)
        checker.thread_exit(1)
        st = checker.granules[0x10]
        assert st.state is LockState.EXCLUSIVE and st.owner == 1
        assert access(checker, 0x100, 1, True) == []   # reused tid
        assert checker.granules[0x10].state is LockState.EXCLUSIVE

    def test_thread_exit_keeps_state_so_next_thread_still_shares(
            self, checker):
        """...and conversely a *different* thread after the owner's exit
        still leaves initialization, even though the two never ran
        concurrently — the false-positive flavor."""
        access(checker, 0x100, 1, True)
        checker.thread_exit(1)
        reports = access(checker, 0x100, 2, True, held=())
        assert reports  # no exit edge: flagged despite no overlap
        assert checker.granules[0x10].state is LockState.SHARED_MODIFIED

    def test_first_write_after_shared_read_transitions_and_checks(
            self, checker):
        """SHARED tolerates an empty candidate set; the *first* write
        moves to SHARED_MODIFIED and enforces it immediately."""
        access(checker, 0x100, 1, False, held={0x900})
        # leaving EXCLUSIVE seeds C(v) from the transitioning access
        access(checker, 0x100, 2, False, held={0x901})
        st = checker.granules[0x10]
        assert st.state is LockState.SHARED
        assert st.lockset == frozenset({0x901})
        assert not st.reported                # reads never report
        reports = access(checker, 0x100, 1, True, held={0x900})
        assert st.state is LockState.SHARED_MODIFIED
        assert st.lockset == frozenset()      # {0x901} & {0x900}
        assert reports                        # enforced on the write
        assert "lockset" in reports[0].detail

    def test_first_write_after_shared_read_with_consistent_lock(
            self, checker):
        """Same transition with a surviving candidate set stays quiet."""
        access(checker, 0x100, 1, False, held={0x900})
        access(checker, 0x100, 2, False, held={0x900})
        reports = access(checker, 0x100, 1, True, held={0x900})
        st = checker.granules[0x10]
        assert st.state is LockState.SHARED_MODIFIED
        assert st.lockset == frozenset({0x900})
        assert reports == []


class TestEraserInterp:
    RACY = """
    int shared = 0;
    void *w(void *a) {
      int i;
      for (i = 0; i < 10; i++)
        shared = shared + 1;
      return NULL;
    }
    int main() {
      int t1 = thread_create(w, NULL);
      int t2 = thread_create(w, NULL);
      thread_join(t1);
      thread_join(t2);
      return 0;
    }
    """

    def test_detects_real_races_too(self):
        checked = check_ok(self.RACY)
        result = run_checked(checked, seed=1, checker="eraser")
        assert result.reports

    def test_locked_program_clean_under_eraser(self):
        checked = check_ok("""
        mutex lk;
        int locked(lk) c = 0;
        void *w(void *a) {
          int i;
          for (i = 0; i < 10; i++) {
            mutexLock(&lk); c = c + 1; mutexUnlock(&lk);
          }
          return NULL;
        }
        int main() {
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """)
        result = run_checked(checked, seed=1, checker="eraser")
        assert not result.reports

    def test_eraser_monitors_every_access(self):
        checked = check_ok(self.RACY)
        sharc = run_checked(checked, seed=1)
        eraser = run_checked(checked, seed=1, checker="eraser")
        assert eraser.stats.steps_checks > sharc.stats.steps_checks

    def test_unknown_checker_rejected(self):
        checked = check_ok(self.RACY)
        with pytest.raises(ValueError):
            run_checked(checked, checker="valgrind")


class TestComparison:
    def test_paper_positioning_holds(self):
        from repro.bench.comparison_eraser import run_comparison
        result = run_comparison()
        assert result.sharc_reports == 0
        assert result.eraser_reports > 0     # false positive on handoff
        assert result.eraser_overhead > 5 * max(result.sharc_overhead,
                                                0.01)
