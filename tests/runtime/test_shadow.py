"""Tests for the reader/writer shadow memory (Section 4.2.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import Loc
from repro.runtime.shadow import ShadowMemory, TooManyThreads

LOC = Loc("t.c", 1)


@pytest.fixture
def shadow():
    return ShadowMemory(nbytes=1)


def read(shadow, addr, tid, size=4):
    conflict, _slow = shadow.chkread(addr, size, tid, "x", LOC)
    return conflict


def write(shadow, addr, tid, size=4):
    conflict, _slow = shadow.chkwrite(addr, size, tid, "x", LOC)
    return conflict


class TestDiscipline:
    """The n-readers-or-1-writer rules of Figure 6."""

    def test_single_thread_read_write_ok(self, shadow):
        assert write(shadow, 0x100, 1) is None
        assert read(shadow, 0x100, 1) is None
        assert write(shadow, 0x100, 1) is None

    def test_many_readers_ok(self, shadow):
        for tid in (1, 2, 3, 4):
            assert read(shadow, 0x100, tid) is None

    def test_write_after_foreign_read_conflicts(self, shadow):
        read(shadow, 0x100, 1)
        conflict = write(shadow, 0x100, 2)
        assert conflict is not None
        assert conflict.tid == 1

    def test_read_after_foreign_write_conflicts(self, shadow):
        write(shadow, 0x100, 1)
        conflict = read(shadow, 0x100, 2)
        assert conflict is not None
        assert conflict.tid == 1 and conflict.is_write

    def test_write_write_conflicts(self, shadow):
        write(shadow, 0x100, 1)
        assert write(shadow, 0x100, 2) is not None

    def test_own_reads_never_conflict_with_own_writes(self, shadow):
        write(shadow, 0x100, 3)
        assert read(shadow, 0x100, 3) is None

    def test_conflict_reports_last_lvalue(self, shadow):
        shadow.chkwrite(0x100, 4, 1, "s->data", Loc("p.c", 27))
        conflict = read(shadow, 0x100, 2)
        assert conflict.lvalue == "s->data"
        assert conflict.loc.line == 27


class TestGranularity:
    def test_accesses_within_one_granule_collide(self, shadow):
        """The false-sharing limitation of Section 4.5: two objects in
        one 16-byte granule are indistinguishable."""
        write(shadow, 0x100, 1, size=4)
        assert write(shadow, 0x104, 2, size=4) is not None

    def test_distinct_granules_independent(self, shadow):
        write(shadow, 0x100, 1, size=4)
        assert write(shadow, 0x110, 2, size=4) is None

    def test_large_access_spans_granules(self, shadow):
        write(shadow, 0x100, 1, size=64)
        assert len(shadow.bits) == 4

    def test_unaligned_span(self, shadow):
        write(shadow, 0x10E, 1, size=4)  # crosses a granule boundary
        assert len(shadow.bits) == 2


class TestThreadLimit:
    def test_capacity_is_8n_minus_1(self):
        assert ShadowMemory(nbytes=1).max_threads == 7
        assert ShadowMemory(nbytes=2).max_threads == 15
        assert ShadowMemory(nbytes=4).max_threads == 31

    def test_exceeding_capacity_raises(self, shadow):
        with pytest.raises(TooManyThreads):
            read(shadow, 0x100, 8)

    def test_wider_shadow_accepts_more_threads(self):
        shadow = ShadowMemory(nbytes=2)
        assert read(shadow, 0x100, 15) is None


class TestLifecycle:
    def test_thread_exit_clears_bits(self, shadow):
        write(shadow, 0x100, 1)
        shadow.clear_thread(1)
        # A non-overlapping successor thread is free to use the granule.
        assert write(shadow, 0x100, 2) is None

    def test_exit_only_clears_own_bits(self, shadow):
        read(shadow, 0x100, 1)
        read(shadow, 0x100, 2)
        shadow.clear_thread(1)
        assert write(shadow, 0x100, 3) is not None  # thread 2 still reads

    def test_free_clears_granules(self, shadow):
        write(shadow, 0x100, 1)
        shadow.clear_range(0x100, 16)
        assert write(shadow, 0x100, 2) is None

    def test_scast_reset(self, shadow):
        write(shadow, 0x100, 1)
        shadow.reset_granules(0x100, 16)
        assert write(shadow, 0x100, 2) is None

    def test_touched_survives_clearing(self, shadow):
        write(shadow, 0x100, 1)
        shadow.clear_thread(1)
        assert shadow.touched


class TestFastPath:
    def test_first_access_is_slow(self, shadow):
        _, slow = shadow.chkread(0x100, 4, 1, "x", LOC)
        assert slow == 1

    def test_repeat_access_is_fast(self, shadow):
        shadow.chkread(0x100, 4, 1, "x", LOC)
        _, slow = shadow.chkread(0x100, 4, 1, "x", LOC)
        assert slow == 0

    def test_read_then_write_upgrade_is_slow(self, shadow):
        shadow.chkread(0x100, 4, 1, "x", LOC)
        _, slow = shadow.chkwrite(0x100, 4, 1, "x", LOC)
        assert slow == 1
        _, slow = shadow.chkwrite(0x100, 4, 1, "x", LOC)
        assert slow == 0


class TestRecheckLocked:
    """The ``locked(l)``-refined probe: succeed exactly when the full
    check would be a conflict-free cost-1 fast path, replaying its
    effects; otherwise do nothing so the caller's fallback full check
    behaves as if the probe never happened."""

    def relock(self, shadow, addr, tid, write, size=4, lvalue="y"):
        return shadow.recheck_locked(addr, size, tid, write, lvalue,
                                     Loc("t.c", 9))

    def test_virgin_granule_fails_without_side_effects(self, shadow):
        assert self.relock(shadow, 0x100, 1, True) is False
        assert shadow.updates == 0
        assert shadow.bits == {}
        assert shadow.last == {}
        assert shadow._cache == {}

    def test_write_probe_succeeds_after_own_write(self, shadow):
        write(shadow, 0x100, 1)
        write(shadow, 0x200, 1)       # displace the cache off 0x100
        before = shadow.updates
        assert self.relock(shadow, 0x100, 1, True) is True
        # Replays the fast path's effects: one update per granule, new
        # last/last_writer records naming this access, cache refreshed.
        assert shadow.updates == before + 1
        assert shadow.last[0x10].lvalue == "y"
        assert shadow.last[0x10].loc.line == 9
        assert shadow.last_writer[0x10].lvalue == "y"
        # The refreshed cache makes the next full check a pure fast path.
        _, slow = shadow.chkwrite(0x100, 4, 1, "x", LOC)
        assert slow == 0

    def test_read_probe_succeeds_among_readers(self, shadow):
        read(shadow, 0x100, 1)
        read(shadow, 0x100, 2)
        assert self.relock(shadow, 0x100, 1, False) is True
        assert shadow.last[0x10].tid == 1
        assert not shadow.last[0x10].is_write
        # A read probe must not forge a writer record.
        assert 0x10 not in shadow.last_writer

    def test_cache_hit_branch_counts_like_full_fast_path(self, shadow):
        write(shadow, 0x100, 1)
        hits = shadow.fastpath_hits
        updates = shadow.updates
        assert self.relock(shadow, 0x100, 1, True) is True
        assert shadow.fastpath_hits == hits + 1
        assert shadow.updates == updates + 1

    def test_write_probe_fails_on_foreign_reader(self, shadow):
        write(shadow, 0x100, 1)
        shadow.clear_thread(1)
        read(shadow, 0x100, 2)
        read(shadow, 0x100, 1)
        # Full chkwrite would report a conflict with thread 2's read;
        # the probe must refuse and leave that report to the fallback.
        state = dict(shadow.bits)
        assert self.relock(shadow, 0x100, 1, True) is False
        assert shadow.bits == state
        assert write(shadow, 0x100, 1) is not None

    def test_read_probe_fails_under_foreign_writer(self, shadow):
        read(shadow, 0x100, 1)
        write(shadow, 0x100, 2)       # reported conflict; writer bit set
        assert self.relock(shadow, 0x100, 1, False) is False

    def test_read_cache_cannot_authorize_write_probe(self, shadow):
        read(shadow, 0x100, 1)
        # Cached read covers the range, but a write needs the writer
        # bit, which only this thread's bit plus bit 0 would prove.
        assert self.relock(shadow, 0x100, 1, True) is False
        _, slow = shadow.chkwrite(0x100, 4, 1, "x", LOC)
        assert slow == 1              # the fallback did the real upgrade

    def test_multi_granule_range_needs_every_granule_clean(self, shadow):
        write(shadow, 0x100, 1, size=32)      # granules 0x10 and 0x11
        shadow.clear_range(0x110, 16)         # 0x11 back to virgin
        before = shadow.updates
        assert self.relock(shadow, 0x100, 1, True, size=32) is False
        assert shadow.updates == before       # probe is side-effect free
        assert self.relock(shadow, 0x100, 1, True, size=16) is True

    def test_probe_never_bumps_version(self, shadow):
        write(shadow, 0x100, 1)
        version = shadow._version
        assert self.relock(shadow, 0x100, 1, True) is True
        assert shadow._version == version

    def test_tid_validation_matches_full_checks(self, shadow):
        with pytest.raises(TooManyThreads):
            self.relock(shadow, 0x100, 8, False)
        with pytest.raises(ValueError):
            self.relock(shadow, 0x100, 0, False)


@given(st.lists(st.tuples(st.sampled_from(["r", "w"]),
                          st.integers(min_value=1, max_value=7),
                          st.integers(min_value=0, max_value=3)),
                max_size=40))
def test_invariants_hold_under_any_sequence(ops):
    """After any access sequence: at most one granule writer, and if a
    writer exists no other thread's reader bit is set — unless a conflict
    was reported for that granule (Definition 1's last two clauses)."""
    shadow = ShadowMemory(nbytes=1)
    dirty = set()  # granules where a conflict was reported
    for kind, tid, slot in ops:
        addr = 0x100 + slot * 16
        if kind == "r":
            conflict, _ = shadow.chkread(addr, 4, tid, "x", LOC)
        else:
            conflict, _ = shadow.chkwrite(addr, 4, tid, "x", LOC)
        if conflict is not None:
            dirty.add(addr >> 4)
    for granule, bits in shadow.bits.items():
        if granule in dirty:
            continue
        if bits & 1:
            thread_bits = bits & ~1
            # Exactly one thread bit when a writer exists.
            assert thread_bits != 0
            assert thread_bits & (thread_bits - 1) == 0
