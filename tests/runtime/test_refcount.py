"""Tests for the reference-counting schemes (Section 4.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime.refcount import (
    LPRefCount, NaiveRefCount, NullRefCount, make_scheme,
)


class FakeMemory:
    """Slot store standing in for the address space."""

    def __init__(self):
        self.slots = {}

    def write(self, scheme, tid, slot, value):
        old = self.slots.get(slot, 0)
        self.slots[slot] = value
        scheme.record_write(tid, slot, old, value)

    def peek(self, slot):
        return self.slots.get(slot, 0)


@pytest.fixture(params=["naive", "lp"])
def scheme(request):
    return make_scheme(request.param)


class TestCounting:
    def test_single_reference(self, scheme):
        mem = FakeMemory()
        mem.write(scheme, 1, 100, 0x1000)
        count, _ = scheme.count(1, 0x1000, mem.peek)
        assert count == 1

    def test_two_references(self, scheme):
        mem = FakeMemory()
        mem.write(scheme, 1, 100, 0x1000)
        mem.write(scheme, 1, 108, 0x1000)
        count, _ = scheme.count(1, 0x1000, mem.peek)
        assert count == 2

    def test_overwrite_decrements(self, scheme):
        mem = FakeMemory()
        mem.write(scheme, 1, 100, 0x1000)
        mem.write(scheme, 1, 100, 0x2000)
        assert scheme.count(1, 0x1000, mem.peek)[0] == 0
        assert scheme.count(1, 0x2000, mem.peek)[0] == 1

    def test_null_out(self, scheme):
        mem = FakeMemory()
        mem.write(scheme, 1, 100, 0x1000)
        mem.write(scheme, 1, 100, 0)
        assert scheme.count(1, 0x1000, mem.peek)[0] == 0

    def test_unknown_object_counts_zero(self, scheme):
        assert scheme.count(1, 0x9999, FakeMemory().peek)[0] == 0

    def test_cross_thread_writes(self, scheme):
        mem = FakeMemory()
        mem.write(scheme, 1, 100, 0x1000)
        mem.write(scheme, 2, 200, 0x1000)
        assert scheme.count(3, 0x1000, mem.peek)[0] == 2


class TestLPSpecifics:
    def test_epoch_flips_on_count(self):
        scheme = LPRefCount()
        mem = FakeMemory()
        assert scheme.epoch == 0
        mem.write(scheme, 1, 100, 0x1000)
        scheme.count(1, 0x1000, mem.peek)
        assert scheme.epoch == 1

    def test_one_log_entry_per_slot_per_epoch(self):
        scheme = LPRefCount()
        mem = FakeMemory()
        for value in (0x1000, 0x2000, 0x3000):
            mem.write(scheme, 1, 100, value)
        assert scheme.stats.log_entries == 1
        # The count still reflects the *current* value.
        assert scheme.count(1, 0x3000, mem.peek)[0] == 1
        assert scheme.count(1, 0x1000, mem.peek)[0] == 0

    def test_repeat_write_is_cheaper(self):
        scheme = LPRefCount()
        first = scheme.record_write(1, 100, 0, 0x1000)
        repeat = scheme.record_write(1, 100, 0x1000, 0x2000)
        assert repeat < first

    def test_logs_cleared_after_collection(self):
        scheme = LPRefCount()
        mem = FakeMemory()
        mem.write(scheme, 1, 100, 0x1000)
        scheme.count(1, 0x1000, mem.peek)
        assert not scheme.logs[0][1]
        assert not scheme.dirty[0]

    def test_counts_stable_across_repeated_collections(self):
        scheme = LPRefCount()
        mem = FakeMemory()
        mem.write(scheme, 1, 100, 0x1000)
        for _ in range(5):
            count, _ = scheme.count(1, 0x1000, mem.peek)
            assert count == 1


class TestCostModel:
    def test_naive_write_costs_more_than_lp(self):
        naive, lp = NaiveRefCount(), LPRefCount()
        assert naive.record_write(1, 100, 0, 1) > \
            lp.record_write(1, 100, 0, 1)

    def test_null_scheme_free(self):
        null = NullRefCount()
        assert null.record_write(1, 100, 0, 1) == 0
        assert null.count(1, 1, lambda s: 0) == (0, 0)
        assert null.metadata_bytes() == 0

    def test_metadata_grows_with_objects(self):
        scheme = LPRefCount()
        mem = FakeMemory()
        before = scheme.metadata_bytes()
        for i in range(10):
            mem.write(scheme, 1, 100 + i * 8, 0x1000 + i * 16)
        scheme.count(1, 0x1000, mem.peek)
        assert scheme.metadata_bytes() > before


class TestFactory:
    def test_known_names(self):
        assert make_scheme("lp").name == "levanoni-petrank"
        assert make_scheme("naive").name == "naive-atomic"
        assert make_scheme("off").name == "off"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_scheme("magic")


@given(st.lists(
    st.tuples(st.integers(min_value=1, max_value=3),       # tid
              st.integers(min_value=0, max_value=7),       # slot index
              st.integers(min_value=0, max_value=4)),      # object index
    max_size=60),
    st.integers(min_value=0, max_value=4))
def test_lp_agrees_with_naive(ops, probe):
    """Property: after any write sequence + collection, the LP scheme
    reports the same count as the eager scheme (both equal the true
    number of slots holding the object)."""
    naive, lp = NaiveRefCount(), LPRefCount()
    mem = FakeMemory()
    objects = [0, 0x1000, 0x2000, 0x3000, 0x4000]
    for tid, slot_idx, obj_idx in ops:
        slot = 0x100 + slot_idx * 8
        value = objects[obj_idx]
        old = mem.slots.get(slot, 0)
        mem.slots[slot] = value
        naive.record_write(tid, slot, old, value)
        lp.record_write(tid, slot, old, value)
    target = objects[probe]
    if target == 0:
        return
    truth = sum(1 for v in mem.slots.values() if v == target)
    assert naive.count(1, target, mem.peek)[0] == truth
    assert lp.count(1, target, mem.peek)[0] == truth
