"""Tests for the cross-sweep metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.explore.driver import (ExplorationSummary, ScheduleOutcome,
                                  explore_source)
from repro.obs import sitestats
from repro.obs.metrics import (METRICS_SCHEMA, MetricsRegistry,
                               upgrade_metrics_payload,
                               validate_metrics, write_metrics)

RACY = """
int counter = 0;

void *bump(void *arg) {
  counter = counter + 1;
  return NULL;
}

int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return counter;
}
"""


def _outcome(seed, policy, *, reports=0, steps=100, trace_hash="h",
             updates=50, fastpath=20):
    return ScheduleOutcome(
        seed=seed, policy=policy, checker="sharc",
        report_keys=("write conflict:x@1",) if reports else (),
        reports=reports, steps=steps, switches=3,
        trace_hash=trace_hash, check_updates=updates,
        check_fastpath=fastpath)


def _crash(seed, policy, error="RuntimeError: world construction failed"):
    """A crash-tagged outcome: empty trace hash, exception repr, no
    verdict."""
    return ScheduleOutcome(
        seed=seed, policy=policy, checker="sharc", report_keys=(),
        reports=0, steps=0, switches=0, trace_hash="", error=error)


def _summary(outcomes, filename="a.c"):
    summary = ExplorationSummary(filename=filename, checker="sharc",
                                 policies=("random",))
    for outcome in outcomes:
        summary.add(outcome)
    return summary


class TestMetricsRegistry:
    def test_empty_registry_is_valid(self):
        payload = MetricsRegistry().as_dict()
        assert validate_metrics(payload) == []
        assert payload["schema"] == METRICS_SCHEMA
        assert payload["totals"]["schedules"] == 0
        assert payload["totals"]["check_hit_rate"] == 0.0

    def test_totals_accumulate_across_sweeps(self):
        registry = MetricsRegistry()
        registry.record_sweep(_summary([
            _outcome(0, "random", trace_hash="a"),
            _outcome(1, "random", reports=1, trace_hash="b"),
        ]))
        registry.record_sweep(_summary([
            _outcome(0, "pct:3:50", trace_hash="a"),
        ], filename="b.c"))
        payload = registry.as_dict()
        assert validate_metrics(payload) == []
        totals = payload["totals"]
        assert totals["sweeps"] == 2
        assert totals["schedules"] == 3
        assert totals["failing_schedules"] == 1
        assert totals["distinct_traces"] == 2  # "a" shared across sweeps
        assert totals["check_updates"] == 150
        assert totals["check_fastpath_hits"] == 60
        assert totals["check_hit_rate"] == pytest.approx(0.4)
        assert totals["races_per_1k"] == pytest.approx(1000 / 3, abs=0.01)

    def test_per_policy_breakdown(self):
        registry = MetricsRegistry()
        registry.record_sweep(_summary([
            _outcome(0, "random", reports=1, trace_hash="a",
                     updates=100, fastpath=90),
            _outcome(1, "pb", trace_hash="b", updates=100, fastpath=10),
        ]))
        per_policy = registry.as_dict()["per_policy"]
        assert per_policy["random"]["failures"] == 1
        assert per_policy["random"]["check_hit_rate"] == \
            pytest.approx(0.9)
        assert per_policy["pb"]["failures"] == 0
        assert per_policy["pb"]["check_hit_rate"] == pytest.approx(0.1)

    def test_render_mentions_policies(self):
        registry = MetricsRegistry()
        registry.record_sweep(_summary([_outcome(0, "random")]))
        text = registry.render()
        assert "1 sweep(s)" in text
        assert "random" in text

    def test_real_sweep_produces_valid_metrics(self, tmp_path):
        summary = explore_source(RACY, "racy.c", seeds=4,
                                 policies=("random", "round-robin"))
        registry = MetricsRegistry()
        registry.record_sweep(summary)
        path = tmp_path / "metrics.json"
        payload = write_metrics(registry, str(path))
        assert validate_metrics(payload) == []
        reloaded = json.loads(path.read_text())
        assert reloaded == payload
        totals = reloaded["totals"]
        assert totals["schedules"] == 8
        assert totals["check_updates"] > 0
        assert 0.0 <= totals["check_hit_rate"] <= 1.0
        assert set(reloaded["per_policy"]) == {"random", "round-robin"}


class TestCrashAccounting:
    """Crash-tagged schedules flow through the registry as a separate
    column: surfaced in totals and per policy, excluded from every rate
    denominator, and never tripping schema validation."""

    def _registry(self):
        registry = MetricsRegistry()
        registry.record_sweep(_summary([
            _outcome(0, "random", reports=1, trace_hash="a"),
            _crash(1, "random"),
            _crash(2, "random"),
            _outcome(3, "pb", trace_hash="b"),
        ]))
        return registry

    def test_totals_carry_the_crash_column(self):
        payload = self._registry().as_dict()
        assert validate_metrics(payload) == []
        totals = payload["totals"]
        assert totals["schedules"] == 4
        assert totals["crashed_schedules"] == 2
        assert totals["failing_schedules"] == 1

    def test_rates_exclude_crashed_schedules(self):
        payload = self._registry().as_dict()
        # 1 failure over 2 *completed* schedules, not over all 4.
        assert payload["totals"]["races_per_1k"] == \
            pytest.approx(500.0)
        random_row = payload["per_policy"]["random"]
        assert random_row["crashes"] == 2
        assert random_row["schedules"] == 3
        # random: 1 failure / (3 - 2 crashes) completed.
        assert random_row["races_per_1k"] == pytest.approx(1000.0)
        assert payload["per_policy"]["pb"]["crashes"] == 0

    def test_crashes_never_count_as_coverage(self):
        payload = self._registry().as_dict()
        assert payload["totals"]["distinct_traces"] == 2
        assert payload["per_policy"]["random"]["distinct_traces"] == 1

    def test_sweep_ledger_rows_carry_crashes(self):
        payload = self._registry().as_dict()
        assert payload["sweeps"][0]["crashed_schedules"] == 2

    def test_real_crashing_sweep_writes_valid_metrics(self, tmp_path):
        """End to end: a sweep with harness crashes still produces a
        metrics.json that passes the schema gate (write_metrics raises
        on invalid payloads)."""

        class _FlakyWorld:
            def __init__(self):
                self.calls = 0

            def __call__(self):
                from repro.runtime.world import World

                self.calls += 1
                if self.calls % 2 == 0:
                    raise RuntimeError("world construction failed")
                return World()

        summary = explore_source(RACY, "racy.c", seeds=6,
                                 policies=("round-robin",),
                                 world_factory=_FlakyWorld())
        assert summary.crashes, "fixture stopped crashing"
        registry = MetricsRegistry()
        registry.record_sweep(summary)
        path = tmp_path / "metrics.json"
        payload = write_metrics(registry, str(path))
        assert validate_metrics(payload) == []
        reloaded = json.loads(path.read_text())
        assert reloaded["totals"]["crashed_schedules"] == 3
        assert reloaded["totals"]["schedules"] == 6
        assert reloaded["per_policy"]["round-robin"]["crashes"] == 3

    def test_validator_flags_negative_crash_counts(self):
        payload = MetricsRegistry().as_dict()
        payload["totals"]["crashed_schedules"] = -1
        problems = validate_metrics(payload)
        assert any("crashed_schedules" in p for p in problems)


class TestValidateMetrics:
    def test_flags_schema_and_ranges(self):
        assert validate_metrics([]) == ["payload is not an object"]
        payload = MetricsRegistry().as_dict()
        payload["schema"] = "bogus/9"
        payload["totals"]["check_hit_rate"] = 2.0
        payload["totals"]["schedules"] = -1
        problems = validate_metrics(payload)
        assert any("schema" in p for p in problems)
        assert any("check_hit_rate" in p for p in problems)
        assert any("schedules" in p for p in problems)

    def test_flags_missing_sections(self):
        problems = validate_metrics({"schema": METRICS_SCHEMA})
        assert "totals missing" in problems

    def test_flags_missing_static_block(self):
        payload = MetricsRegistry().as_dict()
        del payload["static"]
        problems = validate_metrics(payload)
        assert "static missing" in problems

    def test_flags_bad_static_block(self):
        payload = MetricsRegistry().as_dict()
        payload["static"]["races"] = -3
        payload["static"]["agreement"] = {
            "sharc": {"agreeing": 1, "static_only": "no"}}
        problems = validate_metrics(payload)
        assert any("static.races" in p for p in problems)
        assert any("static.agreement.sharc.static_only" in p
                   for p in problems)
        assert any("static.agreement.sharc.dynamic_only" in p
                   for p in problems)

    def test_empty_registry_static_block_is_valid(self):
        payload = MetricsRegistry().as_dict()
        assert validate_metrics(payload) == []
        assert payload["static"] == {"races": 0, "agreement": {}}


class TestRateEdgeCases:
    def test_zero_denominator_rates_are_zero(self):
        """All-crash sweeps leave every denominator at zero; rates must
        come out 0.0, not NaN or ZeroDivisionError."""
        registry = MetricsRegistry()
        registry.record_sweep(_summary([_crash(0, "random"),
                                        _crash(1, "random")]))
        payload = registry.as_dict()
        assert validate_metrics(payload) == []
        assert payload["totals"]["races_per_1k"] == 0.0
        assert payload["totals"]["check_hit_rate"] == 0.0
        assert payload["per_policy"]["random"]["races_per_1k"] == 0.0
        assert payload["per_policy"]["random"]["check_hit_rate"] == 0.0

    def test_zero_update_outcomes_keep_hit_rate_zero(self):
        registry = MetricsRegistry()
        registry.record_sweep(_summary(
            [_outcome(0, "random", updates=0, fastpath=0)]))
        payload = registry.as_dict()
        assert payload["totals"]["check_hit_rate"] == 0.0
        assert validate_metrics(payload) == []


class TestDisjointPolicyMerge:
    def test_per_policy_merge_across_disjoint_sweeps(self):
        """Two sweeps over non-overlapping policy sets must union in
        per_policy, each bucket carrying only its own sweep's rows."""
        registry = MetricsRegistry()
        a = ExplorationSummary(filename="a.c", checker="sharc",
                               policies=("random",))
        a.add(_outcome(0, "random", reports=1, trace_hash="t1"))
        a.add(_outcome(1, "random", trace_hash="t2"))
        b = ExplorationSummary(filename="b.c", checker="sharc",
                               policies=("pct", "pb"))
        b.add(_outcome(0, "pct", trace_hash="t3"))
        b.add(_outcome(0, "pb", reports=1, trace_hash="t4"))
        registry.record_sweep(a)
        registry.record_sweep(b)
        payload = registry.as_dict()
        assert validate_metrics(payload) == []
        assert set(payload["per_policy"]) == {"random", "pct", "pb"}
        assert payload["per_policy"]["random"]["schedules"] == 2
        assert payload["per_policy"]["random"]["failures"] == 1
        assert payload["per_policy"]["pct"]["schedules"] == 1
        assert payload["per_policy"]["pct"]["failures"] == 0
        assert payload["per_policy"]["pb"]["failures"] == 1
        assert payload["totals"]["schedules"] == 4

    def test_overlapping_policy_buckets_accumulate(self):
        registry = MetricsRegistry()
        for _ in range(2):
            summary = _summary([_outcome(0, "random", reports=1)])
            registry.record_sweep(summary)
        bucket = registry.as_dict()["per_policy"]["random"]
        assert bucket["schedules"] == 2
        assert bucket["failures"] == 2


class TestSchemaUpgrades:
    def _v1_payload(self):
        """A minimal sharc-metrics/1 payload: no static block, no
        crash accounting, no sites section."""
        payload = MetricsRegistry().as_dict()
        registry = MetricsRegistry()
        registry.record_sweep(_summary([_outcome(0, "random",
                                                 reports=1)]))
        payload = registry.as_dict()
        payload["schema"] = "sharc-metrics/1"
        del payload["static"]
        del payload["totals"]["crashed_schedules"]
        del payload["sites"]
        for row in payload["sweeps"]:
            del row["crashed_schedules"]
        for bucket in payload["per_policy"].values():
            del bucket["crashes"]
        return payload

    def test_v1_upgrades_to_current(self):
        upgraded = upgrade_metrics_payload(self._v1_payload())
        assert upgraded["schema"] == METRICS_SCHEMA
        assert validate_metrics(upgraded) == []
        assert upgraded["static"] == {"races": 0, "agreement": {}}
        assert upgraded["totals"]["crashed_schedules"] == 0
        assert upgraded["sites"] == {"totals": sitestats.totals({}),
                                     "rows": []}
        assert all(r["crashed_schedules"] == 0
                   for r in upgraded["sweeps"])
        assert all(b["crashes"] == 0
                   for b in upgraded["per_policy"].values())

    def test_v3_upgrade_only_adds_sites(self):
        v3 = self._v1_payload()
        v3 = upgrade_metrics_payload(v3)
        v3["schema"] = "sharc-metrics/3"
        del v3["sites"]
        upgraded = upgrade_metrics_payload(v3)
        assert upgraded["schema"] == METRICS_SCHEMA
        assert validate_metrics(upgraded) == []
        assert upgraded["sites"]["rows"] == []

    def test_v4_upgrade_adds_absint_and_ai_column(self):
        """/4 predates the abstract interpreter: the shim synthesizes
        a neutral absint section and backfills ``ai: 0`` into the site
        totals and every site row — without inventing discharges."""
        registry = MetricsRegistry()
        registry.record_sweep(explore_source(RACY, "racy.c", seeds=1,
                                             policies=("random",)))
        v4 = registry.as_dict()
        v4["schema"] = "sharc-metrics/4"
        del v4["absint"]
        del v4["sites"]["totals"]["ai"]
        assert v4["sites"]["rows"], "need site rows to test backfill"
        for row in v4["sites"]["rows"]:
            del row["ai"]
        upgraded = upgrade_metrics_payload(v4)
        assert upgraded["schema"] == METRICS_SCHEMA
        assert validate_metrics(upgraded) == []
        assert upgraded["absint"] == {"refuted": 0, "confirmed": 0,
                                      "verdicts": []}
        assert upgraded["sites"]["totals"]["ai"] == 0
        assert all(row["ai"] == 0
                   for row in upgraded["sites"]["rows"])
        # nothing else about the sites section was perturbed
        assert upgraded["sites"]["totals"]["cost"] == \
            sum(r["cost"] for r in upgraded["sites"]["rows"])

    def test_current_payload_passes_through(self):
        registry = MetricsRegistry()
        registry.record_sweep(_summary([_outcome(0, "random")]))
        payload = registry.as_dict()
        upgraded = upgrade_metrics_payload(payload)
        assert upgraded == payload

    def test_upgrade_does_not_mutate_input(self):
        v1 = self._v1_payload()
        before = json.dumps(v1, sort_keys=True)
        upgrade_metrics_payload(v1)
        assert json.dumps(v1, sort_keys=True) == before

    def test_unknown_schema_raises(self):
        payload = MetricsRegistry().as_dict()
        payload["schema"] = "sharc-metrics/99"
        with pytest.raises(ValueError, match="sharc-metrics/99"):
            upgrade_metrics_payload(payload)


class TestSitesSection:
    def test_sweep_sites_flow_into_payload(self):
        registry = MetricsRegistry()
        summary = explore_source(RACY, "racy.c", seeds=2,
                                 policies=("random",))
        registry.record_sweep(summary)
        payload = registry.as_dict()
        assert validate_metrics(payload) == []
        rows = payload["sites"]["rows"]
        assert rows, "sweep recorded no check sites"
        assert payload["sites"]["totals"]["cost"] == \
            sum(r["cost"] for r in rows)
        assert all(r["file"] == "racy.c" for r in rows)

    def test_validator_flags_malformed_site_rows(self):
        payload = MetricsRegistry().as_dict()
        payload["sites"]["rows"] = [{"file": "a.c", "line": -1,
                                     "lvalue": "x", "op": "r"}]
        problems = validate_metrics(payload)
        assert problems and any("sites" in p for p in problems)

    def test_render_includes_hot_sites(self):
        registry = MetricsRegistry()
        summary = explore_source(RACY, "racy.c", seeds=1,
                                 policies=("random",))
        registry.record_sweep(summary)
        text = registry.render()
        assert "racy.c:" in text
