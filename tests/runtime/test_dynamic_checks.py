"""Dynamic-checking tests: conflict reports, lock checks, summaries,
false sharing, and the report format of Section 2.1."""

import pytest

from tests.conftest import check_ok, run_clean, run_ok
from repro.errors import DiagKind
from repro.runtime.interp import run_checked


RACE = """
int shared = 0;
void *w(void *a) {{
  int i;
  for (i = 0; i < {n}; i++)
    shared = shared + 1;
  return NULL;
}}
int main() {{
  int t1 = thread_create(w, NULL);
  int t2 = thread_create(w, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}}
"""


class TestConflictReports:
    def test_race_detected(self):
        result = run_ok(RACE.format(n=10), seed=1)
        assert result.reports
        kinds = {r.kind for r in result.reports}
        assert kinds & {DiagKind.READ_CONFLICT, DiagKind.WRITE_CONFLICT}

    def test_report_format_matches_paper(self):
        result = run_ok(RACE.format(n=10), seed=1)
        text = result.reports[0].render()
        # e.g.  write conflict(0x00001000):
        #        who(3) shared @ test.c: 6
        #        last(2) shared @ test.c: 6
        assert "conflict(0x" in text
        assert " who(" in text
        assert " last(" in text
        assert "@ test.c:" in text

    def test_reports_deduplicated(self):
        result = run_ok(RACE.format(n=50), seed=1)
        # Many racy iterations, but one report per (site, last-site) pair.
        assert len(result.reports) < 10

    def test_non_overlapping_threads_do_not_race(self):
        run_clean("""
        int shared = 0;
        void *w(void *a) { shared = shared + 1; return NULL; }
        int main() {
          thread_join(thread_create(w, NULL));
          thread_join(thread_create(w, NULL));
          printf("%d\\n", shared);
          return 0;
        }
        """)

    def test_read_sharing_is_allowed(self):
        run_clean("""
        int readonly limit = 9;
        int racy sum = 0;
        void *w(void *a) { sum = sum + limit; return NULL; }
        int main() {
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """)

    def test_dynamic_read_sharing_without_writer_is_clean(self):
        """n readers, no writer: the dynamic discipline allows it."""
        run_clean("""
        int answer = 42;
        void *w(void *a) { int x = answer; return NULL; }
        int main() {
          answer = 42;   // main writes before any reader exists...
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """, seed=3)


class TestLockChecks:
    def test_unlocked_access_reported_on_every_schedule(self):
        source = """
        mutex lk;
        int locked(lk) v = 0;
        void *w(void *a) { v = 1; return NULL; }
        int main() {
          thread_join(thread_create(w, NULL));
          return 0;
        }
        """
        checked = check_ok(source)
        for seed in range(5):
            result = run_checked(checked, seed=seed)
            assert any(r.kind is DiagKind.LOCK_NOT_HELD
                       for r in result.reports), seed

    def test_correct_locking_is_clean(self):
        run_clean("""
        mutex lk;
        int locked(lk) v = 0;
        void *w(void *a) {
          mutexLock(&lk); v = v + 1; mutexUnlock(&lk);
          return NULL;
        }
        int main() {
          thread_join(thread_create(w, NULL));
          return 0;
        }
        """)

    def test_wrong_lock_reported(self):
        result = run_ok("""
        mutex right; mutex wrong;
        int locked(right) v = 0;
        void *w(void *a) {
          mutexLock(&wrong);
          v = 1;
          mutexUnlock(&wrong);
          return NULL;
        }
        int main() {
          thread_join(thread_create(w, NULL));
          return 0;
        }
        """)
        assert any(r.kind is DiagKind.LOCK_NOT_HELD
                   for r in result.reports)

    def test_struct_field_lock_resolved_through_instance(self):
        """locked(mut) on a field checks the *instance's* mutex."""
        run_clean("""
        typedef struct box { mutex *mut; int locked(mut) v; } box_t;
        mutex m;
        void *w(void *a) {
          box_t *b = a;
          mutexLock(b->mut);
          b->v = b->v + 1;
          mutexUnlock(b->mut);
          return NULL;
        }
        int main() {
          box_t *b = malloc(sizeof(box_t));
          b->mut = &m;
          b->v = 0;
          thread_join(thread_create(w, SCAST(box_t dynamic *, b)));
          return 0;
        }
        """)


class TestFalseSharing:
    def test_adjacent_objects_in_one_granule_conflict(self):
        """Section 4.5: races may be reported for two separate objects
        that are close together.  Two int fields of one struct share a
        16-byte granule."""
        result = run_ok("""
        typedef struct pairc { int a; int b; } pairc_t;
        pairc_t box;
        void *w1(void *x) {
          int i;
          for (i = 0; i < 30; i++) box.a = i;
          return NULL;
        }
        void *w2(void *x) {
          int i;
          for (i = 0; i < 30; i++) box.b = i;
          return NULL;
        }
        int main() {
          int t1 = thread_create(w1, NULL);
          int t2 = thread_create(w2, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """, seed=1)
        assert result.reports  # a false positive, faithfully reproduced

    def test_separate_mallocs_never_falsely_share(self):
        """...while the 16-byte-aligned allocator prevents false sharing
        between distinct heap objects (the paper's mitigation)."""
        run_clean("""
        char *a; char *b;
        void *w1(void *x) { a[0] = 1; return NULL; }
        void *w2(void *x) { b[0] = 2; return NULL; }
        int main() {
          a = malloc(1);
          b = malloc(1);
          int t1 = thread_create(w1, NULL);
          int t2 = thread_create(w2, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """, seed=1)


class TestSummaryChecks:
    def test_memcpy_ranges_checked(self):
        """A library write summary applies chkwrite over the whole range:
        cross-thread memcpy into the same buffer conflicts."""
        result = run_ok("""
        char *buf;
        void *w(void *a) {
          char tmp[16];
          int i;
          for (i = 0; i < 20; i++)
            memcpy(buf, tmp, 16);
          return NULL;
        }
        int main() {
          buf = malloc(16);
          int t1 = thread_create(w, NULL);
          int t2 = thread_create(w, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """, seed=1)
        assert any(r.kind is DiagKind.WRITE_CONFLICT
                   for r in result.reports)

    def test_disjoint_ranges_clean(self):
        run_clean("""
        char *buf;
        void *w1(void *a) { memset(buf, 1, 16); return NULL; }
        void *w2(void *a) { memset(buf + 16, 2, 16); return NULL; }
        int main() {
          buf = malloc(32);
          int t1 = thread_create(w1, NULL);
          int t2 = thread_create(w2, NULL);
          thread_join(t1); thread_join(t2);
          return 0;
        }
        """, seed=2)


class TestInstrumentationToggle:
    def test_uninstrumented_run_reports_nothing(self):
        checked = check_ok(RACE.format(n=10))
        result = run_checked(checked, seed=1, instrument=False)
        assert not result.reports
        assert result.stats.steps_checks == 0

    def test_instrumented_run_costs_more_steps(self):
        checked = check_ok(RACE.format(n=10))
        base = run_checked(checked, seed=1, instrument=False)
        inst = run_checked(checked, seed=1, instrument=True)
        assert inst.stats.steps_total > base.stats.steps_total

    def test_pct_dynamic_counts(self):
        checked = check_ok(RACE.format(n=10))
        result = run_checked(checked, seed=1)
        assert 0.0 < result.stats.pct_dynamic <= 1.0
