"""Units for the campaign engine's durable pieces: the deduplicating
trace corpus (bloom front + exact set + append-only file) and the
crash-safe work queue (lease log + atomic shard results)."""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.explore.corpus import BloomFilter, TraceCorpus
from repro.explore.queue import WorkQueue

HASHES = st.text(alphabet="0123456789abcdef", min_size=16, max_size=16)


class TestBloomFilter:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError, match="power of two"):
            BloomFilter(bits=1000)
        with pytest.raises(ValueError, match="power of two"):
            BloomFilter(bits=4)
        with pytest.raises(ValueError, match="probes"):
            BloomFilter(probes=0)

    @given(digests=st.lists(HASHES, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_no_false_negatives(self, digests):
        """The property the corpus's correctness rests on: everything
        added is always reported maybe-present."""
        bloom = BloomFilter(bits=1 << 10, probes=3)
        for digest in digests:
            bloom.add(digest)
        assert all(digest in bloom for digest in digests)

    def test_fresh_filter_is_empty(self):
        bloom = BloomFilter(bits=1 << 10)
        assert "deadbeefdeadbeef" not in bloom

    def test_probe_stream_is_deterministic(self):
        a = BloomFilter(bits=1 << 12, probes=6)
        b = BloomFilter(bits=1 << 12, probes=6)
        assert a._indices("ab12") == b._indices("ab12")
        # short digest x many probes exercises the re-mix path
        assert len(a._indices("ab12")) == 6


class TestTraceCorpus:
    def test_add_is_new_exactly_once(self, tmp_path):
        corpus = TraceCorpus(str(tmp_path / "corpus.txt"))
        assert corpus.add("aa" * 8) is True
        assert corpus.add("aa" * 8) is False
        assert corpus.add("bb" * 8) is True
        assert len(corpus) == 2
        assert "aa" * 8 in corpus
        assert "cc" * 8 not in corpus

    def test_add_many_counts_new(self):
        corpus = TraceCorpus()  # memory-only is allowed
        assert corpus.add_many(["a1" * 8, "a1" * 8, "b2" * 8]) == 2
        corpus.flush()  # no path: a no-op that clears the buffer

    def test_flush_persists_and_dedups_lines(self, tmp_path):
        path = str(tmp_path / "corpus.txt")
        corpus = TraceCorpus(path)
        corpus.add_many(["aa" * 8, "bb" * 8])
        corpus.flush()
        corpus.add_many(["aa" * 8, "cc" * 8])
        corpus.flush()
        lines = (tmp_path / "corpus.txt").read_text().splitlines()
        assert sorted(lines) == sorted(["aa" * 8, "bb" * 8, "cc" * 8])
        assert len(lines) == len(set(lines))

    def test_refold_working_set_starts_empty(self, tmp_path):
        """Resume semantics: a reopened corpus answers "new" for
        already-persisted hashes (the refold rebuilds the working set)
        but never rewrites them to disk."""
        path = str(tmp_path / "corpus.txt")
        first = TraceCorpus(path)
        first.add("aa" * 8)
        first.flush()
        again = TraceCorpus(path)
        assert "aa" * 8 not in again  # working set is fresh
        assert again.add("aa" * 8) is True  # new to THIS fold...
        again.flush()
        lines = (tmp_path / "corpus.txt").read_text().splitlines()
        assert lines == ["aa" * 8]  # ...but not re-persisted

    def test_preload_seeds_working_set(self, tmp_path):
        path = str(tmp_path / "corpus.txt")
        first = TraceCorpus(path)
        first.add_many(["aa" * 8, "bb" * 8])
        first.flush()
        warm = TraceCorpus(path, preload=True)
        assert len(warm) == 2
        assert warm.add("aa" * 8) is False

    def test_torn_tail_dropped_on_load(self, tmp_path):
        path = tmp_path / "corpus.txt"
        path.write_text("aa" * 8 + "\n" + "bb" * 8 + "\nZZnot-hex")
        corpus = TraceCorpus(str(path), preload=True)
        assert len(corpus) == 2
        assert corpus.persisted == 2

    def test_persisted_counts_pending(self, tmp_path):
        corpus = TraceCorpus(str(tmp_path / "corpus.txt"))
        corpus.add("aa" * 8)
        assert corpus.persisted == 1  # buffered counts toward disk
        corpus.flush()
        assert corpus.persisted == 1


class TestWorkQueue:
    def _shard(self, n, seed_start=0, seeds=8):
        return {"shard": n, "label": "w", "policy": "random",
                "seed_start": seed_start, "seeds": seeds}

    def test_records_round_trip(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.lease(self._shard(0), rate=None, picked=0)
        queue.mark_done(0)
        kinds = [r["kind"] for r in queue.records()]
        assert kinds == ["lease", "done"]
        lease = queue.records()[0]
        assert lease["rate"] is None and lease["picked"] == 0
        assert lease["seed_start"] == 0 and lease["seeds"] == 8

    def test_torn_tail_tolerated(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.lease(self._shard(0), rate=0.5, picked=0)
        with open(queue.queue_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "done", "sha')  # killed mid-append
        records = queue.records()
        assert len(records) == 1
        assert records[0]["kind"] == "lease"

    def test_completed_needs_done_and_result(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.lease(self._shard(0), rate=None, picked=0)
        queue.lease(self._shard(1, seed_start=8), rate=1.0, picked=1)
        queue.write_shard(0, {"rows": []})
        queue.mark_done(0)
        # shard 1: leased but never finished -> not completed
        done = queue.completed()
        assert [r["shard"] for r in done] == [0]

    def test_completed_dedupes_re_leased_shards(self, tmp_path):
        """An orphan lease re-leased after a kill must fold once."""
        queue = WorkQueue(str(tmp_path))
        queue.lease(self._shard(0), rate=None, picked=0)  # orphan
        queue.lease(self._shard(0), rate=None, picked=0)  # re-lease
        queue.write_shard(0, {"rows": []})
        queue.mark_done(0)
        assert len(queue.completed()) == 1

    def test_write_shard_is_atomic(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.write_shard(3, {"rows": [1, 2], "shard": 3})
        assert queue.load_shard(3) == {"rows": [1, 2], "shard": 3}
        assert not os.path.exists(queue.shard_path(3) + ".tmp")
        # deterministic serialization: same payload, same bytes
        before = open(queue.shard_path(3), "rb").read()
        queue.write_shard(3, {"shard": 3, "rows": [1, 2]})
        assert open(queue.shard_path(3), "rb").read() == before

    def test_corrupt_shard_treated_as_absent(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        with open(queue.shard_path(0), "w", encoding="utf-8") as handle:
            handle.write('{"rows": [')  # torn by a kill mid-write...
        assert queue.load_shard(0) is None
        queue.lease(self._shard(0), rate=None, picked=0)
        queue.mark_done(0)
        # ...which cannot happen post-rename, but even then the shard
        # re-runs rather than folding garbage
        assert queue.completed() == []

    def test_empty_queue(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        assert queue.records() == []
        assert queue.completed() == []
        assert queue.load_shard(7) is None

    def test_lease_records_are_json_lines(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.lease(self._shard(0), rate=0.123456789, picked=0)
        line = open(queue.queue_path, encoding="utf-8").read()
        record = json.loads(line)
        assert record["rate"] == pytest.approx(0.123457)
