"""Unit tests for the metrics (repro.runtime.stats)."""

from repro.runtime.stats import RunStats, time_overhead


class TestPctDynamic:
    def test_zero_accesses(self):
        assert RunStats().pct_dynamic == 0.0

    def test_fraction(self):
        stats = RunStats(accesses_total=200, accesses_dynamic=80)
        assert stats.pct_dynamic == 0.4


class TestMemoryOverhead:
    def test_zero_data(self):
        assert RunStats().memory_overhead() == 0.0

    def test_byte_ratio(self):
        stats = RunStats(data_bytes=1000, shadow_bytes=50, rc_bytes=30)
        assert stats.memory_overhead() == 0.08

    def test_metadata_pages(self):
        stats = RunStats(pages_shadow=2, pages_rc=3)
        assert stats.metadata_pages == 5


class TestTimeOverhead:
    def test_zero_base(self):
        assert time_overhead(RunStats(), RunStats(steps_total=10)) == 0.0

    def test_relative(self):
        base = RunStats(steps_total=1000)
        inst = RunStats(steps_total=1120)
        assert abs(time_overhead(base, inst) - 0.12) < 1e-9

    def test_negative_possible(self):
        # instrumented may be (spuriously) faster on tiny runs
        base = RunStats(steps_total=100)
        inst = RunStats(steps_total=90)
        assert time_overhead(base, inst) < 0


class TestStepsPerSec:
    def test_zero_wall(self):
        assert RunStats(steps_total=100).steps_per_sec == 0.0

    def test_negative_wall_guarded(self):
        # A corrupt / backwards clock must not produce a negative rate.
        assert RunStats(steps_total=100,
                        wall_seconds=-0.5).steps_per_sec == 0.0

    def test_rate(self):
        stats = RunStats(steps_total=100, wall_seconds=0.5)
        assert stats.steps_per_sec == 200.0


class TestCheckFastpathRate:
    def test_zero_updates(self):
        assert RunStats().check_fastpath_rate == 0.0
        assert RunStats(shadow_fastpath_hits=3,
                        shadow_updates=-1).check_fastpath_rate == 0.0

    def test_fraction(self):
        stats = RunStats(shadow_updates=40, shadow_fastpath_hits=10)
        assert stats.check_fastpath_rate == 0.25


class TestGuardUniformity:
    """Every ratio treats a zero *or negative* denominator as 0.0."""

    def test_negative_denominators(self):
        stats = RunStats(accesses_total=-5, accesses_dynamic=2,
                         data_bytes=-100, shadow_bytes=10)
        assert stats.pct_dynamic == 0.0
        assert stats.memory_overhead() == 0.0
        base = RunStats(steps_total=-10)
        assert time_overhead(base, RunStats(steps_total=10)) == 0.0


def test_summary_renders_key_numbers():
    stats = RunStats(steps_total=42, steps_checks=7, steps_rc=3,
                     accesses_total=10, accesses_dynamic=5,
                     pages_program=2, pages_shadow=1, pages_rc=1)
    text = stats.summary()
    assert "steps=42" in text
    assert "50.0%" in text
