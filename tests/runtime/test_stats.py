"""Unit tests for the metrics (repro.runtime.stats)."""

from repro.runtime.stats import RunStats, time_overhead


class TestPctDynamic:
    def test_zero_accesses(self):
        assert RunStats().pct_dynamic == 0.0

    def test_fraction(self):
        stats = RunStats(accesses_total=200, accesses_dynamic=80)
        assert stats.pct_dynamic == 0.4


class TestMemoryOverhead:
    def test_zero_data(self):
        assert RunStats().memory_overhead() == 0.0

    def test_byte_ratio(self):
        stats = RunStats(data_bytes=1000, shadow_bytes=50, rc_bytes=30)
        assert stats.memory_overhead() == 0.08

    def test_metadata_pages(self):
        stats = RunStats(pages_shadow=2, pages_rc=3)
        assert stats.metadata_pages == 5


class TestTimeOverhead:
    def test_zero_base(self):
        assert time_overhead(RunStats(), RunStats(steps_total=10)) == 0.0

    def test_relative(self):
        base = RunStats(steps_total=1000)
        inst = RunStats(steps_total=1120)
        assert abs(time_overhead(base, inst) - 0.12) < 1e-9

    def test_negative_possible(self):
        # instrumented may be (spuriously) faster on tiny runs
        base = RunStats(steps_total=100)
        inst = RunStats(steps_total=90)
        assert time_overhead(base, inst) < 0


def test_summary_renders_key_numbers():
    stats = RunStats(steps_total=42, steps_checks=7, steps_rc=3,
                     accesses_total=10, accesses_dynamic=5,
                     pages_program=2, pages_shadow=1, pages_rc=1)
    text = stats.summary()
    assert "steps=42" in text
    assert "50.0%" in text
