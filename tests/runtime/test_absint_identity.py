"""The abstract interpreter's soundness gate: running with ``absint``
on vs off must be *bit-identical* — same reports, same step counts,
same scheduling decisions — across seeds, scheduling policies, and
both execution backends.  Only the check-mix accounting (full vs
AI-elided) and therefore wall time may differ.

Like check elimination and the lockset refinement, this holds by
construction: an ``ai_elide`` site still runs the
``ShadowMemory.recheck`` guard — the exact cache-hit prefix of the
full check — and falls back to the full check on a miss.  These tests
keep the construction honest (they are the absint twin of
``test_checkelim_identity.py``)."""

from hypothesis import given, settings, strategies as st

from tests.conftest import check_ok
from repro.explore.driver import run_schedule
from repro.runtime.interp import run_checked

# The g covers flow through the check-free callee `pump` — a site only
# the interval tier marks (checkelim kills covers at any call), so the
# absint discharge genuinely fires at runtime here.
RACY = """
int shared = 0;
int buf[32];
int pump() { int y; y = 2; return y; }
void *w(void *a) {
  int i; int x;
  for (i = 0; i < 16; i++) {
    x = shared;
    pump();
    shared = x + shared;
    buf[0] = buf[0] + 1;
    buf[1] = buf[1] + buf[0];
  }
  return NULL;
}
int main() {
  int t1 = thread_create(w, NULL);
  int t2 = thread_create(w, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
"""

POLICIES = ["random", "round-robin", "pct", "pb"]


def _run(checked, seed, policy, absint, backend=None):
    return run_checked(checked, seed=seed, policy=policy,
                       absint=absint, backend=backend,
                       record_trace=True)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40),
       policy=st.sampled_from(POLICIES))
def test_on_off_runs_are_bit_identical(seed, policy):
    checked = check_ok(RACY)
    on = _run(checked, seed, policy, True)
    off = _run(checked, seed, policy, False)
    assert on.stats.steps_total == off.stats.steps_total
    assert on.trace == off.trace  # every context switch, in order
    assert on.report_counts == off.report_counts
    assert [r.render() for r in on.reports] == \
        [r.render() for r in off.reports]
    assert on.output == off.output
    assert (on.deadlock, on.error, on.timeout, on.exit_code) == \
        (off.deadlock, off.error, off.timeout, off.exit_code)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40),
       policy=st.sampled_from(POLICIES))
def test_compiled_backend_is_bit_identical_too(seed, policy):
    checked = check_ok(RACY)
    on = _run(checked, seed, policy, True, backend="compiled")
    off = _run(checked, seed, policy, False, backend="compiled")
    assert on.stats.steps_total == off.stats.steps_total
    assert on.trace == off.trace
    assert on.report_counts == off.report_counts
    # ...and the discharge accounting agrees across backends
    interp_on = _run(checked, seed, policy, True, backend="interp")
    assert on.stats.checks_ai_elided == interp_on.stats.checks_ai_elided
    assert on.stats.sites == interp_on.stats.sites


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40),
       policy=st.sampled_from(POLICIES))
def test_explore_outcomes_are_identical(seed, policy):
    """The ``sharc explore`` path (trace hash included) can't tell the
    two configurations apart either."""
    on = run_schedule(RACY, "t.c", seed, policy, absint=True)
    off = run_schedule(RACY, "t.c", seed, policy, absint=False)
    assert on.trace_hash == off.trace_hash
    assert on.report_keys == off.report_keys
    assert (on.steps, on.switches, on.deadlock, on.error) == \
        (off.steps, off.switches, off.deadlock, off.error)


class TestCheckMix:
    """What IS allowed to change: how the same checks get discharged."""

    def test_ai_discharge_actually_fires(self):
        checked = check_ok(RACY)
        on = _run(checked, 3, "random", True)
        assert on.stats.checks_ai_elided > 0
        assert on.stats.checks_ai_elided_pct > 0.0

    def test_off_run_never_ai_elides(self):
        checked = check_ok(RACY)
        off = _run(checked, 3, "random", False)
        assert off.stats.checks_ai_elided == 0
        assert off.stats.checks_ai_elided_pct == 0.0

    def test_total_dynamic_checks_are_conserved(self):
        checked = check_ok(RACY)
        on = _run(checked, 3, "random", True)
        off = _run(checked, 3, "random", False)
        total = lambda s: (s.checks_full + s.checks_range
                           + s.checks_elided + s.checks_locked_refined
                           + s.checks_ai_elided)
        assert total(on.stats) == total(off.stats)
        assert on.stats.accesses_dynamic == off.stats.accesses_dynamic

    def test_sites_reconcile_with_ai_column(self):
        from repro.obs.sitestats import reconcile, totals

        checked = check_ok(RACY)
        on = _run(checked, 3, "random", True)
        assert reconcile(on.stats.sites, on.stats) == []
        assert totals(on.stats.sites)["ai"] == \
            on.stats.checks_ai_elided > 0


class TestWorkloadDischarge:
    """The acceptance criterion: on >= 3 Table 1 workloads the absint
    tier discharges checks at *runtime* (checks_ai_elided > 0) that
    checkelim alone left as full walks — with everything observable
    identical on vs off."""

    def _pair(self, name, annotated):
        from repro.bench.harness import run_workload
        from repro.bench.workloads import get_workload

        workload = get_workload(name)
        on = run_workload(workload, annotated=annotated, absint=True)
        off = run_workload(workload, annotated=annotated, absint=False)
        return on, off

    def _assert_discharges(self, name, annotated):
        on, off = self._pair(name, annotated)
        assert on.sharc_steps == off.sharc_steps
        assert on.reports == off.reports
        assert on.sharc_result.stats.checks_ai_elided > 0, name
        assert off.sharc_result.stats.checks_ai_elided == 0

    def test_pfscan_annotated_discharges(self):
        self._assert_discharges("pfscan", True)

    def test_aget_unannotated_discharges(self):
        self._assert_discharges("aget", False)

    def test_stunnel_unannotated_discharges(self):
        self._assert_discharges("stunnel", False)
