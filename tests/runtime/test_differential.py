"""Differential testing: the interpreter's arithmetic against Python's.

Random expression trees over integer literals are rendered to mini-C,
executed through the full pipeline (parse → infer → check → run), and the
printed result is compared with an independently computed expected value
using C semantics (truncating division).
"""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import run_clean


class Node:
    """A tiny expression tree with its own C-semantics evaluator."""

    def __init__(self, op, left=None, right=None, value=0):
        self.op = op
        self.left = left
        self.right = right
        self.value = value

    def render(self):
        if self.op == "lit":
            return str(self.value)
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def eval(self):
        if self.op == "lit":
            return self.value
        a, b = self.left.eval(), self.right.eval()
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            if b == 0:
                raise ZeroDivisionError
            q = abs(a) // abs(b)
            return q if (a < 0) == (b < 0) else -q
        if self.op == "%":
            if b == 0:
                raise ZeroDivisionError
            return a - self.eval_div(a, b) * b
        if self.op == "&":
            return a & b
        if self.op == "|":
            return a | b
        if self.op == "^":
            return a ^ b
        if self.op == "<":
            return int(a < b)
        if self.op == ">":
            return int(a > b)
        if self.op == "==":
            return int(a == b)
        raise AssertionError(self.op)

    @staticmethod
    def eval_div(a, b):
        q = abs(a) // abs(b)
        return q if (a < 0) == (b < 0) else -q


@st.composite
def expr_trees(draw, depth=0):
    if depth >= 4 or draw(st.booleans()):
        return Node("lit", value=draw(st.integers(-50, 50)))
    op = draw(st.sampled_from("+ - * / % & | ^ < > ==".split()))
    left = draw(expr_trees(depth=depth + 1))
    right = draw(expr_trees(depth=depth + 1))
    return Node(op, left, right)


@settings(max_examples=60, deadline=None)
@given(tree=expr_trees())
def test_arithmetic_matches_c_semantics(tree):
    try:
        expected = tree.eval()
    except ZeroDivisionError:
        return  # the interpreter traps these; covered elsewhere
    source = f"""
    int main() {{
      long r = {tree.render()};
      printf("%ld\\n", r);
      return 0;
    }}
    """
    result = run_clean(source)
    assert result.output.strip() == str(expected), tree.render()


@settings(max_examples=25, deadline=None)
@given(values=st.lists(st.integers(-100, 100), min_size=1, max_size=12))
def test_array_sum_matches(values):
    writes = "\n".join(f"  v[{i}] = {x};" for i, x in enumerate(values))
    source = f"""
    int main() {{
      long v[{len(values)}];
      long s = 0;
      int i;
    {writes}
      for (i = 0; i < {len(values)}; i++)
        s = s + v[i];
      printf("%ld\\n", s);
      return 0;
    }}
    """
    result = run_clean(source)
    assert result.output.strip() == str(sum(values))


@settings(max_examples=20, deadline=None)
@given(text=st.text(alphabet=st.sampled_from("abcdef "), min_size=0,
                    max_size=24))
def test_string_roundtrip_through_memory(text):
    source = f"""
    int main() {{
      char *s = strdup("{text}");
      printf("%ld:%s\\n", strlen(s), s);
      free(s);
      return 0;
    }}
    """
    result = run_clean(source)
    assert result.output == f"{len(text)}:{text}\n"
