"""The compiled backend's soundness gate: ``backend="compiled"`` vs
``backend="interp"`` must be *bit-identical* by seed — same step counts,
same context-switch trace, same reports, same output — across seeds and
scheduling policies.  Only wall time may differ.

This holds by construction: the compiled executor subclasses the
tree-walker and overrides nothing but how function bodies produce their
scheduler items (pre-compiled closures and generated source instead of
AST dispatch); scheduler, shadow memory, lock table, RC scheme, RNG
streams, and tracing are the inherited machinery, shared verbatim.
These tests keep the construction honest.
"""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import check_ok
from repro.explore.driver import run_schedule
from repro.runtime.interp import (
    BACKENDS, Interp, make_interp, resolve_backend, run_checked,
)

#: exercises locks, arrays, a sharing cast, helper calls, and a race —
#: the paths where compiled and interpreted execution could plausibly
#: diverge
RACY = """
mutex lk;
int locked(lk) total = 0;
int shared = 0;
int buf[32];
int bump(int v) { return v + 1; }
void *w(void *a) {
  int i; int x;
  for (i = 0; i < 12; i++) {
    x = shared;
    shared = bump(x) + buf[i];
    buf[i] = buf[i] + 1;
    mutexLock(&lk); total = total + 1; mutexUnlock(&lk);
  }
  return NULL;
}
int main() {
  int *a = malloc(4);
  int private *p = SCAST(int private *, a);
  *p = 7;
  free(p);
  int t1 = thread_create(w, NULL);
  int t2 = thread_create(w, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
"""

POLICIES = ["random", "round-robin", "pct", "pb"]


def _run(checked, seed, policy, backend):
    return run_checked(checked, seed=seed, policy=policy,
                       backend=backend, record_trace=True)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40),
       policy=st.sampled_from(POLICIES))
def test_backends_are_bit_identical(seed, policy):
    checked = check_ok(RACY)
    interp = _run(checked, seed, policy, "interp")
    compiled = _run(checked, seed, policy, "compiled")
    assert interp.stats.steps_total == compiled.stats.steps_total
    assert interp.trace == compiled.trace  # every switch, in order
    assert interp.report_counts == compiled.report_counts
    assert [r.render() for r in interp.reports] == \
        [r.render() for r in compiled.reports]
    assert interp.output == compiled.output
    assert (interp.deadlock, interp.error, interp.timeout,
            interp.exit_code) == \
        (compiled.deadlock, compiled.error, compiled.timeout,
         compiled.exit_code)
    # The checks themselves are discharged identically too.
    assert interp.stats.accesses_dynamic == compiled.stats.accesses_dynamic
    assert interp.stats.shadow_updates == compiled.stats.shadow_updates


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40),
       policy=st.sampled_from(POLICIES))
def test_explore_outcomes_are_identical(seed, policy):
    """The ``sharc explore`` path (trace hash included) can't tell the
    two backends apart either."""
    interp = run_schedule(RACY, "t.c", seed, policy, backend="interp")
    compiled = run_schedule(RACY, "t.c", seed, policy,
                            backend="compiled")
    assert interp.trace_hash == compiled.trace_hash
    assert interp.report_keys == compiled.report_keys
    assert (interp.steps, interp.switches, interp.deadlock,
            interp.error) == \
        (compiled.steps, compiled.switches, compiled.deadlock,
         compiled.error)


class TestBackendResolution:
    def test_default_is_the_tree_walker(self, monkeypatch):
        monkeypatch.delenv("SHARC_BACKEND", raising=False)
        assert resolve_backend(None) == "interp"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("SHARC_BACKEND", "compiled")
        assert resolve_backend("interp") == "interp"

    def test_env_var_fills_in_none(self, monkeypatch):
        # This is how CI runs the whole tier-1 suite compiled.
        monkeypatch.setenv("SHARC_BACKEND", "compiled")
        assert resolve_backend(None) == "compiled"

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("jit")

    def test_make_interp_dispatches(self):
        from repro.compile import CompiledInterp

        checked = check_ok(RACY)
        assert type(make_interp(checked, backend="interp")) is Interp
        assert isinstance(make_interp(checked, backend="compiled"),
                          CompiledInterp)
        assert set(BACKENDS) == {"interp", "compiled"}


class TestCompilationArtifact:
    def test_compile_is_cached_per_program(self):
        # One compile serves every seed/policy run of the program.
        checked = check_ok(RACY)
        first = make_interp(checked, backend="compiled")
        second = make_interp(checked, backend="compiled")
        assert first.compiled is second.compiled

    def test_all_functions_compile_on_the_gate_program(self):
        checked = check_ok(RACY)
        compiled = make_interp(checked, backend="compiled").compiled
        assert set(compiled.funcs) >= {"main", "w", "bump"}

    def test_compiled_run_is_actually_faster_on_a_hot_loop(self):
        # Not a benchmark — just a smoke check that the backend isn't
        # silently falling back to tree-walking everything.  A generous
        # 1.2x floor keeps this immune to host jitter; the real 3-5x
        # gate lives in the bench canary.
        source = """
        int acc = 0;
        int main() {
          int i;
          for (i = 0; i < 60000; i++)
            acc = acc + i;
          return 0;
        }
        """
        checked = check_ok(source)
        # Warm both paths (first compiled run pays the compile).
        run_checked(checked, seed=1, backend="compiled")
        interp = run_checked(checked, seed=1, backend="interp")
        compiled = run_checked(checked, seed=1, backend="compiled")
        assert interp.stats.steps_total == compiled.stats.steps_total
        assert (compiled.stats.steps_per_sec
                > 1.2 * interp.stats.steps_per_sec)


class TestBenchBackendInvariance:
    def test_run_workload_metrics_match_across_backends(self):
        from repro.bench.harness import run_workload
        from repro.bench.workloads import all_workloads

        workload = {w.name: w for w in all_workloads()}["aget"]
        interp = run_workload(workload, backend="interp")
        compiled = run_workload(workload, backend="compiled")
        assert interp.sharc_steps == compiled.sharc_steps
        assert interp.base_steps == compiled.base_steps
        assert interp.reports == compiled.reports
        assert interp.time_overhead == compiled.time_overhead
        assert interp.mem_overhead == compiled.mem_overhead
        assert interp.backend == "interp"
        assert compiled.backend == "compiled"
        assert interp.interp_steps_per_sec > 0
        assert interp.compiled_steps_per_sec == 0.0
        assert compiled.compiled_steps_per_sec > 0
        assert compiled.interp_steps_per_sec == 0.0
