"""Interpreter tests: sequential language semantics."""

import pytest

from tests.conftest import run_clean, run_ok


def output_of(source, **kwargs):
    return run_clean(source, **kwargs).output


class TestArithmetic:
    def test_integer_ops(self):
        out = output_of("""
        int main() {
          printf("%d %d %d %d %d\\n",
                 7 + 3, 7 - 3, 7 * 3, 7 / 3, 7 % 3);
          return 0;
        }
        """)
        assert out == "10 4 21 2 1\n"

    def test_negative_division_truncates(self):
        out = output_of("""
        int main() { printf("%d %d\\n", -7 / 2, -7 % 2); return 0; }
        """)
        assert out == "-3 -1\n"

    def test_bitwise(self):
        out = output_of("""
        int main() {
          printf("%d %d %d %d %d\\n",
                 12 & 10, 12 | 10, 12 ^ 10, 1 << 4, 32 >> 2);
          return 0;
        }
        """)
        assert out == "8 14 6 16 8\n"

    def test_comparisons_and_logic(self):
        out = output_of("""
        int main() {
          printf("%d%d%d%d%d%d\\n", 1 < 2, 2 <= 2, 3 > 4,
                 4 >= 4, 1 && 0, 0 || 2);
          return 0;
        }
        """)
        assert out == "110101\n"

    def test_short_circuit_avoids_side_effects(self):
        out = output_of("""
        int hits = 0;
        int bump() { hits = hits + 1; return 1; }
        int main() {
          int a = 0 && bump();
          int b = 1 || bump();
          printf("%d\\n", hits);
          return 0;
        }
        """)
        assert out == "0\n"

    def test_float_arithmetic(self):
        out = output_of("""
        int main() {
          double x = 1.5;
          double y = x * 4.0 + 0.25;
          printf("%f\\n", y);
          return 0;
        }
        """)
        assert out.startswith("6.25")

    def test_division_by_zero_traps(self):
        from repro.sharc.checker import check_source
        from repro.runtime.interp import run_checked
        checked = check_source("int main() { return 1 / 0; }")
        result = run_checked(checked)
        assert result.error is not None and "zero" in result.error

    def test_ternary_and_comma(self):
        out = output_of("""
        int main() {
          int x = (1, 2, 3);
          printf("%d %d\\n", x > 2 ? 10 : 20, x);
          return 0;
        }
        """)
        assert out == "10 3\n"


class TestControlFlow:
    def test_while_loop(self):
        assert output_of("""
        int main() {
          int i = 0; int s = 0;
          while (i < 5) { s = s + i; i++; }
          printf("%d\\n", s);
          return 0;
        }
        """) == "10\n"

    def test_for_loop_with_break_continue(self):
        assert output_of("""
        int main() {
          int s = 0; int i;
          for (i = 0; i < 10; i++) {
            if (i == 7) break;
            if (i % 2) continue;
            s = s + i;
          }
          printf("%d\\n", s);
          return 0;
        }
        """) == "12\n"

    def test_do_while_runs_once(self):
        assert output_of("""
        int main() {
          int n = 0;
          do n++; while (0);
          printf("%d\\n", n);
          return 0;
        }
        """) == "1\n"

    def test_nested_loops(self):
        assert output_of("""
        int main() {
          int total = 0; int i; int j;
          for (i = 0; i < 3; i++)
            for (j = 0; j < 3; j++)
              if (i != j) total++;
          printf("%d\\n", total);
          return 0;
        }
        """) == "6\n"

    def test_recursion(self):
        assert output_of("""
        int fib(int n) {
          if (n < 2) return n;
          return fib(n - 1) + fib(n - 2);
        }
        int main() { printf("%d\\n", fib(12)); return 0; }
        """) == "144\n"

    def test_exit_builtin(self):
        result = run_ok("""
        int main() { exit(3); printf("unreachable\\n"); return 0; }
        """)
        assert result.exit_code == 3
        assert result.output == ""


class TestPointersAndMemory:
    def test_pointer_roundtrip(self):
        assert output_of("""
        int main() {
          int x = 5;
          int *p = &x;
          *p = *p + 2;
          printf("%d\\n", x);
          return 0;
        }
        """) == "7\n"

    def test_pointer_arithmetic_scales(self):
        assert output_of("""
        int main() {
          long *v = malloc(32);
          long *q = v + 2;
          *q = 9;
          printf("%ld\\n", v[2]);
          return 0;
        }
        """) == "9\n"

    def test_pointer_difference(self):
        assert output_of("""
        int main() {
          int *v = malloc(40);
          printf("%ld\\n", (v + 7) - v);
          return 0;
        }
        """) == "7\n"

    def test_increment_on_pointer(self):
        assert output_of("""
        int main() {
          char *s = strdup("abc");
          char *p = s;
          p++;
          printf("%c\\n", *p);
          free(s);
          return 0;
        }
        """) == "b\n"

    def test_null_deref_traps(self):
        from repro.sharc.checker import check_source
        from repro.runtime.interp import run_checked
        checked = check_source(
            "int main() { int *p = NULL; return *p; }")
        result = run_checked(checked)
        assert result.error is not None and "null" in result.error

    def test_char_cells_masked(self):
        assert output_of("""
        int main() {
          char *b = malloc(2);
          b[0] = 300;   // truncates to 44
          printf("%d\\n", b[0]);
          return 0;
        }
        """) == "44\n"

    def test_memcpy_memset(self):
        assert output_of("""
        int main() {
          char *a = malloc(8);
          char *b = malloc(8);
          memset(a, 65, 7);
          memcpy(b, a, 8);
          printf("%s\\n", b);
          return 0;
        }
        """) == "AAAAAAA\n"


class TestStructsAndArrays:
    def test_struct_fields(self):
        assert output_of("""
        typedef struct point { int x; int y; } point_t;
        int main() {
          point_t *p = malloc(sizeof(point_t));
          p->x = 3;
          p->y = 4;
          printf("%d\\n", p->x * p->x + p->y * p->y);
          return 0;
        }
        """) == "25\n"

    def test_local_struct_dot_access(self):
        assert output_of("""
        typedef struct pair { long a; long b; } pair_t;
        int main() {
          pair_t p;
          p.a = 10;
          p.b = p.a * 2;
          printf("%ld\\n", p.b);
          return 0;
        }
        """) == "20\n"

    def test_struct_assignment_copies(self):
        assert output_of("""
        typedef struct pair { int a; int b; } pair_t;
        int main() {
          pair_t x; pair_t y;
          x.a = 1; x.b = 2;
          y = x;
          y.a = 9;
          printf("%d %d %d\\n", x.a, y.a, y.b);
          return 0;
        }
        """) == "1 9 2\n"

    def test_nested_struct_pointers(self):
        assert output_of("""
        typedef struct node { struct node *next; int v; } node_t;
        int main() {
          node_t *a = malloc(sizeof(node_t));
          node_t *b = malloc(sizeof(node_t));
          a->v = 1; a->next = b;
          b->v = 2; b->next = NULL;
          int sum = 0;
          node_t *it = a;
          while (it) { sum = sum + it->v; it = it->next; }
          printf("%d\\n", sum);
          return 0;
        }
        """) == "3\n"

    def test_arrays_and_sizeof(self):
        assert output_of("""
        int main() {
          long v[4];
          int i;
          for (i = 0; i < 4; i++) v[i] = i * i;
          printf("%ld %ld\\n", v[3], sizeof(v[0]) + 0);
          return 0;
        }
        """) == "9 8\n"

    def test_global_initializers(self):
        assert output_of("""
        int base = 40;
        int extra = 2;
        int main() { printf("%d\\n", base + extra); return 0; }
        """) == "42\n"


class TestStrings:
    def test_strlen_strcmp(self):
        assert output_of("""
        int main() {
          char *s = strdup("hello");
          printf("%ld %d %d\\n", strlen(s),
                 strcmp(s, s), strcmp(s, "hellp") < 0);
          free(s);
          return 0;
        }
        """) == "5 0 1\n"

    def test_strchr_strstr(self):
        assert output_of("""
        int main() {
          char *s = strdup("finding");
          char *c = strchr(s, 'd');
          char *t = strstr(s, "in");
          printf("%c %ld\\n", *c, t - s);
          free(s);
          return 0;
        }
        """) == "d 1\n"

    def test_snprintf_and_atoi(self):
        assert output_of("""
        int main() {
          char buf[16];
          snprintf(buf, 16, "%d-%s", 42, "x");
          printf("%s %d\\n", buf, atoi("123"));
          return 0;
        }
        """) == "42-x 123\n"

    def test_printf_formats(self):
        out = output_of("""
        int main() {
          printf("%d|%ld|%c|%x|%%\\n", -3, 100, 65, 255);
          return 0;
        }
        """)
        assert out == "-3|100|A|ff|%\n"


class TestFunctionPointers:
    def test_call_through_pointer(self):
        assert output_of("""
        int twice(int x) { return 2 * x; }
        int thrice(int x) { return 3 * x; }
        int main() {
          int (*f)(int v);
          f = twice;
          int a = f(5);
          f = thrice;
          printf("%d %d\\n", a, f(5));
          return 0;
        }
        """) == "10 15\n"

    def test_function_pointer_in_struct(self):
        assert output_of("""
        typedef struct ops { int (*apply)(int v); } ops_t;
        int inc(int x) { return x + 1; }
        int main() {
          ops_t o;
          o.apply = inc;
          printf("%d\\n", o.apply(41));
          return 0;
        }
        """) == "42\n"
