"""Tests for the Section 7 extension: reader-writer locks and barriers.

The paper closes with "SharC may also need new sharing modes to better
support existing sharing strategies (e.g., more support for locks)"; this
extension makes ``locked(l)`` rwlock-aware — reads are legal under a read
*or* write hold, writes only under a write hold — and adds an n-party
barrier to the signaling substrate.
"""

import pytest

from tests.conftest import check_ok, run_clean, run_ok
from repro.errors import DiagKind, InterpError
from repro.runtime.locks import LockTable
from repro.runtime.interp import run_checked


class TestRWLockTable:
    @pytest.fixture
    def locks(self):
        return LockTable()

    def test_many_readers(self, locks):
        assert locks.try_rdlock(0x100, 1)
        assert locks.try_rdlock(0x100, 2)
        assert locks.try_rdlock(0x100, 3)

    def test_writer_excludes_readers(self, locks):
        assert locks.try_wrlock(0x100, 1)
        assert not locks.try_rdlock(0x100, 2)
        assert not locks.try_wrlock(0x100, 2)

    def test_readers_exclude_writer(self, locks):
        locks.try_rdlock(0x100, 1)
        assert not locks.try_wrlock(0x100, 2)

    def test_unlock_read_side(self, locks):
        locks.try_rdlock(0x100, 1)
        locks.rw_unlock(0x100, 1)
        assert locks.try_wrlock(0x100, 2)

    def test_unlock_write_side(self, locks):
        locks.try_wrlock(0x100, 1)
        locks.rw_unlock(0x100, 1)
        assert locks.try_rdlock(0x100, 2)

    def test_unlock_unheld_raises(self, locks):
        with pytest.raises(InterpError):
            locks.rw_unlock(0x100, 1)

    def test_holds_for_access_semantics(self, locks):
        locks.try_rdlock(0x100, 1)
        assert locks.holds_for_access(1, 0x100, is_write=False)
        assert not locks.holds_for_access(1, 0x100, is_write=True)
        locks.rw_unlock(0x100, 1)
        locks.try_wrlock(0x100, 1)
        assert locks.holds_for_access(1, 0x100, is_write=True)
        assert locks.holds_for_access(1, 0x100, is_write=False)

    def test_thread_exit_releases_read_holds(self, locks):
        locks.try_rdlock(0x100, 1)
        locks.thread_exit(1)
        assert locks.try_wrlock(0x100, 2)

    def test_mutex_fallback_unchanged(self, locks):
        locks.try_acquire(0x200, 1)
        assert locks.holds_for_access(1, 0x200, is_write=True)
        assert locks.holds_for_access(1, 0x200, is_write=False)


RW_PROGRAM = """
rwlock tablelock;
int locked(tablelock) table[4];
int racy sum_out = 0;

void *reader(void *a) {{
  int i;
  int s = 0;
  rwlock_rdlock(&tablelock);
  for (i = 0; i < 4; i++)
    s = s + table[i];
  rwlock_unlock(&tablelock);
  sum_out = sum_out + s;
  return NULL;
}}

void *writer(void *a) {{
  int i;
  {wlock}
  for (i = 0; i < 4; i++)
    table[i] = table[i] + 1;
  {wunlock}
  return NULL;
}}

int main() {{
  int t1 = thread_create(reader, NULL);
  int t2 = thread_create(reader, NULL);
  int t3 = thread_create(writer, NULL);
  thread_join(t1);
  thread_join(t2);
  thread_join(t3);
  return 0;
}}
"""


class TestRWLockedMode:
    def test_correct_rw_discipline_clean(self):
        source = RW_PROGRAM.format(
            wlock="rwlock_wrlock(&tablelock);",
            wunlock="rwlock_unlock(&tablelock);")
        for seed in range(5):
            run_clean(source, seed=seed)

    def test_write_under_read_hold_reported(self):
        source = RW_PROGRAM.format(
            wlock="rwlock_rdlock(&tablelock);",
            wunlock="rwlock_unlock(&tablelock);")
        checked = check_ok(source)
        flagged = 0
        for seed in range(5):
            result = run_checked(checked, seed=seed)
            flagged += any(r.kind is DiagKind.LOCK_NOT_HELD
                           for r in result.reports)
        assert flagged == 5  # strategy violation on every schedule

    def test_unlocked_writer_reported(self):
        source = RW_PROGRAM.format(wlock="", wunlock="")
        result = run_ok(source, seed=1)
        assert any(r.kind is DiagKind.LOCK_NOT_HELD
                   for r in result.reports)


class TestBarrier:
    def test_barrier_synchronizes_phases(self):
        result = run_clean("""
        barrier phase;
        int racy order[8];
        int racy cursor = 0;

        void *worker(void *a) {
          order[cursor] = 1;
          cursor = cursor + 1;
          barrier_wait(&phase);
          order[cursor] = 2;
          cursor = cursor + 1;
          return NULL;
        }

        int main() {
          barrier_init(&phase, 3);
          int t1 = thread_create(worker, NULL);
          int t2 = thread_create(worker, NULL);
          int t3 = thread_create(worker, NULL);
          thread_join(t1);
          thread_join(t2);
          thread_join(t3);
          int i;
          int ok = 1;
          for (i = 0; i < 3; i++)
            if (order[i] != 1) ok = 0;
          for (i = 3; i < 6; i++)
            if (order[i] != 2) ok = 0;
          printf("phased %d\\n", ok);
          return 0;
        }
        """, seed=2)
        assert result.output == "phased 1\n"

    def test_barrier_reusable_across_generations(self):
        result = run_clean("""
        barrier phase;
        int racy laps = 0;

        void *worker(void *a) {
          int r;
          for (r = 0; r < 3; r++) {
            barrier_wait(&phase);
            laps = laps + 1;
          }
          return NULL;
        }

        int main() {
          barrier_init(&phase, 2);
          int t1 = thread_create(worker, NULL);
          int t2 = thread_create(worker, NULL);
          thread_join(t1);
          thread_join(t2);
          printf("%d\\n", laps > 0);
          return 0;
        }
        """, seed=1)
        assert result.output == "1\n"

    def test_insufficient_parties_deadlocks(self):
        from repro.sharc.checker import check_source
        checked = check_source("""
        barrier phase;
        void *worker(void *a) {
          barrier_wait(&phase);
          return NULL;
        }
        int main() {
          barrier_init(&phase, 3);   // but only 1 thread arrives
          thread_join(thread_create(worker, NULL));
          return 0;
        }
        """)
        assert checked.ok
        result = run_checked(checked, seed=0)
        assert result.deadlock is not None
