"""Tests for ``ShadowMemory.granules`` and the range-batched check APIs
(``chkread_range`` / ``chkwrite_range`` / the ``range_threshold``
delegation), plus the ``recheck`` guard consumed by the static check
eliminator.

The load-bearing property: the range walk is *semantically identical* to
the scalar walk — same conflict, same slow count, same bitmap, ``last``,
cache, and counter effects — so routing a check through either path can
never change a run's reports, step counts, or scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import Loc
from repro.runtime.shadow import GRANULE_SHIFT, ShadowMemory

LOC = Loc("t.c", 1)
G = 1 << GRANULE_SHIFT  # granule size in bytes


class TestGranules:
    def test_zero_size_access_still_touches_one_granule(self):
        # A zero-byte access (empty struct, zero-length memcpy) is
        # checked as if it read one byte: sharing bugs don't vanish
        # because sizeof said 0.
        assert list(ShadowMemory.granules(0x100, 0)) == [0x10]
        assert list(ShadowMemory.granules(0x100, 1)) == [0x10]

    def test_intra_granule_access_is_one_granule(self):
        assert list(ShadowMemory.granules(0x100, G)) == [0x10]
        assert list(ShadowMemory.granules(0x10F, 1)) == [0x10]

    def test_straddling_a_granule_boundary(self):
        # 4 bytes starting 2 before the boundary cover two granules.
        assert list(ShadowMemory.granules(0x10E, 4)) == [0x10, 0x11]

    def test_exact_multi_granule_span(self):
        assert list(ShadowMemory.granules(0x100, 4 * G)) == \
            [0x10, 0x11, 0x12, 0x13]

    def test_one_past_the_span_is_excluded(self):
        assert 0x11 not in ShadowMemory.granules(0x100, G)


class TestRangeAPIs:
    def test_range_degenerates_to_single_granule(self):
        a, b = ShadowMemory(nbytes=1), ShadowMemory(nbytes=1)
        got = a.chkread_range(0x100, 4, 1, "x", LOC)
        want = b.chkread(0x100, 4, 1, "x", LOC)
        assert got == want
        assert a.bits == b.bits

    def test_range_write_sets_writer_bit_on_every_granule(self):
        shadow = ShadowMemory(nbytes=1)
        conflict, slow = shadow.chkwrite_range(0x100, 4 * G, 2, "buf",
                                               LOC)
        assert conflict is None and slow == 4
        assert shadow.bits == {g: (1 << 2) | 1
                               for g in range(0x10, 0x14)}

    def test_range_read_reports_foreign_writer(self):
        shadow = ShadowMemory(nbytes=1)
        shadow.chkwrite(0x120, 4, 2, "buf[2]", Loc("t.c", 9))
        conflict, _ = shadow.chkread_range(0x100, 4 * G, 1, "buf", LOC)
        assert conflict is not None
        assert conflict.tid == 2 and conflict.is_write
        assert conflict.loc.line == 9

    def test_repeat_range_takes_the_cache_fast_path(self):
        shadow = ShadowMemory(nbytes=1)
        shadow.chkread_range(0x100, 4 * G, 1, "buf", LOC)
        walks = shadow.range_calls
        _, slow = shadow.chkread_range(0x100, 4 * G, 1, "buf", LOC)
        assert slow == 0
        assert shadow.range_calls == walks  # cache hit: no walk at all

    def test_scalar_checks_delegate_above_the_threshold(self):
        shadow = ShadowMemory(nbytes=1)
        shadow.range_threshold = 2
        shadow.chkread(0x100, 4 * G, 1, "buf", LOC)
        assert shadow.range_calls == 1
        shadow.chkread(0x200, G, 1, "x", LOC)  # below threshold
        assert shadow.range_calls == 1


class TestRecheck:
    def test_recheck_misses_on_a_cold_cache(self):
        shadow = ShadowMemory(nbytes=1)
        assert not shadow.recheck(0x100, 4, 1, False)

    def test_recheck_hits_after_the_same_check(self):
        shadow = ShadowMemory(nbytes=1)
        shadow.chkread(0x100, 4, 1, "x", LOC)
        updates = shadow.updates
        assert shadow.recheck(0x100, 4, 1, False)
        assert shadow.updates == updates + 1  # same accounting as a hit

    def test_recheck_misses_after_foreign_shadow_mutation(self):
        shadow = ShadowMemory(nbytes=1)
        shadow.chkread(0x100, 4, 1, "x", LOC)
        shadow.chkread(0x200, 4, 2, "y", LOC)  # bumps the version
        assert not shadow.recheck(0x100, 4, 1, False)

    def test_read_cache_does_not_authorize_a_write(self):
        shadow = ShadowMemory(nbytes=1)
        shadow.chkread(0x100, 4, 1, "x", LOC)
        assert not shadow.recheck(0x100, 4, 1, True)
        shadow.chkwrite(0x100, 4, 1, "x", LOC)
        assert shadow.recheck(0x100, 4, 1, True)
        assert shadow.recheck(0x100, 4, 1, False)  # write covers reads


def _key(conflict):
    return (None if conflict is None
            else (conflict.tid, conflict.is_write, conflict.lvalue))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["r", "w"]),
                          st.integers(min_value=1, max_value=7),
                          st.integers(min_value=0, max_value=40),
                          st.integers(min_value=0, max_value=4 * G)),
                max_size=30))
def test_range_walk_equivalent_to_scalar_walk(ops):
    """Property: the same access sequence routed through the range walk
    (threshold 1) and the scalar walk (threshold effectively infinite)
    produces identical conflicts, slow counts, bitmaps, and counters —
    the soundness bedrock of the batching optimisation."""
    ranged = ShadowMemory(nbytes=1)
    ranged.range_threshold = 1
    scalar = ShadowMemory(nbytes=1)
    scalar.range_threshold = 1 << 60
    for kind, tid, slot, size in ops:
        addr = 0x100 + slot * 8  # deliberately granule-unaligned
        check_a = ranged.chkwrite if kind == "w" else ranged.chkread
        check_b = scalar.chkwrite if kind == "w" else scalar.chkread
        conflict_a, slow_a = check_a(addr, size, tid, "x", LOC)
        conflict_b, slow_b = check_b(addr, size, tid, "x", LOC)
        assert _key(conflict_a) == _key(conflict_b)
        assert slow_a == slow_b
    assert ranged.bits == scalar.bits
    assert ranged.updates == scalar.updates
    assert ranged.fastpath_hits == scalar.fastpath_hits
    assert {g: _key(a) for g, a in ranged.last.items()} == \
        {g: _key(a) for g, a in scalar.last.items()}
    assert {g: _key(a) for g, a in ranged.last_writer.items()} == \
        {g: _key(a) for g, a in scalar.last_writer.items()}
