"""Tests for the flat address space and allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InterpError
from repro.runtime.addrspace import AddressSpace, GRANULE


@pytest.fixture
def space():
    return AddressSpace()


class TestAllocation:
    def test_blocks_are_16_byte_aligned(self, space):
        for size in (1, 3, 17, 100):
            addr = space.alloc(size)
            assert addr % GRANULE == 0

    def test_blocks_never_overlap(self, space):
        a = space.alloc(24)
        b = space.alloc(8)
        assert b >= a + 24

    def test_addresses_never_reused(self, space):
        a = space.alloc(16)
        space.free(a)
        b = space.alloc(16)
        assert b != a

    def test_zero_size_gets_storage(self, space):
        addr = space.alloc(0)
        assert space.blocks[addr].size == 1

    @given(st.lists(st.integers(min_value=1, max_value=512),
                    min_size=1, max_size=40))
    def test_distinct_granules_per_block(self, sizes):
        space = AddressSpace()
        granules = set()
        for size in sizes:
            addr = space.alloc(size)
            first = addr >> 4
            # The paper aligns malloc to 16 bytes so objects never share
            # a shadow granule.
            assert first not in granules
            granules.update(range(first, (addr + size - 1 >> 4) + 1))


class TestFree:
    def test_free_marks_block(self, space):
        addr = space.alloc(8)
        block = space.free(addr)
        assert block.freed

    def test_double_free_raises(self, space):
        addr = space.alloc(8)
        space.free(addr)
        with pytest.raises(InterpError, match="double free"):
            space.free(addr)

    def test_free_of_wild_address_raises(self, space):
        with pytest.raises(InterpError):
            space.free(0xDEAD)

    def test_use_after_free_raises(self, space):
        addr = space.alloc(8)
        space.write(addr, 1)
        space.free(addr)
        with pytest.raises(InterpError, match="use after free"):
            space.read(addr)


class TestAccess:
    def test_uninitialized_reads_zero(self, space):
        addr = space.alloc(8)
        assert space.read(addr) == 0

    def test_write_returns_old_value(self, space):
        addr = space.alloc(8)
        assert space.write(addr, 5) == 0
        assert space.write(addr, 9) == 5

    def test_wild_access_raises(self, space):
        with pytest.raises(InterpError, match="wild"):
            space.read(0x99999)

    def test_block_of_interior_pointer(self, space):
        addr = space.alloc(64)
        block = space.block_of(addr + 63)
        assert block is not None and block.start == addr
        assert space.block_of(addr + 64) is None or \
            space.block_of(addr + 64).start != addr

    def test_peek_skips_checks(self, space):
        assert space.peek(0xFFFF) == 0


class TestRanges:
    def test_copy_range_preserves_offsets(self, space):
        src = space.alloc(16)
        dst = space.alloc(16)
        space.write(src + 0, 10)
        space.write(src + 8, 20)
        space.copy_range(dst, src, 16)
        assert space.read(dst + 0) == 10
        assert space.read(dst + 8) == 20

    def test_copy_range_clears_stale_destination(self, space):
        src = space.alloc(8)
        dst = space.alloc(8)
        space.write(dst + 4, 99)
        space.copy_range(dst, src, 8)
        assert space.read(dst + 4) == 0

    def test_copy_range_bounds_checked(self, space):
        src = space.alloc(8)
        dst = space.alloc(4)
        with pytest.raises(InterpError):
            space.copy_range(dst, src, 8)

    def test_set_range(self, space):
        addr = space.alloc(8)
        space.set_range(addr, 7, 8)
        assert all(space.read(addr + i) == 7 for i in range(8))


class TestStrings:
    def test_alloc_and_read_string(self, space):
        addr = space.alloc_c_string("hello")
        assert space.read_c_string(addr) == "hello"

    def test_empty_string(self, space):
        addr = space.alloc_c_string("")
        assert space.read_c_string(addr) == ""

    def test_unterminated_string_raises(self, space):
        addr = space.alloc(4)
        space.set_range(addr, ord("x"), 4)
        with pytest.raises(InterpError):
            space.read_c_string(addr, limit=4)

    @given(st.text(alphabet=st.characters(min_codepoint=1,
                                          max_codepoint=255),
                   max_size=64))
    def test_string_roundtrip(self, text):
        space = AddressSpace()
        addr = space.alloc_c_string(text)
        assert space.read_c_string(addr) == \
            text.encode("latin-1", "replace").decode("latin-1")
