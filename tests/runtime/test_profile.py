"""Tests for the wall-clock profiler (repro.runtime.profile)."""

import time

import pytest

from repro.runtime.profile import Profiler, ProfileReport, profile_source

SOURCE = """
int counter = 0;

void work() {
  int i;
  for (i = 0; i < 50; i = i + 1) {
    counter = counter + 1;
  }
}

int main() {
  work();
  return counter;
}
"""


class TestProfiler:
    def test_phase_records_elapsed_time(self):
        prof = Profiler()
        with prof.phase("alpha"):
            pass
        assert "alpha" in prof.phases
        assert prof.phases["alpha"] >= 0.0

    def test_reentering_a_phase_accumulates(self):
        prof = Profiler()
        with prof.phase("alpha"):
            pass
        once = prof.phases["alpha"]
        with prof.phase("alpha"):
            pass
        assert prof.phases["alpha"] >= once
        assert len(prof.phases) == 1

    def test_phase_recorded_even_on_exception(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            with prof.phase("boom"):
                raise RuntimeError("x")
        assert "boom" in prof.phases

    def test_counters_accumulate(self):
        prof = Profiler()
        prof.count("checks")
        prof.count("checks", 4)
        assert prof.counters["checks"] == 5

    def test_total_and_dict_shape(self):
        prof = Profiler()
        with prof.phase("a"):
            pass
        with prof.phase("b"):
            pass
        assert prof.total_seconds() == pytest.approx(
            prof.phases["a"] + prof.phases["b"])
        shape = prof.as_dict()
        assert set(shape) == {"phases", "inclusive", "counters"}
        assert set(shape["phases"]) == {"a", "b"}

    def test_nested_phases_not_double_counted(self):
        # A phase enclosing another must report only its *self* time:
        # before the fix, total_seconds() counted the inner phase's
        # elapsed time once for itself and again inside the parent.
        prof = Profiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                time.sleep(0.02)
        assert prof.inclusive["outer"] >= prof.inclusive["inner"] >= 0.02
        # outer self-time excludes inner: the sleep is charged once.
        assert prof.phases["outer"] == pytest.approx(
            prof.inclusive["outer"] - prof.inclusive["inner"])
        assert prof.total_seconds() == pytest.approx(
            prof.inclusive["outer"], rel=0.05)

    def test_nested_reentrant_phase_accumulates_self_time(self):
        prof = Profiler()
        with prof.phase("sweep"):
            for _ in range(3):
                with prof.phase("run"):
                    time.sleep(0.005)
        assert prof.inclusive["run"] >= 0.015
        assert prof.total_seconds() == pytest.approx(
            prof.inclusive["sweep"], rel=0.05)

    def test_render_lists_phases_and_counters(self):
        prof = Profiler()
        with prof.phase("parse"):
            pass
        prof.count("granules", 7)
        text = prof.render()
        assert "parse" in text
        assert "granules" in text
        assert "7" in text


class TestProfileReport:
    def test_steps_per_sec_guard_against_zero_wall(self):
        report = ProfileReport(Profiler(), base_steps=100, base_wall=0.0)
        assert report.base_steps_per_sec == 0.0
        assert report.sharc_steps_per_sec == 0.0

    def test_as_dict_schema(self):
        report = ProfileReport(Profiler(), base_steps=10, sharc_steps=12,
                               base_wall=0.5, sharc_wall=1.0, reports=0)
        shape = report.as_dict()
        runs = shape["runs"]
        assert runs["baseline"]["steps"] == 10
        assert runs["baseline"]["steps_per_sec"] == 20
        assert runs["instrumented"]["steps"] == 12
        assert runs["instrumented"]["wall_seconds"] == 1.0
        assert shape["reports"] == 0


class TestProfileSource:
    def test_profiles_the_full_pipeline(self):
        report = profile_source(SOURCE, "prof.c", seed=3)
        assert set(report.profiler.phases) >= {"parse+typecheck",
                                               "baseline", "instrumented"}
        assert report.base_steps > 0
        assert report.sharc_steps >= report.base_steps
        assert report.base_wall > 0.0
        assert report.sharc_wall > 0.0
        assert report.reports == 0
        assert report.checks["read_checks"] >= 0

    def test_render_mentions_throughput(self):
        report = profile_source(SOURCE, "prof.c")
        text = report.render()
        assert "steps/sec" in text
        assert "baseline" in text
        assert "instrumented" in text

    def test_external_profiler_is_reused(self):
        prof = Profiler()
        with prof.phase("read"):
            pass
        report = profile_source(SOURCE, "prof.c", profiler=prof)
        assert report.profiler is prof
        assert "read" in prof.phases
        assert "instrumented" in prof.phases
