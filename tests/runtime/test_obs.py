"""Tests for the observability layer (repro.obs).

Covers the event bus (filtering, sampling, ring bound), the per-granule
access history, both exporters and their validators, and the two
acceptance properties of the tracing design: tracing-off runs are
bit-identical, and every trace the runtime produces is schema-valid.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DiagKind, Loc
from repro.obs.events import (
    CATEGORIES, CAT_CHECK, CAT_CONFLICT, CAT_SCHED, Event, TraceBus,
    TraceConfig, parse_filter,
)
from repro.obs.export import (
    chrome_trace, jsonl_records, read_jsonl, render_summary,
    validate_chrome_trace, validate_jsonl_records, write_chrome_trace,
    write_jsonl,
)
from repro.obs.history import AccessHistory
from repro.runtime.interp import run_checked
from repro.sharc.checker import check_source
from repro.sharc.reports import Access, Report, write_conflict

RACY = """
int counter = 0;

void *bump(void *arg) {
  int i;
  for (i = 0; i < 8; i++) {
    counter = counter + 1;
  }
  return NULL;
}

int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return counter;
}
"""

CLEAN = """
mutex lk;
int locked(lk) counter = 0;

void *bump(void *arg) {
  mutexLock(&lk);
  counter = counter + 1;
  mutexUnlock(&lk);
  return NULL;
}

int main() {
  int t1 = thread_create(bump, NULL);
  thread_join(t1);
  return 0;
}
"""


def _checked(source):
    checked = check_source(source, "obs_test.c")
    assert checked.ok, checked.render_diagnostics()
    return checked


# -- TraceBus ----------------------------------------------------------------


class TestTraceBus:
    def test_emit_uses_clock_and_snapshot_orders(self):
        ticks = iter([5, 9])
        bus = TraceBus(clock=lambda: next(ticks))
        bus.emit(CAT_SCHED, "a", 1)
        bus.emit(CAT_CHECK, "b", 2, dur=3, hit=True)
        events = bus.snapshot()
        assert [e.ts for e in events] == [5, 9]
        assert events[1].dur == 3
        assert events[1].args == {"hit": True}

    def test_explicit_ts_overrides_clock(self):
        bus = TraceBus(clock=lambda: 100)
        bus.emit(CAT_SCHED, "run", 1, dur=7, ts=42)
        assert bus.snapshot()[0].ts == 42

    def test_category_filter_drops_unwanted(self):
        bus = TraceBus(TraceConfig(categories=frozenset({CAT_CHECK})))
        bus.emit(CAT_SCHED, "switch", 1)
        bus.emit(CAT_CHECK, "chkread", 1)
        assert bus.wants(CAT_CHECK) and not bus.wants(CAT_SCHED)
        assert [e.cat for e in bus.snapshot()] == [CAT_CHECK]

    def test_ring_is_bounded_and_counts_drops(self):
        bus = TraceBus(TraceConfig(buffer_size=3))
        for i in range(10):
            bus.emit(CAT_SCHED, "e", 1, ts=i)
        assert len(bus) == 3
        assert [e.ts for e in bus.snapshot()] == [7, 8, 9]
        assert bus.dropped == 7

    def test_sampling_keeps_one_in_n_deterministically(self):
        bus = TraceBus(TraceConfig(sample={CAT_CHECK: 4}))
        for i in range(8):
            bus.emit(CAT_CHECK, "chk", 1, ts=i)
        assert [e.ts for e in bus.snapshot()] == [0, 4]
        assert bus.sampled_out[CAT_CHECK] == 6

    def test_category_counts(self):
        bus = TraceBus()
        bus.emit(CAT_SCHED, "a", 1)
        bus.emit(CAT_SCHED, "b", 1)
        bus.emit(CAT_CONFLICT, "c", 2)
        assert bus.category_counts() == {CAT_SCHED: 2, CAT_CONFLICT: 1}


class TestTraceConfig:
    def test_rejects_unknown_category(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            TraceConfig(categories=frozenset({"bogus"}))

    def test_rejects_bad_buffer_and_sample(self):
        with pytest.raises(ValueError):
            TraceConfig(buffer_size=0)
        with pytest.raises(ValueError):
            TraceConfig(sample={CAT_CHECK: 0})
        with pytest.raises(ValueError):
            TraceConfig(sample={"bogus": 2})


class TestParseFilter:
    def test_parses_and_strips(self):
        assert parse_filter("check, conflict") == frozenset(
            {"check", "conflict"})

    def test_rejects_unknown_and_empty(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            parse_filter("check,turbo")
        with pytest.raises(ValueError, match="empty"):
            parse_filter(" , ")

    def test_every_category_is_parseable(self):
        assert parse_filter(",".join(CATEGORIES)) == frozenset(CATEGORIES)


def test_event_dict_round_trip():
    event = Event(CAT_CHECK, "chkwrite", 3, ts=17, dur=4,
                  args={"hit": False, "lvalue": "x"})
    assert Event.from_dict(event.to_dict()) == event
    bare = Event(CAT_SCHED, "switch", 1, ts=0)
    assert Event.from_dict(bare.to_dict()) == bare


# -- AccessHistory -----------------------------------------------------------


class TestAccessHistory:
    def test_records_newest_first_with_modes(self):
        hist = AccessHistory(depth=4)
        loc = Loc("a.c", 1)
        hist.record(0x100, 4, tid=1, lvalue="x", loc=loc,
                    is_write=False, ts=1)
        hist.record(0x100, 4, tid=2, lvalue="x", loc=loc,
                    is_write=True, ts=2)
        accesses = hist.provenance(0x100, 4)
        assert [(a.tid, a.mode) for a in accesses] == [(2, "w"), (1, "r")]

    def test_depth_bounds_the_ring(self):
        hist = AccessHistory(depth=2)
        loc = Loc("a.c", 1)
        for i in range(5):
            hist.record(0x40, 1, tid=i, lvalue="x", loc=loc,
                        is_write=True, ts=i)
        assert [a.tid for a in hist.provenance(0x40)] == [4, 3]

    def test_spanning_access_deduplicated(self):
        hist = AccessHistory()
        # 32 bytes from 0x100 covers granules 0x10 and 0x11.
        hist.record(0x100, 32, tid=7, lvalue="buf", loc=Loc("a.c", 2),
                    is_write=True, ts=5)
        assert len(hist.recent(0x100, 32)) == 1
        assert hist.granules() == 2

    def test_clear_range_forgets(self):
        hist = AccessHistory()
        hist.record(0x200, 16, tid=1, lvalue="p", loc=Loc("a.c", 3),
                    is_write=True, ts=1)
        hist.clear_range(0x200, 16)
        assert hist.provenance(0x200, 16) == ()
        assert hist.granules() == 0

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            AccessHistory(depth=0)


# -- exporters ---------------------------------------------------------------


def _sample_events():
    return [
        Event(CAT_SCHED, "run", 1, ts=0, dur=10, args={"items": 3}),
        Event(CAT_CHECK, "chkwrite", 1, ts=4, dur=1, args={"hit": True}),
        Event(CAT_CONFLICT, "write conflict", 2, ts=9,
              args={"lvalue": "counter"}),
    ]


class TestChromeTrace:
    def test_valid_and_well_shaped(self):
        payload = chrome_trace(_sample_events(), {1: "main"})
        assert validate_chrome_trace(payload) == []
        by_ph = {}
        for entry in payload["traceEvents"]:
            by_ph.setdefault(entry["ph"], []).append(entry)
        # spans become X slices, conflicts instants, plus M metadata
        assert any(e["name"] == "run" and e["dur"] == 10
                   for e in by_ph["X"])
        assert any(e["name"] == "write conflict" and e["s"] == "t"
                   for e in by_ph["i"])
        names = [e for e in by_ph["M"] if e["name"] == "thread_name"]
        assert {e["args"]["name"] for e in names} == {"main", "thread2"}

    def test_validator_flags_problems(self):
        assert validate_chrome_trace({}) == \
            ["traceEvents missing or not an array"]
        bad = {"traceEvents": [
            {"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0},
            {"ph": "i", "name": "x", "pid": 1, "tid": "one", "ts": -1},
        ]}
        problems = validate_chrome_trace(bad)
        assert any("bad phase" in p for p in problems)
        assert any("needs dur" in p for p in problems)
        assert any("tid" in p for p in problems)
        assert any("ts missing or negative" in p for p in problems)

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), _sample_events(), {1: "main"},
                           meta={"seed": "3"})
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["seed"] == "3"
        assert payload["otherData"]["clock"] == "interpreter-steps"


class TestJsonl:
    def test_records_and_validation(self):
        report = write_conflict(
            0x10, Access(1, "x", Loc("a.c", 1)),
            Access(2, "x", Loc("a.c", 2)))
        records = jsonl_records(_sample_events(), [report], {1: "main"},
                                meta={"file": "a.c"})
        assert validate_jsonl_records(records) == []
        assert records[0]["threads"] == {"1": "main"}
        assert records[0]["events"] == 3
        assert records[0]["reports"] == 1
        assert records[-1]["record"] == "report"

    def test_validator_flags_problems(self):
        assert validate_jsonl_records([]) == ["empty trace"]
        records = [{"record": "header", "kind": "sharc-trace",
                    "version": 1},
                   {"record": "event", "cat": "bogus", "name": "x",
                    "tid": 1, "ts": 0},
                   {"record": "report"},
                   {"record": "mystery"}]
        problems = validate_jsonl_records(records)
        assert any("bad category" in p for p in problems)
        assert any("report missing kind" in p for p in problems)
        assert any("unknown record" in p for p in problems)

    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        report = write_conflict(
            0x10, Access(1, "x", Loc("a.c", 1)),
            Access(2, "x", Loc("a.c", 2)),
            history=(Access(2, "x", Loc("a.c", 2), mode="w"),))
        events = _sample_events()
        write_jsonl(str(path), events, [report], {1: "main", 2: "bump"})
        header, loaded, report_dicts = read_jsonl(str(path))
        assert header["threads"] == {"1": "main", "2": "bump"}
        assert loaded == events
        assert [Report.from_dict(r) for r in report_dicts] == [report]


def test_render_summary_mentions_counts_and_conflicts():
    text = render_summary(_sample_events(), {1: "main"}, limit=2)
    assert "3 events over steps 0..10" in text
    assert "sched=1" in text and "conflict=1" in text
    assert "counter" in text  # the conflict line
    assert "[       0] sched/run" in text
    assert render_summary([]) == "empty trace (0 events)"


# -- acceptance: tracing off is bit-identical --------------------------------


class TestBitIdentical:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_traced_run_equals_untraced_run(self, seed):
        checked = _checked(RACY)
        plain = run_checked(checked, seed=seed, record_trace=True)
        traced = run_checked(checked, seed=seed, record_trace=True,
                             trace=TraceConfig())
        assert plain.stats.steps_total == traced.stats.steps_total
        assert plain.stats.context_switches == \
            traced.stats.context_switches
        assert plain.trace == traced.trace  # identical rng decisions
        # Reports match on everything except the traced run's extra
        # provenance lines.
        stripped = [Report(kind=r.kind, addr=r.addr, who=r.who,
                           last=r.last, detail=r.detail)
                    for r in traced.reports]
        assert list(plain.reports) == stripped

    def test_untraced_run_allocates_no_tracing_state(self):
        checked = _checked(CLEAN)
        result = run_checked(checked, seed=1)
        assert result.clean
        assert result.events is None


# -- acceptance: produced traces are valid and carry provenance --------------


class TestRuntimeTraces:
    def test_traced_run_produces_valid_chrome_and_jsonl(self):
        checked = _checked(RACY)
        result = run_checked(checked, seed=7, trace=TraceConfig())
        assert result.events, "traced run produced no events"
        payload = chrome_trace(result.events, result.thread_names)
        assert validate_chrome_trace(payload) == []
        records = jsonl_records(result.events, result.reports,
                                result.thread_names)
        assert validate_jsonl_records(records) == []
        cats = {e.cat for e in result.events}
        assert {CAT_SCHED, CAT_CHECK, "thread"} <= cats

    def test_conflict_report_carries_history_lines(self):
        checked = _checked(RACY)
        result = None
        for seed in range(20):
            candidate = run_checked(checked, seed=seed,
                                    trace=TraceConfig())
            if candidate.reports:
                result = candidate
                break
        assert result is not None, "no racy schedule in 20 seeds"
        report = result.reports[0]
        assert report.kind in (DiagKind.READ_CONFLICT,
                               DiagKind.WRITE_CONFLICT)
        assert len(report.history) >= 2
        rendered = report.render()
        assert rendered.count(" hist(") >= 2
        assert "[r] " in rendered or "[w] " in rendered

    def test_trace_filter_restricts_categories(self):
        checked = _checked(RACY)
        config = TraceConfig(categories=parse_filter("check,conflict"))
        result = run_checked(checked, seed=7, trace=config)
        assert result.events
        assert {e.cat for e in result.events} <= {CAT_CHECK, CAT_CONFLICT}
