"""Per-check-site cost attribution (repro.obs.sitestats).

The load-bearing property is *exact reconciliation*: the per-site sums
must equal the global ``RunStats`` check counters on every run, under
both execution backends — attribution that drifts from the counters it
claims to explain is worse than none.
"""

import pytest

from repro.obs.sitestats import (
    I_COST, SITE_FIELDS, decode_sites, encode_sites, merge_sites,
    new_counter, reconcile, render_hot_sites, site_id, site_rows,
    totals,
)
from repro.runtime.interp import run_checked
from repro.sharc.checker import check_source

RACY = """
int counter = 0;
void *bump(void *arg) {
  int i;
  for (i = 0; i < 8; i++)
    counter = counter + 1;
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
"""

LOCKED = """
mutex lk;
int locked(lk) counter = 0;
void *bump(void *arg) {
  mutexLock(&lk); counter = counter + 1; mutexUnlock(&lk);
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
"""


def _run(source, filename="t.c", **kwargs):
    checked = check_source(source, filename)
    assert checked.ok, checked.render_diagnostics()
    return run_checked(checked, seed=1, **kwargs)


class TestCounterPlumbing:
    def test_new_counter_matches_field_layout(self):
        assert len(new_counter()) == len(SITE_FIELDS)
        assert set(new_counter()) == {0}

    def test_site_id_format(self):
        assert site_id(("a.c", 4, "buf[i]", "r")) == "a.c:4 r buf[i]"

    def test_encode_decode_roundtrip(self):
        sites = {("a.c", 1, "x", "w"): [1, 2, 3, 4, 5, 6, 7, 8, 9],
                 ("a.c", 2, "y", "r"): [9, 8, 7, 6, 5, 4, 3, 2, 1]}
        assert decode_sites(encode_sites(sites)) == sites

    def test_encode_is_deterministic_and_hashable(self):
        sites = {("b.c", 2, "y", "r"): [1] * 9,
                 ("a.c", 1, "x", "w"): [2] * 9}
        encoded = encode_sites(sites)
        assert encoded == encode_sites(dict(reversed(sites.items())))
        hash(encoded)  # picklable/frozen-dataclass requirement

    def test_merge_accepts_dicts_and_encodings(self):
        key = ("a.c", 1, "x", "w")
        acc = {}
        merge_sites(acc, {key: [1] * 9})
        merge_sites(acc, encode_sites({key: [2] * 9}))
        assert acc == {key: [3] * 9}

    def test_merge_does_not_alias_source_counters(self):
        key = ("a.c", 1, "x", "w")
        src = {key: [1] * 9}
        acc = merge_sites({}, src)
        acc[key][0] += 10
        assert src[key][0] == 1

    def test_rows_sorted_by_cost_then_key(self):
        sites = {("a.c", 1, "x", "w"): [0] * 8 + [5],
                 ("a.c", 2, "y", "r"): [0] * 8 + [9],
                 ("a.c", 3, "z", "r"): [0] * 8 + [5]}
        rows = site_rows(sites)
        assert [r["lvalue"] for r in rows] == ["y", "x", "z"]
        assert site_rows(sites, limit=1)[0]["cost"] == 9

    def test_totals_sum_every_field(self):
        sites = {("a.c", 1, "x", "w"): [1, 2, 3, 4, 5, 6, 7, 8, 9],
                 ("a.c", 2, "y", "r"): [1, 1, 1, 1, 1, 1, 0, 0, 9]}
        got = totals(sites)
        assert got["solo"] == 2 and got["cost"] == 18
        # "checks" counts discharge kinds only (solo..ai), not
        # the miss/conflict/cost bookkeeping fields.
        assert got["checks"] == (1 + 2 + 3 + 4 + 5 + 6) + 6

    def test_render_annotates_source_lines(self):
        sites = {("t.c", 2, "x", "w"): [0, 4, 0, 0, 0, 0, 1, 0, 7]}
        text = render_hot_sites(sites, source="int a;\nx = 1;\n")
        assert "t.c:2 x" in text
        assert "x = 1;" in text
        assert render_hot_sites({}) == "no check sites recorded"


class TestReconciliation:
    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    def test_racy_program_reconciles(self, backend):
        result = _run(RACY, backend=backend)
        assert result.stats.sites, "no sites recorded"
        assert reconcile(result.stats.sites, result.stats) == []

    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    def test_locked_refinement_reconciles(self, backend):
        result = _run(LOCKED, backend=backend)
        assert reconcile(result.stats.sites, result.stats) == []

    def test_sites_identical_across_backends(self):
        a = _run(RACY, backend="interp")
        b = _run(RACY, backend="compiled")
        assert a.stats.sites == b.stats.sites
        assert a.stats.steps_total == b.stats.steps_total

    def test_ablations_shift_kinds_not_totals(self):
        """checkelim off turns elided checks into full walks; the site
        totals must follow and still reconcile."""
        on = _run(RACY, checkelim=True)
        off = _run(RACY, checkelim=False)
        assert reconcile(off.stats.sites, off.stats) == []
        assert totals(off.stats.sites)["elided"] == 0
        assert totals(on.stats.sites)["checks"] == \
            totals(off.stats.sites)["checks"]

    def test_reconcile_reports_drift(self):
        result = _run(RACY)
        sites = {k: list(v) for k, v in result.stats.sites.items()}
        key = next(iter(sites))
        sites[key][1] += 1  # forge one extra full walk
        problems = reconcile(sites, result.stats)
        assert problems and any("full" in p for p in problems)

    @pytest.mark.parametrize("name", ["pfscan", "dillo", "fftw"])
    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    def test_table1_workloads_reconcile(self, name, backend):
        """The acceptance bar: per-site totals reconcile exactly with
        the stats.py counters on the Table 1 workloads, both
        backends."""
        from repro.bench.workloads import get_workload

        workload = get_workload(name)
        checked = check_source(workload.annotated_source, f"{name}.c")
        assert checked.ok
        result = run_checked(checked, seed=workload.seed,
                             world=workload.world_factory(),
                             max_steps=workload.max_steps,
                             backend=backend)
        assert result.stats.sites
        assert reconcile(result.stats.sites, result.stats) == []
        assert totals(result.stats.sites)["cost"] > 0


class TestSweepAggregation:
    def test_explore_merges_sites_across_schedules(self):
        from repro.explore.driver import explore_source

        summary = explore_source(RACY, "racy.c", seeds=3,
                                 policies=("random", "round-robin"))
        assert summary.site_totals
        per_outcome = {}
        for outcome in summary.outcomes:
            merge_sites(per_outcome, outcome.sites)
        assert per_outcome == summary.site_totals
        # every outcome carries the hashable encoding
        assert all(isinstance(o.sites, tuple)
                   for o in summary.outcomes)

    def test_outcome_sites_pickle_across_pool(self):
        import pickle

        from repro.explore.driver import explore_source

        summary = explore_source(RACY, "racy.c", seeds=2,
                                 policies=("random",))
        outcome = summary.outcomes[0]
        assert pickle.loads(pickle.dumps(outcome)) == outcome
        assert outcome.sites[0][1][I_COST] >= 0
