"""Runtime behaviour of sharing casts (Figure 7, Section 4.2.3)."""

import pytest

from tests.conftest import check_ok, run_clean, run_ok
from repro.errors import DiagKind
from repro.runtime.interp import run_checked


class TestNullOut:
    def test_source_is_nulled(self):
        result = run_clean("""
        int main() {
          char *a = malloc(4);
          char private *b = SCAST(char private *, a);
          printf("%d\\n", a == NULL);
          free(b);
          return 0;
        }
        """)
        # (The read of `a` after the cast produces a liveness warning
        # statically — by design — but the value is observably NULL.)
        assert result.output == "1\n"

    def test_cast_returns_the_pointer(self):
        result = run_clean("""
        int main() {
          char *a = malloc(4);
          a[0] = 7;
          char private *b = SCAST(char private *, a);
          printf("%d\\n", b[0]);
          free(b);
          return 0;
        }
        """)
        assert result.output == "7\n"

    def test_null_source_casts_to_null(self):
        result = run_clean("""
        int main() {
          char *a = NULL;
          char private *b = SCAST(char private *, a);
          printf("%d\\n", b == NULL);
          return 0;
        }
        """)
        assert result.output == "1\n"


class TestOneref:
    def test_single_reference_passes(self):
        run_clean("""
        int main() {
          char *a = malloc(4);
          char private *b = SCAST(char private *, a);
          free(b);
          return 0;
        }
        """)

    def test_second_reference_fails(self):
        result = run_ok("""
        char *keep;
        void *w(void *x) { char c = keep[0]; return NULL; }
        int main() {
          int t = thread_create(w, NULL);
          char *a = malloc(4);
          keep = a;
          char private *b = SCAST(char private *, a);
          thread_join(t);
          return 0;
        }
        """, seed=1)
        assert any(r.kind is DiagKind.ONEREF_FAILED
                   for r in result.reports)

    def test_reference_in_struct_field_counted(self):
        result = run_ok("""
        typedef struct holder { char *data; } holder_t;
        holder_t *h;
        void *w(void *x) { holder_t *p = h; return NULL; }
        int main() {
          int t = thread_create(w, NULL);
          h = malloc(sizeof(holder_t));
          char *a = malloc(4);
          h->data = a;
          char private *b = SCAST(char private *, a);
          thread_join(t);
          return 0;
        }
        """, seed=1)
        assert any(r.kind is DiagKind.ONEREF_FAILED
                   for r in result.reports)

    def test_interior_pointer_counts_toward_object(self):
        """An interior pointer (base + offset) is a reference to the
        object, as in Heapsafe-style per-object counting."""
        result = run_ok("""
        int main() {
          char *a = malloc(32);
          char *mid = a + 16;
          char private *b = SCAST(char private *, a);
          mid[0] = 1;
          return 0;
        }
        """)
        assert any(r.kind is DiagKind.ONEREF_FAILED
                   for r in result.reports)

    def test_overwritten_reference_not_counted(self):
        run_clean("""
        int main() {
          char *a = malloc(4);
          char *alias = a;
          alias = NULL;   // the second reference dies
          char private *b = SCAST(char private *, a);
          free(b);
          return 0;
        }
        """)

    def test_frame_exit_releases_references(self):
        """A helper's local copy dies with its frame and must not be
        counted at a later cast."""
        run_clean("""
        char peek_char(char *p) { char local = p[0]; return local; }
        int main() {
          char *a = malloc(4);
          a[0] = 5;
          char c = peek_char(a);
          char private *b = SCAST(char private *, a);
          free(b);
          return 0;
        }
        """)


class TestSetClearing:
    def test_cast_clears_reader_writer_sets(self):
        """After a sharing cast, past accesses no longer constitute
        sharing (the operational scast rule): two threads may touch the
        same buffer in different epochs separated by casts."""
        run_clean("""
        mutex lk;
        cond cv;
        char dynamic * locked(lk) slot = NULL;
        int racy rounds = 0;
        void *w(void *x) {
          char *mine;
          mutexLock(&lk);
          while (slot == NULL)
            condWait(&cv, &lk);
          mine = SCAST(char private *, slot);
          mutexUnlock(&lk);
          mine[0] = mine[0] + 1;   // same bytes another thread wrote
          free(mine);
          rounds = 1;
          return NULL;
        }
        int main() {
          int t = thread_create(w, NULL);
          char *buf = malloc(8);
          buf[0] = 1;
          mutexLock(&lk);
          slot = SCAST(char dynamic *, buf);
          condSignal(&cv);
          mutexUnlock(&lk);
          thread_join(t);
          return 0;
        }
        """, seed=3)

    def test_without_cast_the_same_flow_reports(self):
        """Identical data flow minus the casts: the handoff is a race."""
        result = run_ok("""
        char *slot;
        int racy ready = 0;
        void *w(void *x) {
          while (!ready) thread_yield();
          slot[0] = slot[0] + 1;
          return NULL;
        }
        int main() {
          int t = thread_create(w, NULL);
          char *buf = malloc(8);
          slot = buf;
          buf[0] = 1;       // written while the worker may read
          ready = 1;
          thread_join(t);
          return 0;
        }
        """, seed=5)
        assert result.reports


class TestRcSchemes:
    @pytest.mark.parametrize("scheme", ["lp", "naive"])
    def test_both_schemes_catch_double_reference(self, scheme):
        source = """
        int main() {
          char *a = malloc(4);
          char *alias = a;
          char private *b = SCAST(char private *, a);
          alias[0] = 1;
          return 0;
        }
        """
        checked = check_ok(source)
        result = run_checked(checked, rc_scheme=scheme)
        assert any(r.kind is DiagKind.ONEREF_FAILED
                   for r in result.reports), scheme

    @pytest.mark.parametrize("scheme", ["lp", "naive"])
    def test_both_schemes_pass_clean_transfer(self, scheme):
        source = """
        int main() {
          char *a = malloc(4);
          char private *b = SCAST(char private *, a);
          free(b);
          return 0;
        }
        """
        checked = check_ok(source)
        result = run_checked(checked, rc_scheme=scheme)
        assert not result.reports, scheme
