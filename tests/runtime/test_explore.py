"""Tests for the schedule-exploration engine (repro.explore)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.explore import (
    explore_source, load_artifact, racy_c_program, replay_artifact,
    save_artifact, shrink_failure,
)
from repro.explore.driver import run_schedule, trace_hash
from repro.runtime.interp import run_checked
from repro.runtime.scheduler import ReplayPolicy

from tests.conftest import check_ok

RACY_COUNTER = """
int counter = 0;
void *bump(void *arg) {
  int i;
  for (i = 0; i < 5; i++)
    counter = counter + 1;
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
"""

POLICIES = st.sampled_from(
    ["random", "round-robin", "serial", "pct:3:80", "pb:2"])


class TestScheduleDeterminism:
    """Property (satellite b): same seed + policy => bit-identical
    trace, reports, and step counts — both across fresh runs and under
    replay of the recorded trace."""

    @given(seed=st.integers(0, 10_000), policy=POLICIES)
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_everything(self, seed, policy):
        checked = check_ok(RACY_COUNTER)
        a = run_checked(checked, seed=seed, policy=policy,
                        record_trace=True)
        b = run_checked(checked, seed=seed, policy=policy,
                        record_trace=True)
        assert a.trace == b.trace
        assert a.report_counts == b.report_counts
        assert a.stats.steps_total == b.stats.steps_total
        assert a.stats.accesses_dynamic == b.stats.accesses_dynamic

    @given(seed=st.integers(0, 10_000), policy=POLICIES)
    @settings(max_examples=40, deadline=None)
    def test_trace_replay_is_exact(self, seed, policy):
        checked = check_ok(RACY_COUNTER)
        original = run_checked(checked, seed=seed, policy=policy,
                               record_trace=True)
        replayed = run_checked(checked, seed=0,
                               policy=ReplayPolicy(original.trace),
                               record_trace=True)
        assert replayed.trace == original.trace
        assert replayed.report_counts == original.report_counts
        assert replayed.stats.steps_total == original.stats.steps_total

    def test_different_seeds_explore_different_traces(self):
        checked = check_ok(RACY_COUNTER)
        traces = {tuple(run_checked(checked, seed=s,
                                    record_trace=True).trace)
                  for s in range(10)}
        assert len(traces) > 1


class TestDriver:
    def test_sweep_finds_injected_race(self):
        source, spec = racy_c_program(3)
        summary = explore_source(source, "racy3.c", seeds=40,
                                 policies=("random",),
                                 max_steps=200_000)
        hits = [k for k in summary.first_failures if spec.matches_key(k)]
        assert hits, summary.render()
        # ... and the advertised replay coordinates actually reproduce.
        first = summary.first_failures[hits[0]]
        outcome = run_schedule(source, "racy3.c", first.seed,
                               first.policy)
        assert hits[0] in outcome.report_keys

    def test_serial_never_sees_the_race(self):
        source, spec = racy_c_program(3)
        summary = explore_source(source, "racy3.c", seeds=5,
                                 policies=("serial",),
                                 max_steps=200_000)
        assert not any(spec.matches_key(k)
                       for k in summary.first_failures)
        # Deterministic policy: every seed walks the same trace.
        assert summary.distinct_traces == 1

    def test_coverage_accounting(self):
        summary = explore_source(RACY_COUNTER, seeds=10,
                                 policies=("random", "serial"))
        assert summary.schedules == 20
        assert summary.per_policy["serial"]["schedules"] == 10
        assert 1 <= summary.distinct_traces <= 20
        assert summary.races_per_1k == pytest.approx(
            1000.0 * len(summary.failures) / 20)
        data = summary.as_dict()
        assert data["schedules"] == 20
        assert set(data["per_policy"]) == {"random", "serial"}

    def test_jobs_parallel_matches_inline(self):
        source, _ = racy_c_program(5)
        kwargs = dict(seeds=6, policies=("random", "pb"),
                      max_steps=200_000)
        inline = explore_source(source, "racy5.c", jobs=1, **kwargs)
        fanned = explore_source(source, "racy5.c", jobs=2, **kwargs)
        key = lambda o: (o.policy, o.seed)
        assert sorted(inline.outcomes, key=key) == \
            sorted(fanned.outcomes, key=key)

    def test_pct_horizon_resolved_to_program_length(self):
        summary = explore_source(RACY_COUNTER, seeds=2,
                                 policies=("pct",))
        (resolved,) = summary.policies
        parts = resolved.split(":")
        assert parts[0] == "pct" and len(parts) == 3
        # replayable verbatim: the resolved spec is a valid policy
        run_checked(check_ok(RACY_COUNTER), seed=0, policy=resolved)

    def test_trace_hash_distinguishes(self):
        assert trace_hash([(1, 2), (2, 3)]) == trace_hash([(1, 2), (2, 3)])
        assert trace_hash([(1, 2), (2, 3)]) != trace_hash([(1, 2), (2, 4)])
        assert trace_hash([(1, 2)]) != trace_hash([(1, 21)])


class TestShrink:
    def _failing_outcome(self, source, filename, spec=None, seeds=40):
        summary = explore_source(source, filename, seeds=seeds,
                                 policies=("random",),
                                 max_steps=200_000)
        if spec is None:
            assert summary.first_failure is not None
            return summary.first_failure, None
        for key, outcome in sorted(summary.first_failures.items()):
            if spec.matches_key(key):
                return outcome, key
        pytest.fail("sweep did not find the injected race")

    def test_shrunk_schedule_reproduces_with_fewer_switches(self):
        """Property (satellite b): the shrunk schedule reproduces the
        original report with <= the original number of context
        switches."""
        source, spec = racy_c_program(3)
        outcome, key = self._failing_outcome(source, "racy3.c", spec)
        result = shrink_failure(source, "racy3.c", seed=outcome.seed,
                                policy=outcome.policy,
                                target_keys=[key])
        assert result.switches <= result.original_switches
        checked = check_ok(source, "racy3.c")
        replayed = run_checked(checked, seed=0,
                               policy=ReplayPolicy(result.trace),
                               shadow_bytes=2, record_trace=True)
        assert key in replayed.report_counts

    def test_shrink_is_deterministic(self):
        source, spec = racy_c_program(3)
        outcome, key = self._failing_outcome(source, "racy3.c", spec)
        a = shrink_failure(source, "racy3.c", seed=outcome.seed,
                           policy=outcome.policy, target_keys=[key])
        b = shrink_failure(source, "racy3.c", seed=outcome.seed,
                           policy=outcome.policy, target_keys=[key])
        assert a.trace == b.trace
        assert a.replays == b.replays

    def test_shrink_refuses_passing_schedule(self):
        source, _ = racy_c_program(3)
        with pytest.raises(ValueError, match="does not fail"):
            shrink_failure(source, "racy3.c", seed=0, policy="serial")

    def test_artifact_round_trip(self, tmp_path):
        source, spec = racy_c_program(3)
        outcome, key = self._failing_outcome(source, "racy3.c", spec)
        result = shrink_failure(source, "racy3.c", seed=outcome.seed,
                                policy=outcome.policy,
                                target_keys=[key])
        path = str(tmp_path / "schedule.json")
        save_artifact(result, path)
        payload = load_artifact(path)
        assert payload["report_keys"] == [key]
        replayed = replay_artifact(payload)
        assert key in replayed.report_counts
        again = replay_artifact(payload)
        assert replayed.report_counts == again.report_counts
        assert replayed.trace == again.trace

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ValueError, match="not a schedule artifact"):
            load_artifact(str(path))


class TestDifferential:
    """Satellite d: the racy generator's output through the SharC
    checker AND the Eraser baseline under the same seeds."""

    def test_injected_race_flagged_by_at_least_one_checker(self):
        from repro.explore import differential_sweep

        source, spec = racy_c_program(11, kind="lock-elision")
        summary = differential_sweep(source, "racy11.c", seeds=25,
                                     policies=("random",),
                                     max_steps=200_000)
        sharc_hits = [k for k in summary.sharc.first_failures
                      if spec.matches_key(k)]
        eraser_hits = [k for k in summary.eraser.first_failures
                       if spec.matches_key(k)]
        assert sharc_hits or eraser_hits

    def test_disagreements_are_replayable(self):
        from repro.explore import differential_sweep

        source, _ = racy_c_program(11, kind="lock-elision")
        summary = differential_sweep(source, "racy11.c", seeds=8,
                                     policies=("random",),
                                     max_steps=200_000)
        assert summary.schedules == 8
        assert summary.agreeing + len(summary.disagreements) == 8
        for d in summary.disagreements[:3]:
            sharc = run_schedule(source, "racy11.c", d.seed, d.policy,
                                 checker="sharc")
            eraser = run_schedule(source, "racy11.c", d.seed, d.policy,
                                  checker="eraser")
            assert sharc.report_keys == d.sharc_keys
            assert eraser.report_keys == d.eraser_keys

    def test_render_and_dict(self):
        from repro.explore import differential_sweep

        source, _ = racy_c_program(11, kind="lock-elision")
        summary = differential_sweep(source, "racy11.c", seeds=3,
                                     policies=("random",),
                                     max_steps=200_000)
        text = summary.render()
        assert "differential sweep" in text
        data = summary.as_dict()
        assert data["schedules"] == 3
        assert len(data["disagreements"]) == len(summary.disagreements)


class TestDifferentialStatic:
    """The static column: the compile-time lockset verdict scored
    against each dynamic checker, schedule by schedule."""

    def _sweep(self, seeds=4):
        from repro.explore import differential_sweep

        source, spec = racy_c_program(3, kind="write-write")
        return spec, differential_sweep(source, "racy3.c", seeds=seeds,
                                        policies=("random",),
                                        max_steps=200_000)

    def test_static_keys_present_for_seeded_race(self):
        spec, summary = self._sweep()
        assert any(spec.global_name in k for k in summary.static_keys)

    def test_agreement_counts_cover_every_schedule(self):
        _, summary = self._sweep(seeds=5)
        for agr in (summary.static_vs_sharc, summary.static_vs_eraser):
            assert agr is not None
            assert agr.schedules == 5
            assert (agr.agreeing + agr.static_only
                    + agr.dynamic_only) == 5

    def test_as_dict_includes_static_column(self):
        _, summary = self._sweep()
        data = summary.as_dict()
        static = data["static"]
        assert static["keys"] == list(summary.static_keys)
        assert static["vs_sharc"]["checker"] == "sharc"
        assert static["vs_eraser"]["checker"] == "eraser"

    def test_static_agreement_round_trips(self):
        from repro.explore.differential import StaticAgreement

        _, summary = self._sweep()
        for agr in (summary.static_vs_sharc, summary.static_vs_eraser):
            again = StaticAgreement.from_dict(agr.as_dict())
            assert again == agr

    def test_score_classification(self):
        from repro.explore.differential import StaticAgreement

        class Outcome:
            def __init__(self, keys):
                self.report_keys = keys

        outcomes = [Outcome(("k",)), Outcome(()), Outcome(("k", "j"))]
        flagged = StaticAgreement.score("sharc", True, outcomes)
        assert (flagged.agreeing, flagged.static_only,
                flagged.dynamic_only) == (2, 1, 0)
        clean = StaticAgreement.score("sharc", False, outcomes)
        assert (clean.agreeing, clean.static_only,
                clean.dynamic_only) == (1, 0, 2)

    def test_render_mentions_static_column(self):
        _, summary = self._sweep()
        text = summary.render()
        assert "compile-time race(s)" in text
        assert "vs sharc" in text
        assert "vs eraser" in text

    def test_metrics_registry_accumulates_static(self):
        from repro.obs.metrics import MetricsRegistry, validate_metrics

        _, summary = self._sweep()
        registry = MetricsRegistry()
        registry.record_sweep(summary.sharc)
        registry.record_sweep(summary.eraser)
        registry.record_differential(summary)
        payload = registry.as_dict()
        assert validate_metrics(payload) == []
        static = payload["static"]
        assert static["races"] == len(summary.static_keys)
        assert set(static["agreement"]) == {"sharc", "eraser"}
        agr = static["agreement"]["sharc"]
        assert (agr["agreeing"] + agr["static_only"]
                + agr["dynamic_only"]) == summary.schedules
        assert "static races:" in registry.render()


class TestDifferentialAbsint:
    """The AI precision column: each compile-time race carries the
    abstract interpreter's interval verdict, and the column flows into
    the metrics payload under sharc-metrics/5."""

    def _sweep(self, absint=True):
        from repro.explore import differential_sweep

        source, _ = racy_c_program(3, kind="write-write")
        return differential_sweep(source, "racy3.c", seeds=2,
                                  policies=("random",),
                                  max_steps=200_000, absint=absint)

    def test_verdicts_cover_the_static_races(self):
        summary = self._sweep()
        assert summary.absint_rounds >= 1
        assert (summary.absint_refuted + summary.absint_confirmed
                == len(summary.absint_verdicts))
        data = summary.as_dict()["absint"]
        assert data["rounds"] == summary.absint_rounds
        assert data["refuted"] == summary.absint_refuted
        assert data["confirmed"] == summary.absint_confirmed
        keys = set(summary.static_keys)
        assert data["verdicts"], "seeded race should carry a verdict"
        for v in data["verdicts"]:
            assert f"static-race {v['location']}@{v['line']}" in keys
            assert v["verdict"] in ("interval-refuted",
                                    "interval-confirmed")

    def test_ablation_keeps_the_static_column(self):
        """absint=False ablates the *runtime* discharges only; the
        precision column is a static artifact and is computed either
        way (the sweep's purpose is measuring it)."""
        on = self._sweep(absint=True)
        off = self._sweep(absint=False)
        assert off.absint_verdicts == on.absint_verdicts
        assert off.absint_rounds == on.absint_rounds

    def test_column_flows_into_metrics(self):
        from repro.obs.metrics import (METRICS_SCHEMA, MetricsRegistry,
                                       validate_metrics)

        summary = self._sweep()
        registry = MetricsRegistry()
        registry.record_sweep(summary.sharc)
        registry.record_sweep(summary.eraser)
        registry.record_differential(summary)
        payload = registry.as_dict()
        assert payload["schema"] == METRICS_SCHEMA == "sharc-metrics/5"
        assert validate_metrics(payload) == []
        ai = payload["absint"]
        assert ai["refuted"] == summary.absint_refuted
        assert ai["confirmed"] == summary.absint_confirmed
        assert [v["verdict"] for v in ai["verdicts"]] == \
            [v["verdict"] for v in summary.absint_verdicts]


class TestDisagreementCoords:
    def test_replay_coords_multi_digit_seeds(self):
        from repro.explore.differential import Disagreement

        d = Disagreement(seed=1234, policy="pct",
                         sharc_keys=("a",), eraser_keys=())
        assert d.replay_coords() == "seed=1234 policy=pct"
        d2 = Disagreement(seed=40567, policy="round-robin",
                          sharc_keys=(), eraser_keys=("b",))
        assert d2.replay_coords() == "seed=40567 policy=round-robin"

    def test_only_keys_are_set_differences(self):
        from repro.explore.differential import Disagreement

        d = Disagreement(seed=10, policy="random",
                         sharc_keys=("a", "b"), eraser_keys=("b", "c"))
        assert d.sharc_only == ("a",)
        assert d.eraser_only == ("c",)


class TestWorkloadExploration:
    def test_explore_workload_runs(self):
        from repro.explore import explore_workload

        summary = explore_workload("pbzip2", seeds=2,
                                   policies=("random",))
        assert summary.schedules == 2
        assert summary.filename == "pbzip2.c"


class _FlakyWorld:
    """World factory that blows up on every second construction —
    deterministic in a serial sweep, so exactly half the schedules
    crash inside ``run_schedule`` before the program even starts."""

    def __init__(self):
        self.calls = 0

    def __call__(self):
        from repro.runtime.world import World

        self.calls += 1
        if self.calls % 2 == 0:
            raise RuntimeError("world construction failed")
        return World()


class TestSweepCrashTolerance:
    """Regression: one crashing schedule used to abort the whole sweep
    (``pool.imap`` re-raises worker exceptions in the parent), throwing
    away every other schedule's result.  Crashes are now error-tagged
    outcomes that stay out of the coverage metrics."""

    def test_crashing_schedules_do_not_abort_the_sweep(self):
        summary = explore_source(RACY_COUNTER, "racy.c", seeds=6,
                                 policies=("round-robin",),
                                 world_factory=_FlakyWorld())
        assert summary.schedules == 6
        assert len(summary.crashes) == 3
        assert not summary.interrupted
        # The surviving half still ran and was measured normally.
        healthy = [o for o in summary.outcomes if o.trace_hash]
        assert len(healthy) == 3
        assert all(o.steps > 0 for o in healthy)

    def test_crash_outcomes_are_tagged_not_counted_as_coverage(self):
        summary = explore_source(RACY_COUNTER, "racy.c", seeds=4,
                                 policies=("round-robin",),
                                 world_factory=_FlakyWorld())
        crash = summary.crashes[0]
        assert crash.trace_hash == ""
        assert "RuntimeError" in crash.error
        assert crash.replay_coords()  # replayable coordinates survive
        # Empty hashes never count as distinct schedule-space points.
        assert "" not in summary.trace_hashes
        bucket = summary.per_policy["round-robin"]
        assert bucket["crashes"] == 2
        assert bucket["schedules"] == 4

    def test_crashes_surface_in_dict_and_rendering(self):
        summary = explore_source(RACY_COUNTER, "racy.c", seeds=2,
                                 policies=("round-robin",),
                                 world_factory=_FlakyWorld())
        payload = summary.as_dict()
        assert payload["crashed_schedules"] == 1
        assert payload["crashes"][0]["error"].startswith("RuntimeError")
        assert payload["interrupted"] is False
        assert "crashed schedules: 1" in summary.render()

    def test_clean_sweep_reports_no_crashes(self):
        summary = explore_source(RACY_COUNTER, "racy.c", seeds=3,
                                 policies=("round-robin",))
        assert summary.crashes == []
        assert summary.as_dict()["crashed_schedules"] == 0
        assert "crashed schedules" not in summary.render()

    def test_crash_outcomes_carry_the_exception_repr(self):
        summary = explore_source(RACY_COUNTER, "racy.c", seeds=4,
                                 policies=("round-robin",),
                                 world_factory=_FlakyWorld())
        for crash in summary.crashes:
            assert crash.error == \
                "RuntimeError: world construction failed"
        payload = summary.as_dict()
        assert [c["error"] for c in payload["crashes"]] == \
            ["RuntimeError: world construction failed"] * 2

    def test_completed_schedules_excludes_crashes(self):
        summary = explore_source(RACY_COUNTER, "racy.c", seeds=6,
                                 policies=("round-robin",),
                                 world_factory=_FlakyWorld())
        assert summary.schedules == 6
        assert summary.completed_schedules == 3
        assert summary.as_dict()["completed_schedules"] == 3

    def test_races_per_1k_uses_the_crash_adjusted_denominator(self):
        """With _FlakyWorld, every *surviving* round-robin schedule of
        the racy counter fails — so the rate must be 1000/1k exactly.
        Counting the 3 crashed schedules in the denominator would dilute
        it to 500/1k, understating the observed race rate."""
        summary = explore_source(RACY_COUNTER, "racy.c", seeds=6,
                                 policies=("round-robin",),
                                 world_factory=_FlakyWorld())
        assert len(summary.failures) == 3
        assert summary.races_per_1k == pytest.approx(1000.0)
        assert summary.as_dict()["races_per_1k"] == \
            pytest.approx(1000.0)

    def test_all_crashing_sweep_has_zero_rate_not_a_crash(self):
        """completed_schedules == 0 must not divide by zero."""

        class _AlwaysBroken:
            def __call__(self):
                raise RuntimeError("no world today")

        summary = explore_source(RACY_COUNTER, "racy.c", seeds=3,
                                 policies=("round-robin",),
                                 world_factory=_AlwaysBroken())
        assert summary.completed_schedules == 0
        assert summary.races_per_1k == 0.0
        assert summary.distinct_traces == 0

    def test_crashes_stay_out_of_coverage_denominators(self):
        flaky = explore_source(RACY_COUNTER, "racy.c", seeds=6,
                               policies=("round-robin",),
                               world_factory=_FlakyWorld())
        clean = explore_source(RACY_COUNTER, "racy.c", seeds=3,
                               policies=("round-robin",))
        # The 3 surviving schedules measure exactly what a clean 3-seed
        # sweep measures: crashes contribute nothing to coverage.
        assert flaky.distinct_traces == clean.distinct_traces
        assert flaky.races_per_1k == clean.races_per_1k


class TestArrivalOrderInvariance:
    """Satellite: imap_unordered fan-out may deliver outcomes in any
    order; the folded summary must not depend on it."""

    def _outcomes(self, policies=("round-robin", "random"), seeds=6):
        outcomes = []
        for policy in policies:
            for seed in range(seeds):
                outcomes.append(run_schedule(
                    RACY_COUNTER, "racy.c", seed, policy, "sharc",
                    2000, 8, None, 2))
        return outcomes

    @staticmethod
    def _fold(outcomes, policies):
        from repro.explore.driver import ExplorationSummary

        summary = ExplorationSummary(filename="racy.c",
                                     checker="sharc",
                                     policies=tuple(policies))
        for outcome in outcomes:
            summary.add(outcome)
        payload = summary.as_dict()
        payload.pop("profile", None)  # the one wall-clock field
        return payload

    @given(shuffle=st.randoms(use_true_random=False))
    @settings(max_examples=15, deadline=None)
    def test_shuffled_arrival_same_summary(self, shuffle):
        policies = ("round-robin", "random")
        outcomes = self._outcomes(policies)
        baseline = self._fold(outcomes, policies)
        shuffled = list(outcomes)
        shuffle.shuffle(shuffled)
        assert self._fold(shuffled, policies) == baseline


class TestOutcomePayloadSize:
    """Satellite: collect_sites=False drops per-outcome site maps so
    flat-sweep IPC ships small tuples — guarded by a pickle-size
    regression bound."""

    def test_collect_sites_false_empties_sites(self):
        lean = run_schedule(RACY_COUNTER, "racy.c", 0, "round-robin",
                            collect_sites=False)
        full = run_schedule(RACY_COUNTER, "racy.c", 0, "round-robin",
                            collect_sites=True)
        assert lean.sites == ()
        assert full.sites
        # everything else is identical — sites are observational
        assert lean.trace_hash == full.trace_hash
        assert lean.reports == full.reports
        assert lean.steps == full.steps

    def test_lean_outcome_pickle_stays_small(self):
        import pickle

        lean = run_schedule(RACY_COUNTER, "racy.c", 0, "random",
                            collect_sites=False)
        full = run_schedule(RACY_COUNTER, "racy.c", 0, "random",
                            collect_sites=True)
        lean_size = len(pickle.dumps(lean))
        full_size = len(pickle.dumps(full))
        assert lean_size < full_size
        # regression bound: a lean outcome is a fixed-size record; give
        # it generous headroom but fail on reintroduced payload bloat
        assert lean_size < 1024


class TestHorizonProbeCache:
    """Satellite: the PCT horizon probe (one serial run) happens once
    per (source, checker, limits) per process, not once per sweep."""

    def test_probe_runs_once_across_repeated_resolution(self, monkeypatch):
        from repro.explore import driver
        from repro.runtime import interp

        monkeypatch.setattr(driver, "_HORIZON_CACHE", {})
        calls = []
        real = interp.run_checked

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(interp, "run_checked", counting)
        args = (("pct", "pct:2"), RACY_COUNTER, "racy.c", "sharc",
                2000, 8, None, 2)
        first = driver._resolve_policies(*args)
        assert len(calls) == 1
        second = driver._resolve_policies(*args)
        assert len(calls) == 1  # cache hit: no second probe
        assert first == second
        assert all(spec.count(":") == 2 for spec in first)

    def test_explicit_horizons_skip_the_probe(self, monkeypatch):
        from repro.explore import driver
        from repro.runtime import interp

        monkeypatch.setattr(driver, "_HORIZON_CACHE", {})

        def boom(*args, **kwargs):
            raise AssertionError("probe must not run")

        monkeypatch.setattr(interp, "run_checked", boom)
        resolved = driver._resolve_policies(
            ("random", "pct:3:400", "pb:2"), RACY_COUNTER, "racy.c",
            "sharc", 2000, 8, None, 2)
        assert resolved == ("random", "pct:3:400", "pb:2")
