"""Tests for the deterministic thread scheduler."""

import pytest

from repro.runtime.scheduler import (
    DeadlockError, Scheduler, ThreadState,
)


def counting_gen(n):
    for _ in range(n):
        yield 1


class TestLifecycle:
    def test_spawn_assigns_increasing_tids(self):
        sched = Scheduler()
        a = sched.spawn(counting_gen(1), "a")
        b = sched.spawn(counting_gen(1), "b")
        assert (a.tid, b.tid) == (1, 2)

    def test_finish(self):
        sched = Scheduler()
        t = sched.spawn(counting_gen(1))
        sched.finish(t, 42)
        assert t.state is ThreadState.DONE
        assert t.result == 42
        assert not sched.runnable()

    def test_fail(self):
        sched = Scheduler()
        t = sched.spawn(counting_gen(1))
        sched.fail(t, RuntimeError("boom"))
        assert t.state is ThreadState.FAILED


class TestBlocking:
    def test_blocked_thread_not_runnable(self):
        sched = Scheduler()
        t = sched.spawn(counting_gen(3))
        sched.block(t, lambda: False, "never")
        assert t not in sched.runnable()

    def test_ready_predicate_wakes(self):
        sched = Scheduler()
        t = sched.spawn(counting_gen(3))
        flag = []
        sched.block(t, lambda: bool(flag), "flag")
        assert sched.runnable() == []
        flag.append(1)
        assert sched.runnable() == [t]
        assert t.state is ThreadState.RUNNABLE

    def test_deadlock_detected(self):
        sched = Scheduler()
        t = sched.spawn(counting_gen(3))
        sched.block(t, lambda: False, "stuck")
        with pytest.raises(DeadlockError, match="stuck"):
            sched.pick()

    def test_all_done_returns_none(self):
        sched = Scheduler()
        t = sched.spawn(counting_gen(1))
        sched.finish(t, None)
        assert sched.pick() == (None, 0)


class TestPolicies:
    def test_random_is_seed_deterministic(self):
        def picks(seed):
            sched = Scheduler(seed=seed)
            threads = [sched.spawn(counting_gen(100), f"t{i}")
                       for i in range(3)]
            return [sched.pick()[0].tid for _ in range(20)]
        assert picks(7) == picks(7)
        assert picks(7) != picks(8)  # overwhelmingly likely

    def test_round_robin_cycles(self):
        sched = Scheduler(policy="round-robin")
        for i in range(3):
            sched.spawn(counting_gen(100), f"t{i}")
        seen = {sched.pick()[0].tid for _ in range(9)}
        assert seen == {1, 2, 3}

    def test_serial_runs_first_runnable(self):
        sched = Scheduler(policy="serial")
        sched.spawn(counting_gen(10), "a")
        sched.spawn(counting_gen(10), "b")
        thread, burst = sched.pick()
        assert thread.tid == 1
        assert burst > 1000

    def test_burst_bounded(self):
        sched = Scheduler(seed=1, max_burst=4)
        sched.spawn(counting_gen(100))
        for _ in range(10):
            _, burst = sched.pick()
            assert 1 <= burst <= 4
