"""Tests for the deterministic thread scheduler."""

import pytest

from repro.runtime.scheduler import (
    DeadlockError, Scheduler, ThreadState,
)


def counting_gen(n):
    for _ in range(n):
        yield 1


class TestLifecycle:
    def test_spawn_assigns_increasing_tids(self):
        sched = Scheduler()
        a = sched.spawn(counting_gen(1), "a")
        b = sched.spawn(counting_gen(1), "b")
        assert (a.tid, b.tid) == (1, 2)

    def test_finish(self):
        sched = Scheduler()
        t = sched.spawn(counting_gen(1))
        sched.finish(t, 42)
        assert t.state is ThreadState.DONE
        assert t.result == 42
        assert not sched.runnable()

    def test_fail(self):
        sched = Scheduler()
        t = sched.spawn(counting_gen(1))
        sched.fail(t, RuntimeError("boom"))
        assert t.state is ThreadState.FAILED


class TestBlocking:
    def test_blocked_thread_not_runnable(self):
        sched = Scheduler()
        t = sched.spawn(counting_gen(3))
        sched.block(t, lambda: False, "never")
        assert t not in sched.runnable()

    def test_ready_predicate_wakes(self):
        sched = Scheduler()
        t = sched.spawn(counting_gen(3))
        flag = []
        sched.block(t, lambda: bool(flag), "flag")
        assert sched.runnable() == []
        flag.append(1)
        assert sched.runnable() == [t]
        assert t.state is ThreadState.RUNNABLE

    def test_deadlock_detected(self):
        sched = Scheduler()
        t = sched.spawn(counting_gen(3))
        sched.block(t, lambda: False, "stuck")
        with pytest.raises(DeadlockError, match="stuck"):
            sched.pick()

    def test_all_done_returns_none(self):
        sched = Scheduler()
        t = sched.spawn(counting_gen(1))
        sched.finish(t, None)
        assert sched.pick() == (None, 0)


class TestPolicies:
    def test_random_is_seed_deterministic(self):
        def picks(seed):
            sched = Scheduler(seed=seed)
            threads = [sched.spawn(counting_gen(100), f"t{i}")
                       for i in range(3)]
            return [sched.pick()[0].tid for _ in range(20)]
        assert picks(7) == picks(7)
        assert picks(7) != picks(8)  # overwhelmingly likely

    def test_round_robin_cycles(self):
        sched = Scheduler(policy="round-robin")
        for i in range(3):
            sched.spawn(counting_gen(100), f"t{i}")
        seen = {sched.pick()[0].tid for _ in range(9)}
        assert seen == {1, 2, 3}

    def test_serial_runs_first_runnable(self):
        sched = Scheduler(policy="serial")
        sched.spawn(counting_gen(10), "a")
        sched.spawn(counting_gen(10), "b")
        thread, burst = sched.pick()
        assert thread.tid == 1
        assert burst > 1000

    def test_burst_bounded(self):
        sched = Scheduler(seed=1, max_burst=4)
        sched.spawn(counting_gen(100))
        for _ in range(10):
            _, burst = sched.pick()
            assert 1 <= burst <= 4


class TestRoundRobinRegression:
    """The old round-robin kept an *index* into the runnable list and
    advanced it before use: the very first pick returned
    ``candidates[1]``, and the index drifted whenever the runnable set
    changed size, which could starve a thread indefinitely."""

    def test_first_pick_is_lowest_tid(self):
        # Fails on the old index-based implementation (it picked t2).
        sched = Scheduler(policy="round-robin")
        for i in range(3):
            sched.spawn(counting_gen(100), f"t{i}")
        assert sched.pick()[0].tid == 1

    def test_no_starvation_when_runnable_set_shrinks(self):
        # t1 blocks after every run; under the drifting index this
        # two-then-one membership oscillation let a thread be skipped on
        # every single pick.  Keying on the last-run tid guarantees every
        # runnable thread is scheduled within one full cycle.
        sched = Scheduler(policy="round-robin")
        t1 = sched.spawn(counting_gen(1000), "t1")
        sched.spawn(counting_gen(1000), "t2")
        sched.spawn(counting_gen(1000), "t3")
        ran = []
        woken = []
        for _ in range(12):
            thread, _ = sched.pick()
            ran.append(thread.tid)
            if woken:
                woken.clear()
            if thread is t1:
                sched.block(t1, lambda: not woken, "oscillate")
                woken.append(1)
        for tid in (1, 2, 3):
            assert tid in ran, f"t{tid} was starved: {ran}"
        # every consecutive window of 3 picks covers all live threads
        gaps = [ran.index(tid) for tid in (1, 2, 3)]
        assert max(gaps) < 3

    def test_wraps_after_highest_tid(self):
        sched = Scheduler(policy="round-robin")
        for i in range(3):
            sched.spawn(counting_gen(100), f"t{i}")
        tids = [sched.pick()[0].tid for _ in range(6)]
        assert tids == [1, 2, 3, 1, 2, 3]


class TestPCTPolicy:
    def _tids(self, seed, depth=3, horizon=60, picks=12):
        sched = Scheduler(seed=seed, policy=f"pct:{depth}:{horizon}")
        for i in range(3):
            sched.spawn(counting_gen(100), f"t{i}")
        return [sched.pick()[0].tid for _ in range(picks)]

    def test_deterministic_per_seed(self):
        assert self._tids(5) == self._tids(5)

    def test_seed_varies_priority_order(self):
        runs = {tuple(self._tids(seed)) for seed in range(12)}
        assert len(runs) > 1

    def test_runs_highest_priority_thread(self):
        sched = Scheduler(seed=3, policy="pct:0:100")
        threads = [sched.spawn(counting_gen(100), f"t{i}")
                   for i in range(3)]
        pol = sched._policy
        best = max(threads, key=lambda t: pol._priorities[t.tid])
        # With depth 0 there are no change points: the same
        # highest-priority thread wins every pick.
        for _ in range(5):
            assert sched.pick()[0] is best

    def test_change_point_demotes(self):
        sched = Scheduler(seed=3, policy="pct:1:4")
        for i in range(2):
            sched.spawn(counting_gen(100), f"t{i}")
        first, _ = sched.pick()
        # Cross the single change point: the running thread is demoted
        # below everyone, so the *other* thread runs next.
        sched.note_ran(first, 10)
        second, _ = sched.pick()
        assert second is not first

    def test_spec_parsing(self):
        from repro.runtime.scheduler import make_policy

        p = make_policy("pct:4:800")
        assert (p.depth, p.horizon) == (4, 800)
        assert p.name == "pct:4:800"
        assert make_policy("pct:4").horizon == 4000
        with pytest.raises(ValueError):
            make_policy("pct:1:2:3")
        with pytest.raises(ValueError):
            make_policy("pct:x")
        with pytest.raises(ValueError):
            make_policy("no-such-policy")


class TestPreemptionBoundPolicy:
    def _trace(self, seed, bound=2):
        sched = Scheduler(seed=seed, policy=f"pb:{bound}",
                          record_trace=True)
        threads = [sched.spawn(counting_gen(30), f"t{i}")
                   for i in range(3)]
        while True:
            thread, burst = sched.pick()
            if thread is None:
                break
            ran = 0
            for _ in range(burst):
                try:
                    next(thread.gen)
                    ran += 1
                except StopIteration:
                    ran += 1
                    sched.finish(thread, None)
                    break
            sched.note_ran(thread, ran)
        return list(sched.trace)

    def test_zero_bound_is_serial(self):
        # 30 yields + the terminal StopIteration = 31 items per thread.
        trace = self._trace(seed=9, bound=0)
        assert trace == [(1, 31), (2, 31), (3, 31)]

    def test_preemptions_bounded(self):
        for seed in range(20):
            trace = self._trace(seed, bound=2)
            # switches = free switches (thread done) + preemptions;
            # 3 threads finish => 2 free switches, plus <= 2 preempts,
            # and each preemption adds at most one extra return switch.
            assert len(trace) - 1 <= 2 + 2 * 2

    def test_seeds_diversify_schedules(self):
        traces = {tuple(self._trace(seed)) for seed in range(20)}
        assert len(traces) > 3


class TestReplayPolicy:
    def test_replay_follows_trace(self):
        from repro.runtime.scheduler import ReplayPolicy

        sched = Scheduler(policy=ReplayPolicy([(2, 3), (1, 2), (2, 1)]))
        sched.spawn(counting_gen(100), "a")
        sched.spawn(counting_gen(100), "b")
        assert [(t.tid, b) for t, b in
                [sched.pick() for _ in range(3)]] == \
            [(2, 3), (1, 2), (2, 1)]

    def test_exhausted_trace_falls_back_to_serial(self):
        from repro.runtime.scheduler import ReplayPolicy

        sched = Scheduler(policy=ReplayPolicy([]))
        sched.spawn(counting_gen(10), "a")
        sched.spawn(counting_gen(10), "b")
        thread, burst = sched.pick()
        assert thread.tid == 1 and burst > 1000

    def test_skips_unrunnable_entries(self):
        from repro.runtime.scheduler import ReplayPolicy

        sched = Scheduler(policy=ReplayPolicy([(7, 4), (2, 5)]))
        sched.spawn(counting_gen(10), "a")
        sched.spawn(counting_gen(10), "b")
        thread, burst = sched.pick()
        assert (thread.tid, burst) == (2, 5)


class TestTraceRecording:
    def test_adjacent_same_tid_entries_merge(self):
        sched = Scheduler(record_trace=True)
        t1 = sched.spawn(counting_gen(10), "a")
        t2 = sched.spawn(counting_gen(10), "b")
        sched.note_ran(t1, 3)
        sched.note_ran(t1, 2)
        sched.note_ran(t2, 4)
        assert sched.trace == [(1, 5), (2, 4)]
        assert sched.trace_switches() == 1

    def test_disabled_by_default(self):
        sched = Scheduler()
        t1 = sched.spawn(counting_gen(10), "a")
        sched.note_ran(t1, 3)
        assert sched.trace is None
        assert sched.trace_switches() == 0
