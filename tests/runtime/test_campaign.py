"""Tests for the fleet-scale campaign engine (repro.explore.campaign).

The load-bearing guarantee is bit-identical resume: a campaign killed
after any shard and resumed (any number of times, with any job count,
under either backend) must write the same ``summary.json`` bytes as an
uninterrupted run.  Everything else — corpus dedup, deterministic
lease logs, coverage-guided budget flow — hangs off that fold-order
discipline, so most tests here compare serialized artifacts, not
in-memory objects.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.explore.campaign import (
    CampaignConfig, CampaignTarget, load_manifest, run_campaign,
)
from repro.obs.telemetry import (
    CampaignStatus, read_telemetry, validate_telemetry,
)

from tests.runtime.test_explore import RACY_COUNTER


def racy_target(label: str = "racy") -> CampaignTarget:
    return CampaignTarget(label=label, source=RACY_COUNTER,
                          filename="racy.c", max_steps=2000)


def small_config(**overrides) -> CampaignConfig:
    base = dict(budget=24, shard_size=6, jobs=1,
                policies=("random", "round-robin"), checker="sharc",
                backend="interp", sites_every=4)
    base.update(overrides)
    return CampaignConfig(**base)


def summary_bytes(directory: str) -> bytes:
    with open(os.path.join(directory, "summary.json"), "rb") as handle:
        return handle.read()


def corpus_lines(directory: str) -> list:
    with open(os.path.join(directory, "corpus.txt"),
              encoding="utf-8") as handle:
        return handle.read().splitlines()


class TestCampaignBasics:
    def test_budget_exhausted_and_summary_written(self, tmp_path):
        directory = str(tmp_path / "camp")
        summary = run_campaign([racy_target()], directory,
                               config=small_config())
        assert summary.complete and not summary.interrupted
        assert summary.schedules == 24
        assert summary.shards_done == 4
        payload = json.loads(summary_bytes(directory))
        assert payload["schema"] == "sharc-campaign/1"
        assert payload["schedules"] == 24
        assert payload["complete"] is True
        assert payload["distinct_traces"] == summary.distinct_traces
        # the racy counter races under the random policy
        assert payload["failing_schedules"] > 0
        assert payload["distinct_reports"]
        # site attribution is sampled but present
        assert payload["site_totals"]["checks"] > 0

    def test_summary_has_no_wall_clock(self, tmp_path):
        """Determinism precondition: nothing time-dependent may leak
        into the persisted summary."""
        directory = str(tmp_path / "camp")
        run_campaign([racy_target()], directory, config=small_config())
        text = summary_bytes(directory).decode()
        for needle in ("wall", "seconds", "elapsed", "time"):
            assert needle not in text

    def test_fresh_campaign_requires_targets(self, tmp_path):
        with pytest.raises(ValueError, match="at least one target"):
            run_campaign([], str(tmp_path / "camp"),
                         config=small_config())

    def test_manifest_persists_sources_and_policies(self, tmp_path):
        directory = str(tmp_path / "camp")
        run_campaign([racy_target()], directory, config=small_config())
        manifest = load_manifest(directory)
        entry = manifest["targets"][0]
        assert entry["label"] == "racy"
        assert tuple(entry["policies"]) == ("random", "round-robin")
        with open(os.path.join(directory, entry["source"]),
                  encoding="utf-8") as handle:
            assert handle.read() == RACY_COUNTER


class TestResumeBitIdentical:
    """Satellite: kill-at-arbitrary-shard resume property."""

    @given(kill_after=st.integers(min_value=1, max_value=3),
           backend=st.sampled_from(["interp", "compiled"]))
    @settings(max_examples=6, deadline=None)
    def test_kill_and_resume_matches_uninterrupted(self, tmp_path_factory,
                                                   kill_after, backend):
        config = small_config(backend=backend)
        straight = str(tmp_path_factory.mktemp("straight"))
        run_campaign([racy_target()], straight, config=config)

        paused = str(tmp_path_factory.mktemp("paused"))
        partial = run_campaign([racy_target()], paused, config=config,
                               stop_after=kill_after)
        assert not partial.complete
        assert partial.shards_done == kill_after
        assert not os.path.exists(os.path.join(paused, "summary.json"))
        resumed = run_campaign(None, paused, resume=True)
        assert resumed.complete

        assert summary_bytes(paused) == summary_bytes(straight)

    def test_resume_after_every_shard(self, tmp_path):
        """The worst case: a kill after every single shard — the whole
        campaign runs as refold + one live shard per invocation."""
        config = small_config()
        straight = str(tmp_path / "straight")
        run_campaign([racy_target()], straight, config=config)

        choppy = str(tmp_path / "choppy")
        summary = run_campaign([racy_target()], choppy, config=config,
                               stop_after=1)
        while not summary.complete:
            summary = run_campaign(None, choppy, resume=True,
                                   stop_after=1)
        assert summary_bytes(choppy) == summary_bytes(straight)
        # the lease logs replay the same campaign schedule
        straight_q = open(os.path.join(straight, "queue.jsonl")).read()
        choppy_q = open(os.path.join(choppy, "queue.jsonl")).read()
        assert choppy_q == straight_q

    def test_corpus_dedups_across_restarts(self, tmp_path):
        """Acceptance criterion: restarts never duplicate corpus lines,
        and the resumed corpus equals the uninterrupted one as a set."""
        config = small_config()
        straight = str(tmp_path / "straight")
        run_campaign([racy_target()], straight, config=config)

        paused = str(tmp_path / "paused")
        run_campaign([racy_target()], paused, config=config,
                     stop_after=2)
        run_campaign(None, paused, resume=True)

        lines = corpus_lines(paused)
        assert len(lines) == len(set(lines))
        assert set(lines) == set(corpus_lines(straight))

    def test_resume_refuses_tampered_sources(self, tmp_path):
        directory = str(tmp_path / "camp")
        run_campaign([racy_target()], directory, config=small_config(),
                     stop_after=1)
        source_path = os.path.join(directory, "sources", "racy.c")
        with open(source_path, "a", encoding="utf-8") as handle:
            handle.write("\n// drift\n")
        with pytest.raises(ValueError, match="hash mismatch"):
            run_campaign(None, directory, resume=True)

    def test_resume_ignores_caller_config_except_jobs(self, tmp_path):
        """The manifest is authoritative on resume: a caller config
        with a different budget must not change the campaign."""
        directory = str(tmp_path / "camp")
        run_campaign([racy_target()], directory, config=small_config(),
                     stop_after=1)
        summary = run_campaign(None, directory, resume=True,
                               config=CampaignConfig(budget=999, jobs=1))
        assert summary.complete
        assert summary.budget == 24
        assert summary.schedules == 24


class TestDeterminism:
    def test_two_fresh_runs_identical_artifacts(self, tmp_path):
        """Pick determinism: the whole campaign — leases, shard files,
        summary — replays bit-for-bit from the same inputs."""
        config = small_config()
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        run_campaign([racy_target()], a, config=config)
        run_campaign([racy_target()], b, config=config)
        assert summary_bytes(a) == summary_bytes(b)
        assert (open(os.path.join(a, "queue.jsonl")).read()
                == open(os.path.join(b, "queue.jsonl")).read())
        shard = os.path.join("shards", "shard-00000.json")
        assert (open(os.path.join(a, shard), "rb").read()
                == open(os.path.join(b, shard), "rb").read())

    def test_jobs_do_not_change_results(self, tmp_path):
        """Batched worker IPC must be observationally pure: jobs only
        changes wall-clock, never a byte of any persisted artifact."""
        serial = str(tmp_path / "serial")
        pooled = str(tmp_path / "pooled")
        run_campaign([racy_target()], serial,
                     config=small_config(budget=12, shard_size=6,
                                         jobs=1))
        run_campaign([racy_target()], pooled,
                     config=small_config(budget=12, shard_size=6,
                                         jobs=2))
        assert summary_bytes(serial) == summary_bytes(pooled)
        shard = os.path.join("shards", "shard-00000.json")
        assert (open(os.path.join(serial, shard), "rb").read()
                == open(os.path.join(pooled, shard), "rb").read())


class TestCoverageGuidedScheduling:
    def test_budget_flows_to_productive_cells(self, tmp_path):
        """serial explores exactly one interleaving, so its new-trace
        rate collapses after the first shard; random keeps producing
        novel traces.  The picker must starve the former."""
        directory = str(tmp_path / "camp")
        summary = run_campaign(
            [racy_target()], directory,
            config=small_config(budget=40, shard_size=4,
                                policies=("serial", "random")))
        cells = summary.per_cell
        assert cells[("racy", "random")]["schedules"] > \
            cells[("racy", "serial")]["schedules"]
        assert cells[("racy", "serial")]["new_traces"] == 1

    def test_picks_are_recorded_in_lease_log(self, tmp_path):
        directory = str(tmp_path / "camp")
        run_campaign([racy_target()], directory, config=small_config())
        leases = [json.loads(line) for line in
                  open(os.path.join(directory, "queue.jsonl"))
                  if json.loads(line)["kind"] == "lease"]
        assert [lease["picked"] for lease in leases] == [0, 1, 2, 3]
        # the first pick of each cell happens before any rate exists
        assert leases[0]["rate"] is None


class TestCampaignCLI:
    def _write_source(self, tmp_path) -> str:
        path = tmp_path / "racy.c"
        path.write_text(RACY_COUNTER)
        return str(path)

    def test_run_pause_resume_roundtrip(self, tmp_path, capsys):
        source = self._write_source(tmp_path)
        directory = str(tmp_path / "camp")
        argv = ["campaign", directory, source, "--budget", "16",
                "--shard-size", "4", "--backend", "interp",
                "--policy", "random", "--json", "--quiet"]
        rc = cli_main(argv + ["--stop-after", "2"])
        payload = json.loads(capsys.readouterr().out)
        assert rc in (0, 1)  # 1 == failures found, still a clean run
        assert payload["complete"] is False
        assert payload["schedules"] == 8

        rc = cli_main(["campaign", directory, "--resume", "--json",
                       "--quiet"])
        payload = json.loads(capsys.readouterr().out)
        assert rc in (0, 1)
        assert payload["complete"] is True
        assert payload["schedules"] == 16
        assert payload == json.loads(summary_bytes(directory))

    def test_resume_rejects_targets(self, tmp_path, capsys):
        source = self._write_source(tmp_path)
        directory = str(tmp_path / "camp")
        rc = cli_main(["campaign", directory, source, "--resume"])
        assert rc == 2
        assert "--resume" in capsys.readouterr().err

    def test_resume_without_manifest(self, tmp_path, capsys):
        rc = cli_main(["campaign", str(tmp_path / "nothere"),
                       "--resume"])
        assert rc == 2
        assert "manifest" in capsys.readouterr().err

    def test_fresh_without_targets(self, tmp_path, capsys):
        rc = cli_main(["campaign", str(tmp_path / "camp")])
        assert rc == 2
        assert "at least one" in capsys.readouterr().err

    def test_tampered_resume_exits_2(self, tmp_path, capsys):
        source = self._write_source(tmp_path)
        directory = str(tmp_path / "camp")
        cli_main(["campaign", directory, source, "--budget", "8",
                  "--shard-size", "4", "--backend", "interp",
                  "--policy", "random", "--quiet", "--stop-after", "1"])
        capsys.readouterr()
        with open(os.path.join(directory, "sources", "racy.c"), "a",
                  encoding="utf-8") as handle:
            handle.write("// drift\n")
        rc = cli_main(["campaign", directory, "--resume", "--quiet"])
        assert rc == 2
        assert "hash mismatch" in capsys.readouterr().err


class TestCampaignTelemetry:
    def test_stream_validates_and_status_finishes(self, tmp_path,
                                                  capsys):
        source = tmp_path / "racy.c"
        source.write_text(RACY_COUNTER)
        directory = str(tmp_path / "camp")
        cli_main(["campaign", directory, str(source), "--budget", "8",
                  "--shard-size", "4", "--backend", "interp",
                  "--policy", "random", "--quiet"])
        capsys.readouterr()
        stream = os.path.join(directory, "telemetry.jsonl")
        records = read_telemetry(stream)
        assert validate_telemetry(records) == []
        status = CampaignStatus.from_file(stream)
        assert status.finished
        assert status.done == 8
