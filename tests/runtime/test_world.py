"""Tests for the simulated external world."""

from repro.runtime.world import World, WorldItem

from tests.conftest import run_clean


class TestItems:
    def test_random_files(self):
        world = World.with_random_files(count=3, size=100, seed=1)
        assert world.nitems() == 3
        assert world.item_size(0) == 100
        assert len(world.read(0, 0, 100)) == 100

    def test_reads_are_deterministic(self):
        a = World.with_random_files(3, 64, seed=9)
        b = World.with_random_files(3, 64, seed=9)
        assert a.read(1, 0, 64) == b.read(1, 0, 64)

    def test_partial_and_out_of_range_reads(self):
        world = World([WorldItem("f", b"abcdef")])
        assert world.read(0, 2, 2) == b"cd"
        assert world.read(0, 4, 10) == b"ef"
        assert world.read(5, 0, 4) == b""

    def test_item_names(self):
        world = World([WorldItem("notes.txt", b"x")])
        assert world.item_name(0) == "notes.txt"
        assert world.item_name(7) == ""

    def test_writes_captured(self):
        world = World()
        world.write(1, b"log ")
        world.write(1, b"line")
        assert bytes(world.written[1]) == b"log line"


class TestChannels:
    def test_feed_then_recv(self):
        world = World()
        world.feed_channel(0, b"hello")
        assert world.recv(0, 3) == b"hel"
        assert world.recv(0, 10) == b"lo"
        assert world.recv(0, 10) == b""

    def test_recv_ready(self):
        world = World()
        assert not world.recv_ready(2)
        world.feed_channel(2, b"x")
        assert world.recv_ready(2)

    def test_send_captured(self):
        world = World()
        world.send(5, b"abc")
        assert bytes(world.outbound[5]) == b"abc"


class TestWorldBuiltins:
    def test_program_reads_world_items(self):
        world = World([WorldItem("data", b"ABCD")])
        result = run_clean("""
        int main() {
          char buf[8];
          long n = world_read(0, buf, 1, 3);
          buf[n] = 0;
          printf("%ld %s %d\\n", n, buf, world_nitems());
          return 0;
        }
        """, world=world)
        assert result.output == "3 BCD 1\n"

    def test_program_writes_world(self):
        world = World()
        run_clean("""
        int main() {
          char *msg = strdup("out!");
          world_write(3, msg, 4);
          free(msg);
          return 0;
        }
        """, world=world)
        assert bytes(world.written[3]) == b"out!"

    def test_channels_roundtrip(self):
        world = World()
        world.feed_channel(0, b"ping")
        result = run_clean("""
        int main() {
          char buf[8];
          long n = world_recv(0, buf, 8);
          world_send(1, buf, n);
          return 0;
        }
        """, world=world)
        assert bytes(world.outbound[1]) == b"ping"

    def test_latency_charged_as_io_steps(self):
        world = World([WorldItem("f", b"x" * 64)], read_latency=500)
        result = run_clean("""
        int main() {
          char buf[64];
          world_read(0, buf, 0, 64);
          return 0;
        }
        """, world=world)
        assert result.stats.steps_io >= 500
