"""Equivalence of the paged array-backed shadow with a dict reference.

The production :class:`ShadowMemory` stores granule bitmaps in
fixed-size integer pages and layers a per-thread last-granule fast-path
cache on top.  Both are pure representation changes: the observable
behaviour — conflicts, slow-update counts, ``updates`` accounting, final
bitmaps, page accounting — must match a straightforward
one-dict-entry-per-granule implementation of Figure 6 exactly.

``DictShadow`` below is that reference (the pre-optimization storage
scheme, with the semantic bugfixes applied so only representation
differs).  A hypothesis property drives both through random operation
sequences and compares every observable after every operation.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import Loc
from repro.runtime.shadow import GRANULE_SHIFT, SHADOW_PAGE, ShadowMemory

LOC = Loc("t.c", 1)


class DictShadow:
    """Reference shadow: one dict entry per granule, no fast path."""

    def __init__(self, nbytes: int = 1) -> None:
        self.nbytes = nbytes
        self.bits: dict[int, int] = {}
        self.last: dict[int, object] = {}
        self.last_writer: dict[int, object] = {}
        self.thread_log: dict[int, set[int]] = {}
        self.updates = 0
        self.touched: set[int] = set()

    @staticmethod
    def granules(addr: int, size: int) -> range:
        first = addr >> GRANULE_SHIFT
        last = (addr + max(size, 1) - 1) >> GRANULE_SHIFT
        return range(first, last + 1)

    def _log(self, tid: int, granule: int) -> None:
        self.thread_log.setdefault(tid, set()).add(granule)
        self.touched.add(granule)

    def chkread(self, addr, size, tid, lvalue, loc):
        conflict = None
        slow = 0
        mybit = 1 << tid
        for granule in self.granules(addr, size):
            self.updates += 1
            bits = self.bits.get(granule, 0)
            if (bits & 1) and (bits & ~1 & ~mybit):
                if conflict is None:
                    candidate = (self.last_writer.get(granule)
                                 or self.last.get(granule))
                    # A thread never races with itself: when the reader
                    # *is* the writer on record, the writer bit plus some
                    # other thread's reader bit is not a conflict for it.
                    if candidate is not None and candidate[0] != tid:
                        conflict = candidate
            if not bits & mybit:
                slow += 1
                self.bits[granule] = bits | mybit
                self._log(tid, granule)
            self.last[granule] = (tid, False)
        return conflict, slow

    def chkwrite(self, addr, size, tid, lvalue, loc):
        conflict = None
        slow = 0
        mybit = 1 << tid
        want = mybit | 1
        for granule in self.granules(addr, size):
            self.updates += 1
            bits = self.bits.get(granule, 0)
            if bits & ~1 & ~mybit:
                if conflict is None:
                    conflict = self.last.get(granule)
            if bits & want != want:
                slow += 1
                self.bits[granule] = bits | want
                self._log(tid, granule)
            self.last[granule] = (tid, True)
            self.last_writer[granule] = (tid, True)
        return conflict, slow

    def clear_range(self, addr, size):
        for granule in self.granules(addr, size):
            self.bits.pop(granule, None)
            self.last.pop(granule, None)
            self.last_writer.pop(granule, None)
            for log in self.thread_log.values():
                log.discard(granule)

    def clear_thread(self, tid):
        mask = ~(1 << tid)
        for granule in self.thread_log.pop(tid, set()):
            bits = self.bits.get(granule, 0) & mask
            if bits & ~1 == 0:
                bits = 0
            if bits:
                self.bits[granule] = bits
            else:
                self.bits.pop(granule, None)

    def shadow_pages(self):
        per_page = SHADOW_PAGE // self.nbytes
        return len({g // per_page for g in self.touched})


def _conflict_tid(conflict):
    """Normalizes a conflict to the attributed thread id.

    Only the tid is compared: a fast-path cache hit intentionally skips
    refreshing the ``last`` record (the cached check has the same lvalue
    and location), so the is_write flag of a *same-thread* record may
    lag the reference by one access.  The attributed thread can never
    differ — any other thread's state change bumps the version and
    defeats the cache.
    """
    if conflict is None:
        return None
    if isinstance(conflict, tuple):
        return conflict[0]
    return conflict.tid


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "free", "exit"]),
        st.integers(min_value=1, max_value=6),          # tid
        st.integers(min_value=0, max_value=1 << 10),    # addr
        st.integers(min_value=1, max_value=64),         # size
    ),
    min_size=1, max_size=60)


@settings(max_examples=200, deadline=None)
@given(ops=_OPS)
def test_paged_shadow_matches_dict_reference(ops):
    paged = ShadowMemory(nbytes=1)
    ref = DictShadow(nbytes=1)
    for i, (op, tid, addr, size) in enumerate(ops):
        if op == "read":
            got = paged.chkread(addr, size, tid, "x", LOC)
            want = ref.chkread(addr, size, tid, "x", LOC)
        elif op == "write":
            got = paged.chkwrite(addr, size, tid, "x", LOC)
            want = ref.chkwrite(addr, size, tid, "x", LOC)
        elif op == "free":
            paged.clear_range(addr, size)
            ref.clear_range(addr, size)
            continue
        else:
            paged.clear_thread(tid)
            ref.clear_thread(tid)
            continue
        assert _conflict_tid(got[0]) == _conflict_tid(want[0]), \
            f"op {i}: conflict mismatch on {op} tid={tid} addr={addr}"
        assert got[1] == want[1], \
            f"op {i}: slow-count mismatch on {op} tid={tid} addr={addr}"
        assert paged.updates == ref.updates, f"op {i}: updates diverged"
    assert paged.bits == ref.bits
    assert paged.thread_log == ref.thread_log
    assert paged.shadow_pages() == ref.shadow_pages()


class TestFastPathSmoke:
    """The per-thread last-granule cache short-circuits repeated checks."""

    def test_second_pass_is_all_fast_path(self):
        shadow = ShadowMemory(nbytes=1)
        addrs = list(range(0, 256, 8))
        first_slow = sum(shadow.chkread(a, 8, 1, "buf", LOC)[1]
                         for a in addrs)
        assert first_slow == len(set(a >> GRANULE_SHIFT for a in addrs))
        second_slow = sum(shadow.chkread(a, 8, 1, "buf", LOC)[1]
                          for a in addrs)
        assert second_slow == 0
        assert shadow.fastpath_hits > 0

    def test_tight_loop_hits_cache_every_iteration(self):
        shadow = ShadowMemory(nbytes=1)
        shadow.chkwrite(0x40, 4, 2, "acc", LOC)
        before = shadow.fastpath_hits
        for _ in range(100):
            assert shadow.chkwrite(0x40, 4, 2, "acc", LOC) == (None, 0)
            assert shadow.chkread(0x40, 4, 2, "acc", LOC) == (None, 0)
        assert shadow.fastpath_hits == before + 200
        # updates accounting is identical on the fast path: one per
        # granule per check, exactly as the slow path counts.
        assert shadow.updates == 1 + 200

    def test_foreign_mutation_invalidates_cache(self):
        shadow = ShadowMemory(nbytes=1)
        shadow.chkread(0x80, 4, 1, "x", LOC)
        assert shadow.chkread(0x80, 4, 1, "x", LOC)[1] == 0
        # Another thread's first touch mutates shadow state; thread 1's
        # next check must not serve a stale "no conflict" from cache
        # once a writer appears.
        shadow.chkread(0x80, 4, 2, "x", LOC)
        conflict, _ = shadow.chkwrite(0x80, 4, 1, "x", LOC)
        assert conflict is not None and conflict.tid == 2
