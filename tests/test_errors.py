"""Tests for the diagnostics infrastructure."""

import pytest

from repro.errors import (
    DiagKind, Diagnostic, DiagnosticSink, LexError, Loc, ParseError,
    Severity, SharcError,
)


class TestLoc:
    def test_str_with_column(self):
        assert str(Loc("a.c", 3, 7)) == "a.c:3:7"

    def test_str_without_column(self):
        assert str(Loc("a.c", 3)) == "a.c:3"

    def test_unknown(self):
        assert Loc.unknown().file == "<unknown>"

    def test_frozen(self):
        with pytest.raises(Exception):
            Loc("a.c", 1).line = 2


class TestDiagnostic:
    def test_render_with_notes(self):
        diag = Diagnostic(DiagKind.MODE_MISMATCH, "bad modes",
                          Loc("a.c", 4, 2), Severity.ERROR,
                          ["try SCAST"])
        text = str(diag)
        assert "a.c:4:2: error: bad modes" in text
        assert "note: try SCAST" in text

    def test_is_error(self):
        err = Diagnostic(DiagKind.PARSE, "x", Loc(), Severity.ERROR)
        warn = Diagnostic(DiagKind.PARSE, "x", Loc(), Severity.WARNING)
        assert err.is_error and not warn.is_error


class TestSink:
    def test_severity_buckets(self):
        sink = DiagnosticSink()
        sink.error(DiagKind.PARSE, "e")
        sink.warning(DiagKind.LIVE_AFTER_SCAST, "w")
        sink.suggest(DiagKind.SCAST_SUGGESTION, "s")
        assert len(sink.errors) == 1
        assert len(sink.warnings) == 1
        assert len(sink.suggestions) == 1
        assert sink.has_errors

    def test_empty_sink_is_falsy_but_usable(self):
        """DiagnosticSink defines __len__; code must never use `sink or
        default` (this bit us once — pinned here)."""
        sink = DiagnosticSink()
        assert len(sink) == 0
        assert not sink           # falsy when empty...
        assert sink is not None   # ...so identity checks are required

    def test_extend_merges(self):
        a, b = DiagnosticSink(), DiagnosticSink()
        a.error(DiagKind.PARSE, "one")
        b.error(DiagKind.PARSE, "two")
        a.extend(b)
        assert len(a) == 2

    def test_render_joins_lines(self):
        sink = DiagnosticSink()
        sink.error(DiagKind.PARSE, "first", Loc("a.c", 1))
        sink.error(DiagKind.PARSE, "second", Loc("a.c", 2))
        text = sink.render()
        assert "first" in text and "second" in text

    def test_iteration(self):
        sink = DiagnosticSink()
        sink.error(DiagKind.PARSE, "x")
        assert [d.message for d in sink] == ["x"]


class TestExceptions:
    def test_sharc_error_carries_loc(self):
        err = SharcError("boom", Loc("a.c", 9))
        assert err.loc.line == 9
        assert "a.c:9" in str(err)

    def test_subclasses(self):
        assert issubclass(LexError, SharcError)
        assert issubclass(ParseError, SharcError)
