"""End-to-end campaign telemetry: ``sharc explore --telemetry-out``
feeding ``sharc status`` and ``sharc report``, plus the interrupt-flush
path (Ctrl-C mid-sweep must still leave partial metrics and a
``final`` telemetry record behind).
"""

import json
import os

import pytest

from repro.cli import main
from repro.obs.metrics import validate_metrics
from repro.obs.telemetry import read_telemetry, validate_telemetry

RACY = """
int counter = 0;
void *bump(void *arg) {
  int i;
  for (i = 0; i < 10; i++)
    counter = counter + 1;
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
"""


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.c"
    path.write_text(RACY)
    return str(path)


@pytest.fixture
def campaign(tmp_path, racy_file):
    """A tiny completed campaign directory: telemetry + metrics."""
    camp = tmp_path / "camp"
    code = main(["explore", racy_file, "--seeds", "8",
                 "--policy", "random", "--policy", "pct", "--quiet",
                 "--telemetry-out", str(camp),
                 "--metrics-out", str(camp / "metrics.json")])
    assert code in (0, 1)  # 1 = violations found, still a clean sweep
    return str(camp)


class TestExploreTelemetry:
    def test_campaign_dir_contents_validate(self, campaign):
        records = read_telemetry(os.path.join(campaign,
                                              "telemetry.jsonl"))
        assert validate_telemetry(records) == []
        assert records[-1]["kind"] == "final"
        assert records[-1]["interrupted"] is False
        with open(os.path.join(campaign, "metrics.json")) as handle:
            payload = json.load(handle)
        assert validate_metrics(payload) == []
        assert payload["sites"]["rows"], "no check sites attributed"

    def test_quiet_output_has_no_ansi(self, racy_file, tmp_path,
                                      capsys):
        main(["explore", racy_file, "--seeds", "2", "--quiet", "--telemetry-out", str(tmp_path / "c")])
        assert "\x1b" not in capsys.readouterr().out

    def test_non_tty_progress_is_plain_lines(self, racy_file,
                                             tmp_path, capsys):
        """capsys stdout is not a TTY, so progress must be clean
        newline-terminated lines with no cursor control."""
        main(["explore", racy_file, "--seeds", "2",
              "--telemetry-out", str(tmp_path / "c")])
        out = capsys.readouterr().out
        assert "\x1b" not in out and "\r" not in out
        assert "schedules" in out

    def test_sites_flag_prints_hot_listing(self, racy_file, capsys):
        code = main(["explore", racy_file, "--seeds", "2",
                     "--quiet", "--sites", "5"])
        assert code in (0, 1)
        out = capsys.readouterr().out
        assert "racy.c:" in out
        assert "cost" in out


class TestStatusCommand:
    def test_renders_from_stream_alone(self, campaign, capsys):
        assert main(["status", campaign]) == 0
        out = capsys.readouterr().out
        assert "16/16" in out
        assert "distinct traces" in out

    def test_json_is_schema_valid(self, campaign, capsys):
        assert main(["status", campaign, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["state"] == "finished"
        assert payload["done"] == payload["total"] == 16
        assert payload["violations"], "racy program must violate"

    def test_accepts_stream_path_directly(self, campaign, capsys):
        path = os.path.join(campaign, "telemetry.jsonl")
        assert main(["status", path]) == 0
        assert "16/16" in capsys.readouterr().out

    def test_missing_campaign_exits_2(self, tmp_path, capsys):
        assert main(["status", str(tmp_path / "nope")]) == 2
        assert "no telemetry" in capsys.readouterr().err

    def test_watch_exits_when_finished(self, campaign, capsys):
        code = main(["status", campaign, "--watch",
                     "--interval", "0.01"])
        assert code == 0
        assert "16/16" in capsys.readouterr().out


class TestReportCommand:
    def test_html_is_self_contained(self, campaign, capsys):
        out_path = os.path.join(campaign, "report.html")
        assert main(["report", campaign, "--out", out_path]) == 0
        with open(out_path, encoding="utf-8") as handle:
            doc = handle.read()
        assert doc.startswith("<!doctype html>")
        assert "Hot check sites" in doc
        assert "<svg" in doc  # coverage curve
        assert "racy.c" in doc
        # self-contained: no external fetches of any kind
        assert "http://" not in doc and "https://" not in doc
        assert "<script" not in doc

    def test_default_output_path(self, campaign):
        assert main(["report", campaign]) == 0
        assert os.path.exists(os.path.join(campaign, "report.html"))

    def test_report_site_totals_match_metrics(self, campaign):
        with open(os.path.join(campaign, "metrics.json")) as handle:
            payload = json.load(handle)
        main(["report", campaign])
        with open(os.path.join(campaign, "report.html")) as handle:
            doc = handle.read()
        for row in payload["sites"]["rows"]:
            assert f"{row['file']}:{row['line']} {row['lvalue']}" in doc

    def test_missing_campaign_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "telemetry" in capsys.readouterr().err


class TestInterruptFlush:
    def test_partial_metrics_and_final_record_on_ctrl_c(
            self, racy_file, tmp_path, monkeypatch, capsys):
        """Ctrl-C mid-sweep: the already-collected outcomes must still
        reach metrics.json, and the telemetry stream must close with
        ``final`` carrying ``interrupted: true``."""
        import repro.explore.driver as driver

        real = driver._run_task
        calls = {"n": 0}

        def flaky(task):
            calls["n"] += 1
            if calls["n"] > 3:
                raise KeyboardInterrupt
            return real(task)

        monkeypatch.setattr(driver, "_run_task", flaky)
        camp = tmp_path / "camp"
        code = main(["explore", racy_file, "--seeds", "8", "--quiet", "--telemetry-out", str(camp),
                     "--metrics-out", str(camp / "metrics.json")])
        assert code in (0, 1, 130)

        records = read_telemetry(str(camp / "telemetry.jsonl"))
        assert records[-1]["kind"] == "final"
        assert records[-1]["interrupted"] is True
        assert records[-1]["done"] == 3

        with open(camp / "metrics.json") as handle:
            payload = json.load(handle)
        assert validate_metrics(payload) == []
        assert payload["totals"]["schedules"] == 3
        assert "(partial: interrupted)" in capsys.readouterr().out

    def test_status_reports_interrupted_state(
            self, racy_file, tmp_path, monkeypatch, capsys):
        import repro.explore.driver as driver

        real = driver._run_task
        calls = {"n": 0}

        def flaky(task):
            calls["n"] += 1
            if calls["n"] > 2:
                raise KeyboardInterrupt
            return real(task)

        monkeypatch.setattr(driver, "_run_task", flaky)
        camp = tmp_path / "camp"
        main(["explore", racy_file, "--seeds", "8", "--quiet", "--telemetry-out", str(camp)])
        capsys.readouterr()
        assert main(["status", str(camp), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["state"] == "interrupted"


class TestFuzzTelemetry:
    def test_fuzz_writes_validating_stream(self, tmp_path, capsys):
        camp = tmp_path / "soak"
        code = main(["fuzz", "--budget", "1", "--seeds", "2",
                     "--policy", "random", "--no-shrink",
                     "--telemetry-out", str(camp)])
        assert code in (0, 1)
        records = read_telemetry(str(camp / "telemetry.jsonl"))
        assert validate_telemetry(records) == []
        kinds = [r["kind"] for r in records]
        assert "scenario" in kinds
        assert kinds[-1] == "final"
        # and the report renders the scenario table
        assert main(["report", str(camp)]) == 0
        with open(camp / "report.html", encoding="utf-8") as handle:
            assert "Fuzz scenarios" in handle.read()
