"""CLI tests for tracing: --trace-out, --metrics-out, sharc trace."""

import json

import pytest

from repro.cli import main
from repro.obs.export import read_jsonl, validate_chrome_trace
from repro.obs.metrics import METRICS_SCHEMA, validate_metrics

RACY = """
int counter = 0;
void *bump(void *arg) {
  int i;
  for (i = 0; i < 10; i++)
    counter = counter + 1;
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
"""


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.c"
    path.write_text(RACY)
    return str(path)


class TestRunTraceOut:
    def test_writes_valid_chrome_trace(self, racy_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(["run", racy_file, "--seed", "7",
                     "--trace-out", str(out)])
        assert code in (0, 1)  # 1 when the racy schedule reports
        assert "trace written to" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["seed"] == "7"
        names = {e["args"]["name"]
                 for e in payload["traceEvents"]
                 if e.get("name") == "thread_name"}
        assert "main" in names

    def test_jsonl_extension_and_filter(self, racy_file, tmp_path):
        out = tmp_path / "trace.jsonl"
        main(["run", racy_file, "--seed", "7", "--trace-out", str(out),
              "--trace-filter", "check,conflict"])
        header, events, _reports = read_jsonl(str(out))
        assert header["kind"] == "sharc-trace"
        assert events
        assert {e.cat for e in events} <= {"check", "conflict"}

    def test_rejects_bad_filter(self, racy_file, tmp_path, capsys):
        code = main(["run", racy_file, "--trace-out",
                     str(tmp_path / "t.json"), "--trace-filter", "turbo"])
        assert code == 2
        assert "unknown trace categories" in capsys.readouterr().err

    def test_profile_and_trace_are_exclusive(self, racy_file, tmp_path,
                                             capsys):
        code = main(["run", racy_file, "--profile", "--trace-out",
                     str(tmp_path / "t.json")])
        assert code == 2
        assert "--profile" in capsys.readouterr().err


class TestExploreMetricsOut:
    def test_writes_valid_metrics(self, racy_file, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        main(["explore", racy_file, "--seeds", "3",
              "--metrics-out", str(out)])
        assert "metrics written to" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert validate_metrics(payload) == []
        assert payload["schema"] == METRICS_SCHEMA
        assert payload["totals"]["schedules"] > 0
        assert payload["totals"]["check_updates"] > 0


class TestTraceCommand:
    def test_pretty_prints_jsonl(self, racy_file, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main(["run", racy_file, "--seed", "7", "--trace-out", str(out)])
        capsys.readouterr()
        code = main(["trace", str(out), "--limit", "3"])
        assert code == 0
        text = capsys.readouterr().out
        assert "events over steps" in text
        assert "by category:" in text

    def test_converts_jsonl_to_chrome(self, racy_file, tmp_path, capsys):
        jsonl = tmp_path / "trace.jsonl"
        main(["run", racy_file, "--seed", "7", "--trace-out", str(jsonl)])
        chrome = tmp_path / "timeline.json"
        code = main(["trace", str(jsonl), "--out", str(chrome)])
        assert code == 0
        assert validate_chrome_trace(json.loads(chrome.read_text())) == []

    def test_replays_shrunk_artifact_into_timeline(self, racy_file,
                                                   tmp_path, capsys):
        artifact = tmp_path / "repro.json"
        main(["explore", racy_file, "--seeds", "10", "--shrink",
              "--out", str(artifact)])
        capsys.readouterr()
        assert artifact.exists(), "sweep found no failure to shrink"
        timeline = tmp_path / "timeline.json"
        code = main(["trace", str(artifact), "--out", str(timeline)])
        assert code == 0
        text = capsys.readouterr().out
        assert "events over steps" in text
        payload = json.loads(timeline.read_text())
        assert validate_chrome_trace(payload) == []
        cats = {e.get("cat") for e in payload["traceEvents"]}
        assert "conflict" in cats  # the replay reproduces the race

    def test_rejects_garbage_file(self, tmp_path, capsys):
        bad = tmp_path / "junk.jsonl"
        bad.write_text("{\"record\": \"mystery\"}\n")
        code = main(["trace", str(bad)])
        assert code != 0
