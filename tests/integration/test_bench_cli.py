"""CLI tests for profiling (``sharc run --profile``) and the throughput
benchmark (``sharc bench`` -> BENCH_interp.json)."""

import json

import pytest

from repro.cli import main
from repro.bench.interp_bench import (
    SCHEMA, bench_payload, bench_workloads, validate_payload,
)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text("""
mutex lk;
int locked(lk) counter = 0;
void *bump(void *arg) {
  mutexLock(&lk); counter = counter + 1; mutexUnlock(&lk);
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
""")
    return str(path)


class TestRunProfile:
    def test_profile_flag_prints_phases_and_throughput(self, clean_file,
                                                       capsys):
        assert main(["run", "--profile", clean_file]) == 0
        out = capsys.readouterr().out
        assert "parse+typecheck" in out
        assert "baseline" in out
        assert "instrumented" in out
        assert "steps/sec" in out

    def test_profile_flag_keeps_exit_code_semantics(self, tmp_path,
                                                    capsys):
        racy = tmp_path / "racy.c"
        racy.write_text("""
int counter = 0;
void *bump(void *arg) {
  int i;
  for (i = 0; i < 10; i++)
    counter = counter + 1;
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
""")
        assert main(["run", "--profile", str(racy)]) == 1

    def test_profile_flag_reports_static_errors_cleanly(self, tmp_path,
                                                        capsys):
        broken = tmp_path / "broken.c"
        broken.write_text(
            "int readonly limit = 1;\n"
            "int main() { limit = 2; return 0; }\n")
        assert main(["run", "--profile", str(broken)]) == 1
        out = capsys.readouterr().out
        assert "static checking failed" in out
        assert "readonly" in out


class TestBenchCommand:
    def test_bench_writes_valid_json(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_interp.json"
        code = main(["bench", "--workloads", "aget", "stunnel",
                     "--out", str(out_path)])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert validate_payload(payload) == []
        assert set(payload["workloads"]) == {"aget", "stunnel"}
        entry = payload["workloads"]["aget"]
        assert entry["sharc_steps"] > 0
        assert entry["wall_seconds"] > 0
        assert entry["steps_per_sec"] > 0
        assert entry["reports"] == 0
        text = capsys.readouterr().out
        assert "steps/sec" in text

    def test_bench_json_flag_prints_payload(self, tmp_path, capsys):
        code = main(["bench", "--workloads", "aget", "--json",
                     "--out", str(tmp_path / "b.json")])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == SCHEMA

    def test_bench_rejects_unknown_workload(self, capsys):
        code = main(["bench", "--workloads", "nope", "--out", "-"])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err


class TestPayloadValidation:
    def test_validator_flags_missing_fields(self):
        results = bench_workloads(["aget"])
        payload = bench_payload(results)
        del payload["workloads"]["aget"]["steps_per_sec"]
        payload["schema"] = "bogus"
        problems = validate_payload(payload)
        assert any("schema" in p for p in problems)
        assert any("steps_per_sec" in p for p in problems)

    def test_validator_flags_empty_payload(self):
        assert validate_payload({}) != []

    def test_deterministic_metrics_are_stable_across_runs(self):
        first = bench_workloads(["aget"])[0]
        second = bench_workloads(["aget"])[0]
        assert first.base_steps == second.base_steps
        assert first.sharc_steps == second.sharc_steps
        assert first.time_overhead == second.time_overhead
        assert first.reports == second.reports
