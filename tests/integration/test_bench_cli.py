"""CLI tests for profiling (``sharc run --profile``) and the throughput
benchmark (``sharc bench`` -> BENCH_interp.json)."""

import json

import pytest

from repro.cli import main
from repro.bench.interp_bench import (
    SCHEMA, SCHEMA_V1, SCHEMA_V2, SCHEMA_V3, bench_payload,
    bench_workloads,
    compare_payloads, upgrade_payload, validate_payload,
)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text("""
mutex lk;
int locked(lk) counter = 0;
void *bump(void *arg) {
  mutexLock(&lk); counter = counter + 1; mutexUnlock(&lk);
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
""")
    return str(path)


class TestRunProfile:
    def test_profile_flag_prints_phases_and_throughput(self, clean_file,
                                                       capsys):
        assert main(["run", "--profile", clean_file]) == 0
        out = capsys.readouterr().out
        assert "parse+typecheck" in out
        assert "baseline" in out
        assert "instrumented" in out
        assert "steps/sec" in out

    def test_profile_flag_keeps_exit_code_semantics(self, tmp_path,
                                                    capsys):
        racy = tmp_path / "racy.c"
        racy.write_text("""
int counter = 0;
void *bump(void *arg) {
  int i;
  for (i = 0; i < 10; i++)
    counter = counter + 1;
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
""")
        assert main(["run", "--profile", str(racy)]) == 1

    def test_profile_flag_reports_static_errors_cleanly(self, tmp_path,
                                                        capsys):
        broken = tmp_path / "broken.c"
        broken.write_text(
            "int readonly limit = 1;\n"
            "int main() { limit = 2; return 0; }\n")
        assert main(["run", "--profile", str(broken)]) == 1
        out = capsys.readouterr().out
        assert "static checking failed" in out
        assert "readonly" in out


class TestBenchCommand:
    def test_bench_writes_valid_json(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_interp.json"
        code = main(["bench", "--workloads", "aget", "stunnel",
                     "--out", str(out_path)])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert validate_payload(payload) == []
        assert set(payload["workloads"]) == {"aget", "stunnel"}
        entry = payload["workloads"]["aget"]
        assert entry["sharc_steps"] > 0
        assert entry["wall_seconds"] > 0
        assert entry["steps_per_sec"] > 0
        assert entry["reports"] == 0
        text = capsys.readouterr().out
        assert "steps/sec" in text

    def test_bench_json_flag_prints_payload(self, tmp_path, capsys):
        code = main(["bench", "--workloads", "aget", "--json",
                     "--out", str(tmp_path / "b.json")])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == SCHEMA

    def test_bench_rejects_unknown_workload(self, capsys):
        code = main(["bench", "--workloads", "nope", "--out", "-"])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err


class TestPayloadValidation:
    def test_validator_flags_missing_fields(self):
        results = bench_workloads(["aget"])
        payload = bench_payload(results)
        del payload["workloads"]["aget"]["steps_per_sec"]
        payload["schema"] = "bogus"
        problems = validate_payload(payload)
        assert any("schema" in p for p in problems)
        assert any("steps_per_sec" in p for p in problems)

    def test_validator_flags_empty_payload(self):
        assert validate_payload({}) != []

    def test_deterministic_metrics_are_stable_across_runs(self):
        first = bench_workloads(["aget"])[0]
        second = bench_workloads(["aget"])[0]
        assert first.base_steps == second.base_steps
        assert first.sharc_steps == second.sharc_steps
        assert first.time_overhead == second.time_overhead
        assert first.reports == second.reports


def _strip_v4(payload):
    """Remove the /4 backend/throughput generation, leaving what a
    pre-compiled-backend baseline actually contained."""
    del payload["backend"]
    for entry in payload["workloads"].values():
        for key in ("backend", "interp_steps_per_sec",
                    "compiled_steps_per_sec", "compiled_speedup"):
            del entry[key]
    return payload


def _v1_payload():
    """A minimal legacy (schema /1) payload, as a committed baseline
    from before the check-elimination PR would look."""
    payload = _strip_v4(bench_payload(bench_workloads(["aget"])))
    payload["schema"] = SCHEMA_V1
    del payload["checkelim"]
    for entry in payload["workloads"].values():
        del entry["checks_per_1k_steps"]
        del entry["checks_elided_pct"]
    return payload


class TestSchemaV2:
    def test_payload_carries_check_mix_fields(self):
        payload = bench_payload(bench_workloads(["aget"]))
        assert payload["schema"] == SCHEMA
        assert payload["checkelim"] is True
        entry = payload["workloads"]["aget"]
        assert entry["checks_per_1k_steps"] >= 0.0
        assert 0.0 <= entry["checks_elided_pct"] <= 1.0

    def test_v1_payload_still_validates(self):
        # Legacy baselines must not be rejected by the validator; the
        # new fields are only required at /2.
        assert validate_payload(_v1_payload()) == []

    def test_v2_payload_missing_new_fields_is_flagged(self):
        payload = bench_payload(bench_workloads(["aget"]))
        del payload["workloads"]["aget"]["checks_elided_pct"]
        problems = validate_payload(payload)
        assert any("checks_elided_pct" in p for p in problems)

    def test_upgrade_shim_backfills_v1(self):
        v1 = _v1_payload()
        v2 = upgrade_payload(v1)
        assert v2["schema"] == SCHEMA
        assert v2["upgraded_from"] == SCHEMA_V1
        entry = v2["workloads"]["aget"]
        assert entry["checks_per_1k_steps"] == 0.0
        assert entry["checks_elided_pct"] == 0.0
        # The original payload is untouched (deep copy).
        assert v1["schema"] == SCHEMA_V1
        assert "checks_elided_pct" not in v1["workloads"]["aget"]

    def test_upgrade_passes_v2_through(self):
        payload = bench_payload(bench_workloads(["aget"]))
        assert upgrade_payload(payload) is payload

    def test_upgrade_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="unsupported bench schema"):
            upgrade_payload({"schema": "sharc-bench-interp/99"})


def _v2_payload():
    """A committed baseline from before the lockset-refinement PR:
    schema /2 without the locked-check fields."""
    payload = _strip_v4(bench_payload(bench_workloads(["aget"])))
    payload["schema"] = SCHEMA_V2
    del payload["lockset"]
    for entry in payload["workloads"].values():
        del entry["checks_locked_pct"]
        del entry["lockset_refined"]
    return payload


class TestSchemaV3:
    def test_payload_carries_locked_check_fields(self):
        payload = bench_payload(bench_workloads(["pfscan"]))
        assert payload["schema"] == SCHEMA
        assert payload["lockset"] is True
        entry = payload["workloads"]["pfscan"]
        assert 0.0 <= entry["checks_locked_pct"] <= 1.0
        assert entry["lockset_refined"] >= 0

    def test_v2_payload_still_validates(self):
        assert validate_payload(_v2_payload()) == []

    def test_v3_payload_missing_new_fields_is_flagged(self):
        payload = bench_payload(bench_workloads(["aget"]))
        del payload["workloads"]["aget"]["checks_locked_pct"]
        problems = validate_payload(payload)
        assert any("checks_locked_pct" in p for p in problems)

    def test_upgrade_shim_backfills_v2(self):
        v2 = _v2_payload()
        v3 = upgrade_payload(v2)
        assert v3["schema"] == SCHEMA
        assert v3["upgraded_from"] == SCHEMA_V2
        entry = v3["workloads"]["aget"]
        assert entry["checks_locked_pct"] == 0.0
        assert entry["lockset_refined"] == 0
        # /2 fields were already there; untouched
        assert entry["checks_elided_pct"] >= 0.0
        # The original payload is untouched (deep copy).
        assert v2["schema"] == SCHEMA_V2
        assert "checks_locked_pct" not in v2["workloads"]["aget"]

    def test_upgrade_shim_backfills_v1_with_both_generations(self):
        v3 = upgrade_payload(_v1_payload())
        assert v3["schema"] == SCHEMA
        assert v3["upgraded_from"] == SCHEMA_V1
        entry = v3["workloads"]["aget"]
        assert entry["checks_elided_pct"] == 0.0
        assert entry["checks_locked_pct"] == 0.0
        assert entry["lockset_refined"] == 0

    def test_v2_baseline_is_accepted_by_compare(self):
        current = bench_payload(bench_workloads(["aget"]))
        _, regressions = compare_payloads(_v2_payload(), current,
                                          threshold=0.99)
        assert regressions == []


def _v3_payload():
    """A committed baseline from before the compiled backend: schema /3
    without the backend/throughput columns."""
    payload = _strip_v4(bench_payload(bench_workloads(["aget"])))
    payload["schema"] = SCHEMA_V3
    return payload


class TestSchemaV4:
    """Every schema hop lands on /4: /1 -> /4 backfills three
    generations of fields, /2 -> /4 two, /3 -> /4 only the
    compiled-backend columns — and pre-/4 ``steps_per_sec`` (which
    timed the interpreter) becomes ``interp_steps_per_sec``."""

    def test_payload_carries_backend_fields(self):
        payload = bench_payload(bench_workloads(["aget"]))
        assert payload["schema"] == SCHEMA
        assert payload["backend"] in ("interp", "compiled")
        entry = payload["workloads"]["aget"]
        assert entry["interp_steps_per_sec"] >= 0
        assert entry["compiled_steps_per_sec"] >= 0
        assert entry["compiled_speedup"] >= 0.0

    def test_v3_payload_still_validates(self):
        assert validate_payload(_v3_payload()) == []

    def test_v4_payload_missing_new_fields_is_flagged(self):
        payload = bench_payload(bench_workloads(["aget"]))
        del payload["workloads"]["aget"]["compiled_speedup"]
        problems = validate_payload(payload)
        assert any("compiled_speedup" in p for p in problems)

    def test_upgrade_shim_backfills_v3(self):
        v3 = _v3_payload()
        v4 = upgrade_payload(v3)
        assert v4["schema"] == SCHEMA
        assert v4["upgraded_from"] == SCHEMA_V3
        assert v4["backend"] == "interp"
        entry = v4["workloads"]["aget"]
        assert entry["backend"] == "interp"
        assert entry["compiled_steps_per_sec"] == 0
        assert entry["compiled_speedup"] == 0.0
        # /3 timed the interpreter: its throughput becomes the interp
        # column, not zero.
        assert entry["interp_steps_per_sec"] == entry["steps_per_sec"]
        # /3's own fields pass through untouched.
        assert 0.0 <= entry["checks_locked_pct"] <= 1.0
        assert entry["lockset_refined"] >= 0
        # The original payload is untouched (deep copy).
        assert v3["schema"] == SCHEMA_V3
        assert "compiled_speedup" not in v3["workloads"]["aget"]

    def test_upgrade_shim_backfills_v2_with_both_generations(self):
        v4 = upgrade_payload(_v2_payload())
        assert v4["schema"] == SCHEMA
        assert v4["upgraded_from"] == SCHEMA_V2
        entry = v4["workloads"]["aget"]
        # /3 generation defaulted...
        assert entry["checks_locked_pct"] == 0.0
        assert entry["lockset_refined"] == 0
        # ... and the /4 generation too.
        assert entry["compiled_speedup"] == 0.0
        assert entry["interp_steps_per_sec"] == entry["steps_per_sec"]

    def test_upgrade_shim_backfills_v1_with_all_generations(self):
        v4 = upgrade_payload(_v1_payload())
        assert v4["schema"] == SCHEMA
        assert v4["upgraded_from"] == SCHEMA_V1
        entry = v4["workloads"]["aget"]
        assert entry["checks_per_1k_steps"] == 0.0
        assert entry["checks_elided_pct"] == 0.0
        assert entry["checks_locked_pct"] == 0.0
        assert entry["lockset_refined"] == 0
        assert entry["backend"] == "interp"
        assert entry["compiled_steps_per_sec"] == 0
        assert entry["compiled_speedup"] == 0.0
        assert entry["interp_steps_per_sec"] == entry["steps_per_sec"]

    def test_every_upgraded_payload_validates_at_v4(self):
        for legacy in (_v1_payload(), _v2_payload(), _v3_payload()):
            assert validate_payload(upgrade_payload(legacy)) == []

    def test_upgrade_passes_v4_through_unchanged(self):
        payload = bench_payload(bench_workloads(["aget"]))
        assert upgrade_payload(payload) is payload

    def test_v3_baseline_is_accepted_by_compare(self):
        current = bench_payload(bench_workloads(["aget"]))
        _, regressions = compare_payloads(_v3_payload(), current,
                                          threshold=0.99)
        assert regressions == []


class TestLocksetFlag:
    def test_no_lockset_payload_is_marked_and_unconverted(self, tmp_path):
        out = tmp_path / "off.json"
        assert main(["bench", "--workloads", "pfscan", "--out", str(out),
                     "--no-lockset"]) == 0
        payload = json.loads(out.read_text())
        assert payload["lockset"] is False
        assert payload["workloads"]["pfscan"]["checks_locked_pct"] == 0.0

    def test_step_axis_identical_on_and_off(self):
        on = bench_workloads(["pfscan"], lockset=True)[0]
        off = bench_workloads(["pfscan"], lockset=False)[0]
        assert on.sharc_steps == off.sharc_steps
        assert on.reports == off.reports


class TestBenchCompare:
    def test_identical_payloads_compare_clean(self):
        payload = bench_payload(bench_workloads(["aget"]))
        table, regressions = compare_payloads(payload, payload)
        assert regressions == []
        assert "aget" in table and "ok" in table

    def test_throughput_cliff_is_a_regression(self):
        payload = bench_payload(bench_workloads(["aget"]))
        slower = json.loads(json.dumps(payload))
        entry = slower["workloads"]["aget"]
        entry["steps_per_sec"] = max(1, entry["steps_per_sec"] // 10)
        table, regressions = compare_payloads(payload, slower,
                                              threshold=0.5)
        assert len(regressions) == 1
        assert "aget" in regressions[0]
        assert "REGRESSED" in table

    def test_v1_baseline_is_accepted(self):
        current = bench_payload(bench_workloads(["aget"]))
        _, regressions = compare_payloads(_v1_payload(), current,
                                          threshold=0.99)
        assert regressions == []

    def test_cli_compare_exits_3_on_regression(self, tmp_path, capsys):
        baseline = _v1_payload()
        for entry in baseline["workloads"].values():
            entry["steps_per_sec"] = entry["steps_per_sec"] * 1000
        old = tmp_path / "old.json"
        old.write_text(json.dumps(baseline))
        code = main(["bench", "--workloads", "aget", "--out", "-",
                     "--compare", str(old),
                     "--compare-threshold", "0.5"])
        assert code == 3
        assert "bench compare FAILED" in capsys.readouterr().err

    def test_cli_compare_ok_round_trip(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["bench", "--workloads", "aget",
                     "--out", str(out)]) == 0
        assert main(["bench", "--workloads", "aget", "--out", "-",
                     "--compare", str(out)]) == 0
        assert "bench compare ok" in capsys.readouterr().out


class TestCheckelimFlag:
    def test_no_checkelim_payload_is_marked_and_unelided(self, tmp_path):
        out = tmp_path / "off.json"
        assert main(["bench", "--workloads", "pfscan", "--out", str(out),
                     "--no-checkelim"]) == 0
        payload = json.loads(out.read_text())
        assert payload["checkelim"] is False
        assert payload["workloads"]["pfscan"]["checks_elided_pct"] == 0.0

    def test_step_axis_identical_on_and_off(self):
        on = bench_workloads(["pfscan"], checkelim=True)[0]
        off = bench_workloads(["pfscan"], checkelim=False)[0]
        assert on.sharc_steps == off.sharc_steps
        assert on.reports == off.reports
        assert on.checks_elided_pct > 0.0
        assert off.checks_elided_pct == 0.0
