"""CLI tests for ``sharc fuzz``: campaign runs and the corpus gate."""

import json
import os
import shutil

import pytest

from repro.cli import main

CORPUS = os.path.join(os.path.dirname(__file__), os.pardir, "fuzz",
                      "corpus")


class TestFuzzCampaignCLI:
    def test_small_clean_campaign_exits_zero(self, capsys):
        # racy_fraction 0 keeps the campaign deterministic: race-free
        # scenarios must produce zero reports on every schedule, so no
        # sweep-budget luck is involved.
        code = main(["fuzz", "--budget", "2", "--seeds", "2",
                     "--policy", "random", "--racy-fraction", "0",
                     "--gen-seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no oracle violations" in out
        assert "2 scenarios" in out

    def test_json_output_is_a_valid_report(self, capsys):
        from repro.fuzz import FUZZ_REPORT_SCHEMA, validate_fuzz_report

        code = main(["fuzz", "--budget", "2", "--seeds", "2",
                     "--policy", "random", "--racy-fraction", "0",
                     "--gen-seed", "3", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == FUZZ_REPORT_SCHEMA
        assert validate_fuzz_report(payload) == []
        assert len(payload["scenarios"]) == 2

    def test_report_out_writes_the_payload(self, tmp_path, capsys):
        from repro.fuzz import validate_fuzz_report

        path = tmp_path / "fuzz.json"
        code = main(["fuzz", "--budget", "1", "--seeds", "2",
                     "--policy", "random", "--racy-fraction", "0",
                     "--gen-seed", "3", "--report-out", str(path)])
        assert code == 0
        assert f"fuzz report written to {path}" \
            in capsys.readouterr().out
        assert validate_fuzz_report(json.loads(path.read_text())) == []


class TestReplayCorpusCLI:
    def test_committed_corpus_passes_under_both_backends(self, capsys):
        code = main(["fuzz", "--replay-corpus", CORPUS])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failing" in out
        assert "FAIL" not in out
        # Both backends replayed every artifact.
        assert out.count("(interp)") == out.count("(compiled)")
        assert out.count("(interp)") >= 10

    def test_tampered_corpus_fails_the_gate(self, tmp_path, capsys):
        name = sorted(os.listdir(CORPUS))[0]
        path = tmp_path / name
        shutil.copy(os.path.join(CORPUS, name), path)
        payload = json.loads(path.read_text())
        payload["fuzz"]["expect"]["steps"] += 1
        path.write_text(json.dumps(payload))
        code = main(["fuzz", "--replay-corpus", str(tmp_path),
                     "--backend", "interp"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out
        assert "steps diverged" in out

    def test_empty_corpus_directory_fails(self, tmp_path, capsys):
        code = main(["fuzz", "--replay-corpus", str(tmp_path)])
        assert code == 1
        assert "0 replays" in capsys.readouterr().out

    def test_json_rows_for_ci_consumption(self, tmp_path, capsys):
        name = sorted(os.listdir(CORPUS))[0]
        shutil.copy(os.path.join(CORPUS, name), tmp_path / name)
        code = main(["fuzz", "--replay-corpus", str(tmp_path),
                     "--backend", "interp", "--json"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows == [{"artifact": name, "backend": "interp",
                         "ok": True, "problems": []}]
