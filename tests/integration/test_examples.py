"""Every shipped example must run to success — the examples are part of
the public contract (deliverable b)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent.parent / "examples")
    .glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=240)
    assert proc.returncode == 0, (
        f"{script.name} failed:\n{proc.stdout[-2000:]}\n"
        f"{proc.stderr[-2000:]}")


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "race_detection", "ownership_transfer",
            "benchmarks_tour", "rwlock_extension"} <= names
