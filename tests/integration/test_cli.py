"""CLI tests: the ``sharc`` tool end to end."""

import pytest

from repro.cli import main


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.c"
    path.write_text("""
int counter = 0;
void *bump(void *arg) {
  int i;
  for (i = 0; i < 10; i++)
    counter = counter + 1;
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
""")
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text("""
mutex lk;
int locked(lk) counter = 0;
void *bump(void *arg) {
  mutexLock(&lk); counter = counter + 1; mutexUnlock(&lk);
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
""")
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.c"
    path.write_text("""
int readonly limit = 1;
int main() { limit = 2; return 0; }
""")
    return str(path)


class TestCheck:
    def test_check_clean_exits_zero(self, clean_file, capsys):
        assert main(["check", clean_file]) == 0
        out = capsys.readouterr().out
        assert "lock checks" in out

    def test_check_broken_exits_one(self, broken_file, capsys):
        assert main(["check", broken_file]) == 1
        assert "readonly" in capsys.readouterr().out


class TestInfer:
    def test_infer_prints_qualifiers(self, racy_file, capsys):
        assert main(["infer", racy_file]) == 0
        out = capsys.readouterr().out
        assert "int dynamic counter" in out
        assert "void dynamic *private bump" in out


class TestRun:
    def test_run_clean_program(self, clean_file, capsys):
        assert main(["run", clean_file, "--seed", "1"]) == 0

    def test_run_racy_program_reports(self, racy_file, capsys):
        code = 0
        for seed in range(6):
            code |= main(["run", racy_file, "--seed", str(seed)])
        assert code == 1
        assert "conflict(0x" in capsys.readouterr().out

    def test_run_stats_flag(self, clean_file, capsys):
        main(["run", clean_file, "--stats"])
        assert "steps=" in capsys.readouterr().out

    def test_rc_scheme_flag(self, clean_file):
        assert main(["run", clean_file, "--rc", "naive"]) == 0


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestEvaluationCommands:
    def test_table1_json(self, capsys):
        import json
        assert main(["table1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 6
        assert payload["summary"]["paper_total_annotations"] == 60

    def test_compare_eraser_command(self, capsys):
        assert main(["compare-eraser"]) == 0
        out = capsys.readouterr().out
        assert "FALSE" in out

    def test_run_with_eraser_checker(self, racy_file):
        code = 0
        for seed in range(4):
            code |= main(["run", racy_file, "--checker", "eraser",
                          "--seed", str(seed)])
        assert code == 1  # the lockset baseline also catches real races


class TestExplore:
    def test_explore_gen_finds_injected_race(self, capsys):
        assert main(["explore", "--gen", "42", "--seeds", "15",
                     "--policy", "random"]) == 0
        out = capsys.readouterr().out
        assert "injected race" in out and "FOUND" in out
        assert "replay with seed=" in out

    def test_explore_serial_misses_and_exits_one(self, capsys):
        assert main(["explore", "--gen", "42", "--seeds", "3",
                     "--policy", "serial"]) == 1
        assert "NOT found" in capsys.readouterr().out

    def test_explore_shrink_writes_replayable_artifact(
            self, tmp_path, capsys):
        artifact = str(tmp_path / "schedule.json")
        assert main(["explore", "--gen", "42", "--seeds", "15",
                     "--policy", "random", "--shrink",
                     "--out", artifact]) == 0
        out = capsys.readouterr().out
        assert "shrunk schedule" in out
        assert main(["explore", "--replay", artifact]) == 0
        assert "reproduced the saved report" in capsys.readouterr().out

    def test_explore_file_clean_program(self, clean_file, capsys):
        assert main(["explore", clean_file, "--seeds", "4",
                     "--policy", "random"]) == 0
        assert "no failing schedule" in capsys.readouterr().out

    def test_explore_differential_checker(self, capsys):
        assert main(["explore", "--gen", "11",
                     "--gen-kind", "lock-elision", "--seeds", "6",
                     "--policy", "random", "--checker", "both"]) == 0
        assert "differential sweep" in capsys.readouterr().out

    def test_explore_json_output(self, racy_file, capsys):
        import json as _json

        assert main(["explore", racy_file, "--seeds", "4",
                     "--policy", "random", "--json"]) in (0, 1)
        payload = _json.loads(capsys.readouterr().out)
        assert payload["schedules"] == 4

    def test_explore_requires_input(self, capsys):
        assert main(["explore"]) == 2
