"""Tests for the exploration-throughput benchmark
(``python -m repro.bench.explore_bench`` -> BENCH_explore.json)."""

import json
import os

from repro.bench.explore_bench import (
    SCHEMA, bench_explore, check_canary, main, render_table,
    validate_payload,
)


def _payload(flat_rate=8.0, camp_rate=28.0, speedup=3.5):
    """A synthetic but schema-complete payload, shaped like a real
    committed baseline."""
    return {
        "schema": SCHEMA,
        "workload": "pbzip2",
        "budget": 240,
        "jobs": 4,
        "policies": ["random", "pct", "pb"],
        "modes": {
            "flat": {"jobs": 4, "backend": "interp", "schedules": 240,
                     "wall_seconds": 29.3,
                     "schedules_per_sec": flat_rate,
                     "distinct_traces": 200},
            "campaign": {"jobs": 4, "backend": "compiled",
                         "schedules": 240, "wall_seconds": 8.3,
                         "schedules_per_sec": camp_rate,
                         "distinct_traces": 210, "shard_size": 32,
                         "sites_every": 8},
        },
        "speedup": speedup,
    }


class TestPayloadValidation:
    def test_synthetic_payload_validates(self):
        assert validate_payload(_payload()) == []

    def test_missing_fields_flagged(self):
        payload = _payload()
        del payload["modes"]["campaign"]["schedules_per_sec"]
        payload["schema"] = "bogus"
        problems = validate_payload(payload)
        assert any("schema" in p for p in problems)
        assert any("schedules_per_sec" in p for p in problems)

    def test_empty_payload_is_invalid(self):
        assert validate_payload({}) != []

    def test_committed_baseline_validates(self):
        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_explore.json")
        with open(path, encoding="utf-8") as handle:
            assert validate_payload(json.load(handle)) == []


class TestCanary:
    def test_identical_payloads_pass(self):
        assert check_canary(_payload(), _payload()) == []

    def test_rate_cliff_fails(self):
        current = _payload(camp_rate=28.0 / 10, speedup=3.5)
        problems = check_canary(_payload(), current, factor=3)
        assert len(problems) == 1
        assert "campaign" in problems[0]
        assert "canary floor" in problems[0]

    def test_lost_speedup_fails(self):
        current = _payload(speedup=1.01)
        problems = check_canary(_payload(), current, min_speedup=1.5)
        assert any("only 1.01x" in p for p in problems)

    def test_min_speedup_zero_disables_ratio_gate(self):
        current = _payload(speedup=0.9)
        assert check_canary(_payload(), current, min_speedup=0) == []

    def test_runner_spread_within_factor_passes(self):
        # a uniformly 2x-slower runner shifts both modes but not the
        # ratio: the cliff gate must tolerate it
        current = _payload(flat_rate=4.0, camp_rate=14.0, speedup=3.5)
        assert check_canary(_payload(), current, factor=3) == []

    def test_bad_factor_rejected(self):
        assert check_canary(_payload(), _payload(), factor=1.0)

    def test_render_table_mentions_both_modes(self):
        table = render_table(_payload())
        assert "flat" in table and "campaign" in table
        assert "speedup" in table


class TestBenchRun:
    """One real (tiny) flat-vs-campaign measurement; rates are not
    asserted — timing on a shared runner is not a unit test — only the
    deterministic axes."""

    def test_small_run_produces_valid_payload(self):
        payload = bench_explore("pbzip2", budget=6, jobs=1,
                                shard_size=3,
                                policies=("round-robin",))
        assert validate_payload(payload) == []
        assert payload["modes"]["flat"]["schedules"] == 6
        assert payload["modes"]["campaign"]["schedules"] == 6
        assert payload["modes"]["campaign"]["backend"] == "compiled"
        # both engines explore the same schedule space
        assert (payload["modes"]["flat"]["distinct_traces"]
                == payload["modes"]["campaign"]["distinct_traces"])


class TestBenchCLI:
    def test_gate_fails_on_cliff_baseline(self, tmp_path, capsys):
        inflated = _payload(flat_rate=1e9, camp_rate=1e9)
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(inflated))
        code = main(["--workload", "pbzip2", "--budget", "6",
                     "--jobs", "1", "--shard-size", "3",
                     "--policy", "round-robin", "--out", "-",
                     "--baseline", str(baseline), "--min-speedup", "0"])
        assert code == 1
        assert "canary FAILED" in capsys.readouterr().err

    def test_no_gate_reports_but_exits_zero(self, tmp_path, capsys):
        inflated = _payload(flat_rate=1e9, camp_rate=1e9)
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(inflated))
        code = main(["--workload", "pbzip2", "--budget", "6",
                     "--jobs", "1", "--shard-size", "3",
                     "--policy", "round-robin", "--out", "-",
                     "--baseline", str(baseline), "--min-speedup", "0",
                     "--no-gate"])
        assert code == 0
        assert "--no-gate" in capsys.readouterr().err

    def test_bad_baseline_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        code = main(["--baseline", str(bad), "--out", "-"])
        assert code == 2
        assert "invalid baseline" in capsys.readouterr().err

    def test_writes_payload_file(self, tmp_path, capsys):
        out = tmp_path / "BENCH_explore.json"
        code = main(["--workload", "pbzip2", "--budget", "6",
                     "--jobs", "1", "--shard-size", "3",
                     "--policy", "round-robin", "--out", str(out),
                     "--json"])
        assert code == 0
        payload = json.loads(out.read_text())
        assert validate_payload(payload) == []
        assert json.loads(capsys.readouterr().out) == payload
