"""Integration tests over the six Table 1 workload models.

(The heavier timing/shape checks live in benchmarks/; these tests cover
correctness of each model across schedules and the harness mechanics.)
"""

import re

import pytest

from repro.bench.harness import check_workload, format_table, run_workload
from repro.bench.workloads import ALL_WORKLOADS, get_workload
from repro.runtime.interp import run_checked

MODE_WORDS = re.compile(
    r"\b(private|readonly|racy|dynamic|locked\()")


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestPerWorkload:
    def test_annotated_variant_type_checks(self, name):
        checked = check_workload(get_workload(name), annotated=True)
        assert checked.ok, checked.render_diagnostics()

    def test_unannotated_variant_type_checks(self, name):
        checked = check_workload(get_workload(name), annotated=False)
        assert checked.ok, checked.render_diagnostics()

    def test_unannotated_variant_really_stripped(self, name):
        workload = get_workload(name)
        kept = MODE_WORDS.findall(workload.unannotated_source)
        full = MODE_WORDS.findall(workload.annotated_source)
        assert len(kept) < len(full)

    def test_annotated_run_clean(self, name):
        result = run_workload(get_workload(name))
        assert result.clean, result.sharc_result.render_reports()

    def test_produces_output(self, name):
        result = run_workload(get_workload(name))
        assert name.split("_")[0] in result.sharc_result.output

    def test_deterministic(self, name):
        workload = get_workload(name)
        a = run_workload(workload)
        b = run_workload(workload)
        assert a.sharc_steps == b.sharc_steps
        assert a.sharc_result.output == b.sharc_result.output

    def test_thread_count(self, name):
        result = run_workload(get_workload(name))
        assert result.threads_peak >= 3


class TestCrossSchedule:
    @pytest.mark.parametrize("name", ["pfscan", "pbzip2", "stunnel"])
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_queue_workloads_clean_across_seeds(self, name, seed):
        workload = get_workload(name)
        checked = check_workload(workload, annotated=True)
        result = run_checked(checked, seed=seed,
                             world=workload.world_factory(),
                             max_steps=workload.max_steps)
        assert result.error is None and result.deadlock is None, \
            f"{name}@{seed}: {result.error or result.deadlock}"
        assert not result.reports, result.render_reports()


class TestHarness:
    def test_format_table_renders_all_columns(self):
        result = run_workload(get_workload("aget"))
        table = format_table([result])
        assert "aget" in table
        assert "%dyn" in table and "(paper)" in table

    def test_row_includes_paper_numbers(self):
        result = run_workload(get_workload("fftw"))
        row = result.row()
        assert row["annots(paper)"] == 7
        assert row["time(paper)"] == "7%"

    def test_seed_override(self):
        workload = get_workload("fftw")
        a = run_workload(workload, seed=100)
        b = run_workload(workload, seed=101)
        assert a.clean and b.clean

    def test_rc_scheme_selectable(self):
        result = run_workload(get_workload("pbzip2"), rc_scheme="naive")
        assert result.clean

    def test_functional_outputs_correct(self):
        """The compression pipeline must actually compress: RLE output
        of the aaabbcdd-alphabet file is smaller than the input."""
        result = run_workload(get_workload("pbzip2"))
        out = result.sharc_result.output
        written = int(out.split()[2])
        assert 0 < written < 4096

    def test_fftw_transform_is_involutive_up_to_scale(self):
        """WHT applied twice scales by n: with reps=2 the checksum is
        n * original sum — a real correctness check of the kernel."""
        result = run_workload(get_workload("fftw"))
        out = result.sharc_result.output
        # "fftw: spectral sum <total> over <passes> passes"
        words = out.split()
        total = int(words[3])
        # each of the two workers logs reps=2 planner passes under the
        # planner lock
        assert int(words[5]) == 4
        # initial data: d[i] = (i*seed) % 17 - 8 summed over both arrays,
        # times N (=256) for the double transform.
        def original_sum(seed):
            return sum((i * seed) % 17 - 8 for i in range(256))
        expected = 256 * (original_sum(3) + original_sum(5))
        assert total == expected
