"""Cross-cutting integration tests: printer roundtrips on the real
workload sources, scheduler policies, and the negative soundness
demonstration."""

import pytest

from repro.bench.workloads import ALL_WORKLOADS, get_workload
from repro.cfront.parser import parse_program
from repro.cfront.pretty import pretty_program
from repro.sharc.checker import check_source
from repro.runtime.interp import run_checked


class TestPrinterOnRealSources:
    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_workload_pretty_roundtrip(self, name):
        """pretty(parse(x)) must itself parse, for every workload."""
        source = get_workload(name).annotated_source
        prog = parse_program(source, f"{name}.c")
        text = pretty_program(prog)
        again = parse_program(text, f"{name}-pp.c")
        assert {f.name for f in again.functions()} == \
            {f.name for f in prog.functions()}

    @pytest.mark.parametrize("name", ALL_WORKLOADS)
    def test_inferred_view_renders(self, name):
        checked = check_source(get_workload(name).annotated_source,
                               f"{name}.c")
        assert checked.ok
        text = checked.inferred_source()
        assert "private" in text or "dynamic" in text


class TestSchedulerPolicies:
    @pytest.fixture(scope="class")
    def pipeline(self, request):
        import pathlib
        path = (pathlib.Path(__file__).parent.parent.parent
                / "examples" / "pipeline_annotated.c")
        checked = check_source(path.read_text(), "pipeline.c")
        assert checked.ok
        return checked

    @pytest.mark.parametrize("policy", ["random", "round-robin"])
    def test_pipeline_clean_under_policy(self, pipeline, policy):
        result = run_checked(pipeline, seed=1, policy=policy,
                             max_steps=900_000)
        assert result.clean, (policy, result.deadlock,
                              result.render_reports())

    def test_burst_length_changes_interleaving_not_result(self,
                                                          pipeline):
        for burst in (1, 4, 16):
            result = run_checked(pipeline, seed=2, max_burst=burst,
                                 max_steps=900_000)
            assert result.clean
            assert result.output == "processed 8 items\n"


class TestNegativeSoundness:
    def test_record_mode_breaks_definition1(self):
        """Without enforcement (record mode) a racy program violates the
        Definition 1 invariants — showing the theorem's hypotheses are
        necessary, not decorative."""
        import random as rnd
        from repro.formal.lang import (
            Assign, Global, IntType, Mode, Num, Program, Spawn,
            ThreadDef, Var, seq_of,
        )
        from repro.formal.semantics import Machine, MachineConfig
        from repro.formal.soundness import (
            ConsistencyError, check_consistency,
        )
        from repro.formal.statics import typecheck

        body = seq_of([Assign(Var("g"), Num(i)) for i in range(6)])
        program = typecheck(Program(
            globals=[Global("g", IntType(Mode.DYNAMIC))],
            threads=[ThreadDef("w", [], body),
                     ThreadDef("main", [],
                               seq_of([Spawn("w"), Spawn("w")]))],
            main="main"))
        broke = 0
        for seed in range(12):
            machine = Machine(program,
                              MachineConfig(seed=seed, enforce="record"))
            try:
                machine.run(invariant_hook=check_consistency)
            except ConsistencyError:
                broke += 1
        assert broke > 0

    def test_fail_mode_never_breaks_definition1(self):
        import random as rnd
        from repro.formal.gen import gen_program
        from repro.formal.semantics import Machine, MachineConfig
        from repro.formal.soundness import check_consistency
        from repro.formal.statics import typecheck

        for seed in range(15):
            program = typecheck(gen_program(rnd.Random(seed)))
            machine = Machine(program,
                              MachineConfig(seed=seed, enforce="fail",
                                            max_steps=2000))
            machine.run(invariant_hook=check_consistency)  # no raise


class TestBenchHarnessUnits:
    def test_averages_match_paper_format(self):
        from repro.bench.table1 import averages
        from repro.bench.harness import BenchResult, PaperRow
        row = PaperRow("x", 3, "1k", 5, 5, 0.10, 0.20, 0.5)
        results = [BenchResult(
            workload="x", threads_peak=3, base_steps=100,
            sharc_steps=110, time_overhead=0.10, mem_overhead=0.20,
            pct_dynamic=0.5, reports=0, clean=True, annotations=5,
            changes=5, paper=row)]
        summary = averages(results)
        assert summary["avg_time_overhead"] == pytest.approx(0.10)
        assert summary["total_annotations"] == 5
        assert summary["paper_total_annotations"] == 60

    def test_row_handles_unmeasurable_time(self):
        from repro.bench.harness import BenchResult, PaperRow
        row = PaperRow("aget", 3, "1k", 7, 7, None, 0.3, 0.08)
        result = BenchResult(
            workload="aget", threads_peak=3, base_steps=1,
            sharc_steps=1, time_overhead=0.004, mem_overhead=0.05,
            pct_dynamic=0.09, reports=0, clean=True, annotations=7,
            changes=0, paper=row)
        assert result.row()["time"] == "n/a"
