"""The Section 2.1 walkthrough, end to end — the paper's running
example, as an integration test."""

import pytest

from tests.conftest import check, check_ok
from repro.errors import DiagKind
from repro.runtime.interp import run_checked

UNANNOTATED = r"""
typedef struct stage {
  struct stage *next;
  cond *cv;
  mutex *mut;
  char *sdata;
  void (*fun)(char *fdata);
} stage_t;

int racy progress = 0;

void *thrFunc(void *d) {
  stage_t *S = d;
  stage_t *nextS = S->next;
  char *ldata;
  int k;
  for (k = 0; k < 3; k++) {
    mutexLock(S->mut);
    while (S->sdata == NULL)
      condWait(S->cv, S->mut);
    ldata = S->sdata;
    S->sdata = NULL;
    condSignal(S->cv);
    mutexUnlock(S->mut);
    S->fun(ldata);
    progress++;
    if (nextS) {
      mutexLock(nextS->mut);
      while (nextS->sdata)
        condWait(nextS->cv, nextS->mut);
      nextS->sdata = ldata;
      condSignal(nextS->cv);
      mutexUnlock(nextS->mut);
    } else {
      free(ldata);
    }
  }
  return NULL;
}

void work(char *fdata) {
  int i;
  for (i = 0; i < 16; i++)
    fdata[i] = fdata[i] + 1;
}

mutex m1; mutex m2; cond c1; cond c2;

stage_t *mkstage(stage_t *next, mutex *m, cond *c) {
  stage_t *st = malloc(sizeof(stage_t));
  st->next = next;
  st->cv = c;
  st->mut = m;
  st->sdata = NULL;
  st->fun = work;
  return st;
}

int main() {
  stage_t *s1;
  stage_t *s2;
  int t1; int t2; int i;
  s2 = mkstage(NULL, &m2, &c2);
  s1 = mkstage(s2, &m1, &c1);
  t1 = thread_create(thrFunc, s1);
  t2 = thread_create(thrFunc, s2);
  for (i = 0; i < 3; i++) {
    char *buf = malloc(16);
    memset(buf, i, 16);
    mutexLock(s1->mut);
    while (s1->sdata)
      condWait(s1->cv, s1->mut);
    s1->sdata = buf;
    condSignal(s1->cv);
    mutexUnlock(s1->mut);
  }
  thread_join(t1);
  thread_join(t2);
  printf("processed %d items\n", progress);
  return 0;
}
"""


class TestUnannotatedPipeline:
    """Step 1: SharC compiles the code as-is, infers modes, and reports
    the intentional sharing as conflicts."""

    @pytest.fixture(scope="class")
    def checked(self):
        return check_ok(UNANNOTATED, "pipeline_test.c")

    def test_figure2_inference(self, checked):
        text = checked.inferred_source()
        assert "struct __mutex racy *readonly mut" in text or \
            "struct __mutex racy *inherit mut" in text
        assert "void dynamic *private thrFunc" in text
        assert "char dynamic *private ldata" in text

    def test_sdata_field_inferred_dynamic(self, checked):
        sdata = dict(checked.program.structs.fields("stage"))["sdata"]
        assert sdata.base.target.mode.is_dynamic

    def test_runtime_reports_sdata_sharing(self, checked):
        """The paper's first report: the sdata field handoff."""
        result = run_checked(checked, seed=3, max_steps=800_000)
        assert result.error is None and result.deadlock is None
        lvalues = {r.who.lvalue for r in result.reports} | \
                  {r.last.lvalue for r in result.reports if r.last}
        assert any("sdata" in lv for lv in lvalues)

    def test_runtime_reports_buffer_sharing(self, checked):
        """The paper's second report: the buffer behind fdata/ldata."""
        result = run_checked(checked, seed=3, max_steps=800_000)
        lvalues = {r.who.lvalue for r in result.reports} | \
                  {r.last.lvalue for r in result.reports if r.last}
        assert any("fdata" in lv or "ldata" in lv or "buf" in lv
                   for lv in lvalues)

    def test_reports_render_in_paper_format(self, checked):
        result = run_checked(checked, seed=3, max_steps=800_000)
        text = result.reports[0].render()
        assert "conflict(0x" in text and "who(" in text


class TestAnnotatedPipeline:
    """Step 2: two annotations + suggested casts make every run clean."""

    @pytest.fixture(scope="class")
    def checked(self, request):
        import pathlib
        path = (pathlib.Path(__file__).parent.parent.parent
                / "examples" / "pipeline_annotated.c")
        return check_ok(path.read_text(), "pipeline_annotated.c")

    def test_static_clean(self, checked):
        assert not checked.errors
        assert checked.check_stats.lock_checks > 0
        assert checked.check_stats.oneref_checks >= 2

    @pytest.mark.parametrize("seed", range(10))
    def test_every_schedule_clean(self, checked, seed):
        result = run_checked(checked, seed=seed, max_steps=800_000)
        assert result.clean, result.render_reports() or result.deadlock
        assert result.output == "processed 8 items\n"

    def test_ldata_claimed_private(self, checked):
        from repro.sharc.defaults import collect_local_decls
        func = checked.program.function("thrFunc")
        ldata = next(d for d in collect_local_decls(func)
                     if d.name == "ldata")
        assert ldata.qtype.base.target.mode.is_private


class TestMissingCasts:
    """The paper's workflow: annotations without the casts fail to
    type-check, and SharC suggests exactly where the casts go."""

    def test_suggestions_point_at_both_handoffs(self):
        source = UNANNOTATED.replace(
            "char *sdata;",
            "char locked(mut) * locked(mut) sdata;").replace(
            "void (*fun)(char *fdata);",
            "void (*fun)(char private *fdata);")
        checked = check(source, "pipeline_test.c")
        assert not checked.ok
        suggestion_lines = {d.loc.line for d in checked.suggestions}
        assert len(suggestion_lines) >= 2
        texts = " ".join(d.message for d in checked.suggestions)
        assert "SCAST(" in texts
