"""CLI tests for ``sharc analyze`` — the static lockset view."""

import json

import pytest

from repro.cli import ANALYZE_SCHEMA, main


@pytest.fixture
def locked_file(tmp_path):
    path = tmp_path / "locked.c"
    path.write_text("""
mutex lk;
int counter = 0;
void *bump(void *arg) {
  mutexLock(&lk); counter = counter + 1; mutexUnlock(&lk);
  return NULL;
}
int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1); thread_join(t2);
  mutexLock(&lk);
  int c = counter;
  mutexUnlock(&lk);
  return c;
}
""")
    return str(path)


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.c"
    path.write_text("""
int shared = 0;
void *w(void *arg) { shared = shared + 1; return NULL; }
int main() {
  int t1 = thread_create(w, NULL);
  int t2 = thread_create(w, NULL);
  thread_join(t1); thread_join(t2);
  return shared;
}
""")
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.c"
    path.write_text("""
int readonly limit = 1;
int main() { limit = 2; return 0; }
""")
    return str(path)


class TestHumanOutput:
    def test_sections_and_exit_zero(self, locked_file, capsys):
        assert main(["analyze", locked_file]) == 0
        out = capsys.readouterr().out
        assert "== inferred modes ==" in out
        assert "== shared locations ==" in out
        assert "== refinements ==" in out
        assert "refined 'counter' to locked(lk)" in out
        assert "lockset:" in out

    def test_static_races_section(self, racy_file, capsys):
        assert main(["analyze", racy_file]) == 0
        out = capsys.readouterr().out
        assert "== static races ==" in out
        assert "possible data race on 'shared'" in out

    def test_broken_file_exits_one(self, broken_file, capsys):
        assert main(["analyze", broken_file]) == 1
        assert "readonly" in capsys.readouterr().out


class TestFailOnRace:
    def test_races_exit_two(self, racy_file):
        assert main(["analyze", racy_file, "--fail-on-race"]) == 2

    def test_clean_file_still_zero(self, locked_file):
        assert main(["analyze", locked_file, "--fail-on-race"]) == 0


class TestJson:
    def test_payload_schema_and_content(self, locked_file, capsys):
        assert main(["analyze", locked_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == ANALYZE_SCHEMA
        assert payload["ok"] is True
        assert payload["errors"] == []
        names = {g["name"] for g in payload["globals"]}
        assert {"lk", "counter"} <= names
        assert "bump" in payload["formals"]
        locations = {l["location"]: l for l in payload["locations"]}
        assert locations["counter"]["lockset"] == ["lk"]
        assert locations["counter"]["writes"] >= 1
        refinements = {r["location"]: r for r in payload["refinements"]}
        assert refinements["counter"]["lock"] == "lk"
        assert payload["static_races"] == []

    def test_static_race_entries(self, racy_file, capsys):
        assert main(["analyze", racy_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        races = payload["static_races"]
        assert races
        assert races[0]["key"].startswith("static-race shared@")
        assert "possible data race" in races[0]["message"]
        assert any("conflicting" in n for n in races[0]["notes"])

    def test_out_writes_file(self, locked_file, tmp_path, capsys):
        out = str(tmp_path / "analysis.json")
        assert main(["analyze", locked_file, "--json",
                     "--out", out]) == 0
        assert "written to" in capsys.readouterr().out
        with open(out, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["schema"] == ANALYZE_SCHEMA

    def test_json_fail_on_race_still_emits_payload(self, racy_file,
                                                   capsys):
        assert main(["analyze", racy_file, "--json",
                     "--fail-on-race"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["static_races"]


class TestAbsintSection:
    def test_payload_absint_shape(self, racy_file, capsys):
        assert main(["analyze", racy_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        ai = payload["absint"]
        assert ai["terminated"] is True
        assert ai["rounds"] >= 1
        assert ai["refuted"] + ai["confirmed"] == len(ai["verdicts"])
        # every verdict decorates a reported static race
        keys = {r["key"] for r in payload["static_races"]}
        for v in ai["verdicts"]:
            assert (f"static-race {v['location']}@{v['line']}"
                    in keys)
            assert v["verdict"] in ("interval-refuted",
                                    "interval-confirmed")

    def test_ai_flag_prints_section(self, racy_file, capsys):
        assert main(["analyze", racy_file, "--ai"]) == 0
        out = capsys.readouterr().out
        assert "== abstract interpretation ==" in out
        assert "absint:" in out

    def test_race_lines_carry_verdicts(self, racy_file, capsys):
        assert main(["analyze", racy_file]) == 0
        out = capsys.readouterr().out
        assert "absint: interval-" in out


class TestUpgradeShim:
    """Round-trip coverage for the sharc-analyze/1 -> /2 shim."""

    def _payload(self, path, capsys):
        assert main(["analyze", path, "--json"]) == 0
        return json.loads(capsys.readouterr().out)

    def test_v2_passes_through_unchanged(self, locked_file, capsys):
        from repro.cli import upgrade_analyze_payload

        payload = self._payload(locked_file, capsys)
        assert upgrade_analyze_payload(payload) == payload

    def test_v1_round_trips_to_v2(self, racy_file, capsys):
        from repro.cli import (ANALYZE_SCHEMA, ANALYZE_SCHEMA_V1,
                               upgrade_analyze_payload)

        payload = self._payload(racy_file, capsys)
        legacy = {k: v for k, v in payload.items() if k != "absint"}
        legacy["schema"] = ANALYZE_SCHEMA_V1
        upgraded = upgrade_analyze_payload(legacy)
        assert upgraded["schema"] == ANALYZE_SCHEMA
        assert upgraded["upgraded_from"] == ANALYZE_SCHEMA_V1
        # the shim must not invent analysis results: neutral defaults
        ai = upgraded["absint"]
        assert ai["terminated"] is True
        assert ai["rounds"] == 0
        assert ai["refuted"] == 0 and ai["confirmed"] == 0
        assert ai["verdicts"] == []
        # ...and must not perturb anything it did not add
        for key, value in legacy.items():
            if key != "schema":
                assert upgraded[key] == value

    def test_v1_input_is_not_mutated(self, racy_file, capsys):
        from repro.cli import (ANALYZE_SCHEMA_V1,
                               upgrade_analyze_payload)

        payload = self._payload(racy_file, capsys)
        legacy = {k: v for k, v in payload.items() if k != "absint"}
        legacy["schema"] = ANALYZE_SCHEMA_V1
        before = json.dumps(legacy, sort_keys=True)
        upgrade_analyze_payload(legacy)
        assert json.dumps(legacy, sort_keys=True) == before

    def test_unknown_schema_rejected(self):
        import pytest as _pytest

        from repro.cli import upgrade_analyze_payload

        with _pytest.raises(ValueError):
            upgrade_analyze_payload({"schema": "sharc-analyze/99"})


class TestWorkloadSources:
    """The CI lint gate runs analyze over the Table 1 workload sources;
    keep that path healthy from the test suite too."""

    def test_annotated_workloads_analyze_clean(self, tmp_path):
        from repro.bench.workloads import all_workloads

        for workload in all_workloads():
            path = tmp_path / f"{workload.name}.c"
            path.write_text(workload.annotated_source)
            code = main(["analyze", str(path), "--json",
                         "--out", str(tmp_path / "out.json")])
            assert code == 0, workload.name


class TestAnalyzeGate:
    """The committed golden file must match what the analysis reports
    *today* — CI's lint gate, exercised from the suite so a drifting
    golden fails before the workflow does."""

    def test_committed_golden_matches(self, tmp_path, capsys):
        from repro.sharc.analyze_gate import main as gate_main

        # Run from the repo root (tests execute there): default golden
        # and examples directory.
        assert gate_main(["--out-dir", str(tmp_path / "art")]) == 0
        assert "analyze gate ok" in capsys.readouterr().out
        written = list((tmp_path / "art").glob("*.json"))
        assert len(written) == 13  # 1 example + 6 workloads x 2 variants

    def test_unexpected_race_fails_gate(self, tmp_path, capsys):
        import json

        from repro.sharc.analyze_gate import (analyze_targets,
                                              check_golden, gate_targets,
                                              golden_from_payloads,
                                              main as gate_main)

        payloads = analyze_targets(gate_targets(examples_dir=None))
        golden = golden_from_payloads(payloads)
        golden["races"]["workloads/pfscan.unannotated.c"].pop()
        assert any("unexpected" in p
                   for p in check_golden(golden, payloads))
        # ...and end to end through the CLI entry point:
        path = tmp_path / "golden.json"
        path.write_text(json.dumps(golden))
        assert gate_main(["--golden", str(path),
                          "--examples-dir", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "analyze gate FAILED" in err
        assert "unexpected" in err
        # stale entries fail too, symmetrically
        golden2 = golden_from_payloads(payloads)
        golden2["races"]["workloads/aget.unannotated.c"].append(
            "static-race ghost@1")
        assert any("stale" in p for p in check_golden(golden2, payloads))

    def test_missing_golden_asks_for_update(self, tmp_path, capsys):
        from repro.sharc.analyze_gate import main as gate_main

        assert gate_main(["--golden", str(tmp_path / "nope.json"),
                          "--examples-dir", str(tmp_path)]) == 2
        assert "--update" in capsys.readouterr().err

    def test_absint_count_drift_fails_gate(self):
        from repro.sharc.analyze_gate import (analyze_targets,
                                              check_golden, gate_targets,
                                              golden_from_payloads)

        payloads = analyze_targets(gate_targets(examples_dir=None))
        golden = golden_from_payloads(payloads)
        golden["absint"]["workloads/fftw.annotated.c"]["refuted"] += 1
        problems = check_golden(golden, payloads)
        assert any("absint verdicts" in p for p in problems)

    def test_v1_golden_still_accepted(self):
        """A pre-absint golden pins race keys only; the gate must not
        demand absint counts it cannot contain."""
        from repro.sharc.analyze_gate import (GOLDEN_SCHEMA_V1,
                                              analyze_targets,
                                              check_golden, gate_targets,
                                              golden_from_payloads)

        payloads = analyze_targets(gate_targets(examples_dir=None))
        golden = golden_from_payloads(payloads)
        golden["schema"] = GOLDEN_SCHEMA_V1
        del golden["absint"]
        assert check_golden(golden, payloads) == []

    def test_ai_consistency_catches_tampered_verdicts(self):
        import copy

        from repro.sharc.analyze_gate import (analyze_targets,
                                              check_ai_consistency,
                                              gate_targets)

        payloads = analyze_targets(
            [t for t in gate_targets(examples_dir=None)
             if "fftw" in t[0]])
        assert check_ai_consistency(payloads) == []
        broken = copy.deepcopy(payloads)
        broken["workloads/fftw.annotated.c"]["absint"]["verdicts"] \
            .pop()
        problems = check_ai_consistency(broken)
        assert any("one-to-one" in p for p in problems)
        assert any("counts disagree" in p for p in problems)
