"""Documentation consistency: the deliverable docs must exist and refer
to real artifacts."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent.parent


@pytest.fixture(scope="module")
def docs():
    return {name: (ROOT / name).read_text()
            for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md")}


def test_all_docs_exist(docs):
    for name, text in docs.items():
        assert len(text) > 1000, name


def test_design_module_map_matches_tree(docs):
    """Every module named in DESIGN.md's inventory exists on disk."""
    in_map = re.findall(r"^\s{2,}(\w+\.py)", docs["DESIGN.md"],
                        re.MULTILINE)
    assert in_map, "module map missing"
    src = {p.name for p in (ROOT / "src" / "repro").rglob("*.py")}
    missing = [m for m in set(in_map) if m not in src]
    assert not missing, missing


def test_readme_examples_exist(docs):
    referenced = re.findall(r"examples/(\w+\.py)", docs["README.md"])
    assert referenced
    for name in set(referenced):
        assert (ROOT / "examples" / name).exists(), name


def test_experiments_commands_reference_real_modules(docs):
    modules = re.findall(r"python -m (repro\.[.\w]+)",
                         docs["EXPERIMENTS.md"])
    assert modules
    import importlib
    for mod in set(modules):
        importlib.import_module(mod)


def test_paper_identity_confirmed_in_design(docs):
    assert "PLDI 2008" in docs["DESIGN.md"]
    assert "10.1145/1375581.1375600" in docs["DESIGN.md"]


def test_design_lists_every_table_and_figure_experiment(docs):
    for marker in ("Table 1", "Fig. 1/2", "soundness", "8n−1"):
        assert marker in docs["DESIGN.md"], marker
