"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one experiment from the paper's evaluation
(Section 5) and *asserts the qualitative claims* while pytest-benchmark
times the run: the numbers land in the benchmark table, the shape checks
land in the assertions.
"""

import pytest


@pytest.fixture(scope="session")
def table1_results():
    """Run the whole Table 1 once per session; benchmarks measure the
    individual workloads, shape tests read from here."""
    from repro.bench.table1 import generate
    return {r.workload: r for r in generate()}
