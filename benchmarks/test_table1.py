"""Table 1 (Section 5): the six-benchmark evaluation.

One pytest-benchmark entry per program measures the instrumented run;
the shape assertions pin the paper's qualitative findings:

- all annotated programs run clean (the 60 annotations removed every
  false positive);
- pfscan has by far the highest share of dynamic accesses (~80% in the
  paper);
- pbzip2 and stunnel run at ~0% dynamic accesses;
- aget is network-bound (time overhead lost in the noise);
- dillo has the highest memory overhead (bogus pointers refcounted);
- average time overhead stays well under Eraser's 10x-30x.
"""

import pytest

from repro.bench.harness import run_workload
from repro.bench.workloads import ALL_WORKLOADS, get_workload
from repro.sharc.checker import check_source
from repro.runtime.interp import run_checked


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_workload_sharc_run(name, benchmark):
    """Times one SharC-instrumented run of each Table 1 workload."""
    workload = get_workload(name)
    checked = check_source(workload.annotated_source, f"{name}.c")
    assert checked.ok, checked.render_diagnostics()

    def run():
        return run_checked(checked, seed=workload.seed,
                           world=workload.world_factory(),
                           max_steps=workload.max_steps)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.clean, result.render_reports()
    benchmark.extra_info["steps"] = result.stats.steps_total
    benchmark.extra_info["pct_dynamic"] = round(
        result.stats.pct_dynamic, 4)


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_workload_baseline_run(name, benchmark):
    """Times the uninstrumented baseline (the 'Orig.' column)."""
    workload = get_workload(name)
    checked = check_source(workload.annotated_source, f"{name}.c")

    def run():
        return run_checked(checked, seed=workload.seed,
                           world=workload.world_factory(),
                           instrument=False,
                           max_steps=workload.max_steps)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.error is None and result.deadlock is None


class TestTable1Shape:
    """The orderings the paper's narrative relies on."""

    def test_all_annotated_runs_clean(self, table1_results):
        for name, row in table1_results.items():
            assert row.clean, f"{name} reported violations"

    def test_pfscan_has_highest_dynamic_share(self, table1_results):
        pfscan = table1_results["pfscan"].pct_dynamic
        assert pfscan > 0.5
        for name, row in table1_results.items():
            if name != "pfscan":
                assert pfscan > row.pct_dynamic, name

    def test_ownership_transfer_workloads_near_zero_dynamic(
            self, table1_results):
        assert table1_results["pbzip2"].pct_dynamic < 0.02
        assert table1_results["stunnel"].pct_dynamic < 0.02
        assert table1_results["fftw"].pct_dynamic < 0.05

    def test_aget_time_overhead_unmeasurable(self, table1_results):
        """Network-bound: lost in the noise (paper reports n/a) — a few
        percent at most, and the smallest measurable of the six."""
        aget = abs(table1_results["aget"].time_overhead)
        assert aget < 0.04

    def test_dillo_highest_memory_overhead(self, table1_results):
        dillo = table1_results["dillo"].mem_overhead
        for name, row in table1_results.items():
            if name not in ("dillo", "stunnel"):
                assert dillo > row.mem_overhead, name
        assert dillo > 0.2

    def test_time_overheads_far_below_eraser(self, table1_results):
        """Eraser is 10x-30x; SharC's point is production-tolerable
        overheads (2-14% in the paper)."""
        for name, row in table1_results.items():
            assert row.time_overhead < 0.5, name

    def test_thread_counts_match_paper(self, table1_results):
        for name, row in table1_results.items():
            expected = row.paper.threads
            assert abs(row.threads_peak - expected) <= 2, name

    def test_annotation_totals_comparable(self, table1_results):
        ours = sum(r.annotations for r in table1_results.values())
        assert 30 <= ours <= 90  # paper: 60

    def test_unannotated_variants_type_check_and_report(self):
        """The baseline claim: SharC 'can check any C program' without
        annotations — it just reports the intentional sharing."""
        noisy = 0
        for name in ("pfscan", "dillo"):
            workload = get_workload(name)
            checked = check_source(workload.unannotated_source,
                                   f"{name}-un.c")
            assert checked.ok, checked.render_diagnostics()
            result = run_checked(checked, seed=workload.seed,
                                 world=workload.world_factory(),
                                 max_steps=workload.max_steps)
            assert result.error is None and result.deadlock is None
            noisy += len(result.reports)
        assert noisy > 0
