"""Section 6.2 comparison: SharC vs an Eraser-style lockset detector.

The paper positions SharC against Eraser-class tools on two axes:
overhead (Eraser: 10x-30x, monitoring every access; SharC: 2-14%) and
false positives (lockset state machines cannot model ownership transfer;
SharC's sharing casts model it directly).  Both axes are measured here on
the same correctly synchronized handoff pipeline.
"""

import pytest

from repro.bench.comparison_eraser import SOURCE, run_comparison
from repro.sharc.checker import check_source
from repro.runtime.interp import run_checked


@pytest.fixture(scope="module")
def checked():
    result = check_source(SOURCE, "handoff.c")
    assert result.ok, result.render_diagnostics()
    return result


@pytest.mark.parametrize("mode", ["baseline", "sharc", "eraser"])
def test_handoff_pipeline(mode, benchmark, checked):
    def run():
        if mode == "baseline":
            return run_checked(checked, seed=4, instrument=False,
                               max_steps=4_000_000)
        if mode == "sharc":
            return run_checked(checked, seed=4, max_steps=4_000_000)
        return run_checked(checked, seed=4, checker="eraser",
                           max_steps=4_000_000)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.error is None and result.deadlock is None
    benchmark.extra_info["reports"] = len(result.reports)
    benchmark.extra_info["steps"] = result.stats.steps_total


class TestComparisonShape:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_comparison()

    def test_sharc_has_no_false_positives(self, comparison):
        assert comparison.sharc_reports == 0

    def test_eraser_false_positive_on_ownership_transfer(self,
                                                         comparison):
        assert comparison.eraser_reports > 0

    def test_eraser_overhead_an_order_of_magnitude_higher(self,
                                                          comparison):
        assert comparison.eraser_overhead > \
            5 * max(comparison.sharc_overhead, 0.01)

    def test_sharc_overhead_production_tolerable(self, comparison):
        assert comparison.sharc_overhead < 0.15
