"""The annotation-sweep ablation: Sections 1 and 5's usability claim.

"As the user adds more annotations, false warnings are reduced, and
performance improves."  The benchmark runs the pfscan model at each
annotation level; the assertions pin monotonicity and the zero-report end
state.
"""

import pytest

from repro.bench.ablation_annot import sweep_pfscan


@pytest.fixture(scope="module")
def sweep():
    return sweep_pfscan()


def test_annotation_sweep(benchmark):
    points = benchmark.pedantic(sweep_pfscan, rounds=1, iterations=1)
    assert len(points) == 5


class TestSweepShape:
    def test_every_level_type_checks(self, sweep):
        assert all(p.static_ok for p in sweep)

    def test_reports_monotonically_non_increasing(self, sweep):
        reports = [p.reports for p in sweep]
        assert all(a >= b for a, b in zip(reports, reports[1:])), reports

    def test_unannotated_program_is_noisy(self, sweep):
        assert sweep[0].reports > 10

    def test_fully_annotated_program_is_clean(self, sweep):
        assert sweep[-1].reports == 0

    def test_each_annotation_group_helps(self, sweep):
        """At least two distinct strict drops across the sweep (each
        lock family removes its own cluster of false positives)."""
        reports = [p.reports for p in sweep]
        drops = sum(1 for a, b in zip(reports, reports[1:]) if a > b)
        assert drops >= 2

    def test_dynamic_share_decreases_with_annotations(self, sweep):
        assert sweep[-1].pct_dynamic < sweep[0].pct_dynamic
