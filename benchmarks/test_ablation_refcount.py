"""Section 4.3 ablation: naive atomic RC vs the Levanoni–Petrank
adaptation.

The paper: applying eager atomic reference counting to all candidate
pointer writes costs "over 60% in many cases"; the LP adaptation is what
made the overhead acceptable.  The benchmark times all three
configurations of the pointer-churn workload; the assertions pin the
ordering (baseline < LP < naive) and the magnitude gap.
"""

import pytest

from repro.bench.ablation_rc import SOURCE, run_ablation
from repro.sharc.checker import check_source
from repro.runtime.interp import run_checked


@pytest.fixture(scope="module")
def checked():
    result = check_source(SOURCE, "rc_ablation.c")
    assert result.ok, result.render_diagnostics()
    return result


@pytest.mark.parametrize("scheme", ["off", "lp", "naive"])
def test_rc_scheme_run(scheme, benchmark, checked):
    def run():
        return run_checked(checked, seed=2,
                           instrument=(scheme != "off"),
                           rc_scheme=scheme, max_steps=4_000_000)
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.error is None and result.deadlock is None
    benchmark.extra_info["steps"] = result.stats.steps_total
    benchmark.extra_info["rc_steps"] = result.stats.steps_rc


class TestRCAblationShape:
    @pytest.fixture(scope="class")
    def ablation(self):
        return run_ablation()

    def test_lp_strictly_cheaper_than_naive(self, ablation):
        assert ablation.lp_overhead < ablation.naive_overhead

    def test_naive_overhead_substantial(self, ablation):
        """The paper's 'unacceptable on current hardware' finding."""
        assert ablation.naive_overhead > 0.30

    def test_lp_overhead_acceptable(self, ablation):
        assert ablation.lp_overhead < 0.30

    def test_gap_is_large(self, ablation):
        assert ablation.naive_overhead > 2 * ablation.lp_overhead or \
            ablation.naive_overhead - ablation.lp_overhead > 0.15
