"""Smoke invocation of the ``sharc bench`` pipeline: two small workloads
end to end, BENCH_interp.json produced and schema-validated.

This is the cheap canary in front of the full six-workload
``sharc bench`` run: if the throughput benchmark machinery breaks (a
workload stops running clean, the JSON schema drifts, wall timing is
lost), this fails in seconds.
"""

import json

import pytest

from repro.bench.interp_bench import (
    bench_payload, bench_workloads, main, validate_payload,
)

#: the two cheapest Table 1 models — enough to exercise every field
SMOKE_WORKLOADS = ["aget", "stunnel"]


@pytest.fixture(scope="module")
def smoke_results():
    return bench_workloads(SMOKE_WORKLOADS)


def test_bench_smoke_runs_clean(smoke_results):
    assert [r.workload for r in smoke_results] == SMOKE_WORKLOADS
    for r in smoke_results:
        assert r.clean, f"{r.workload} must run with zero reports"
        assert r.sharc_steps > r.base_steps > 0
        assert r.wall_seconds > 0.0
        assert r.steps_per_sec > 0.0


def test_bench_smoke_payload_validates(smoke_results):
    payload = bench_payload(smoke_results)
    assert validate_payload(payload) == []
    summary = payload["summary"]
    assert summary["total_sharc_steps"] == sum(
        r.sharc_steps for r in smoke_results)
    assert summary["steps_per_sec"] > 0


def test_bench_smoke_cli_round_trip(tmp_path):
    out = tmp_path / "BENCH_interp.json"
    assert main(["--workloads", *SMOKE_WORKLOADS,
                 "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert validate_payload(payload) == []


def test_bench_smoke_throughput(benchmark):
    """Times one aget bench pass; asserts determinism of the step axis."""
    results = benchmark.pedantic(
        lambda: bench_workloads(["aget"]), rounds=1, iterations=1)
    result = results[0]
    assert result.clean
    benchmark.extra_info["sharc_steps"] = result.sharc_steps
    benchmark.extra_info["steps_per_sec"] = round(result.steps_per_sec)
