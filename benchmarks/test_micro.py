"""Micro-benchmarks of the pipeline's own phases: the per-phase costs a
user of the tool experiences (parse / infer+check / execute)."""

import pytest

from repro.bench.workloads import get_workload
from repro.cfront.parser import parse_program
from repro.sharc.checker import check_source
from repro.runtime.interp import run_checked
from repro.runtime.shadow import ShadowMemory
from repro.runtime.refcount import LPRefCount
from repro.errors import Loc


@pytest.fixture(scope="module")
def pfscan_source():
    return get_workload("pfscan").annotated_source


def test_parse_speed(benchmark, pfscan_source):
    program = benchmark(parse_program, pfscan_source, "pfscan.c")
    assert program.functions()


def test_static_pipeline_speed(benchmark, pfscan_source):
    checked = benchmark(check_source, pfscan_source, "pfscan.c")
    assert checked.ok


def test_interpreter_throughput(benchmark):
    """Steps per second on a tight compute loop."""
    checked = check_source("""
    int main() {
      long s = 0;
      int i;
      for (i = 0; i < 3000; i++)
        s = s + i * 3 - (i >> 1);
      printf("%ld\\n", s);
      return 0;
    }
    """, "hot.c")
    assert checked.ok
    result = benchmark.pedantic(
        lambda: run_checked(checked, max_steps=10_000_000),
        rounds=1, iterations=1)
    assert result.clean
    benchmark.extra_info["steps"] = result.stats.steps_total


def test_shadow_check_speed(benchmark):
    """Raw chkread/chkwrite throughput on the hot (already-set) path."""
    shadow = ShadowMemory()
    loc = Loc("bench.c", 1)
    shadow.chkwrite(0x1000, 4, 1, "x", loc)

    def hammer():
        for _ in range(1000):
            shadow.chkread(0x1000, 4, 1, "x", loc)
        return shadow

    benchmark(hammer)


def test_lp_refcount_write_speed(benchmark):
    scheme = LPRefCount()

    def hammer():
        for i in range(1000):
            scheme.record_write(1, 0x100 + (i % 64) * 8, 0, 0x1000)
        return scheme

    benchmark(hammer)
