#!/usr/bin/env python3
"""Quickstart: the paper's Section 2.1 walkthrough, end to end.

A multithreaded pipeline (Figure 1) passes a buffer between stages.  We

1. check and run the *unannotated* program — SharC infers the sharing
   modes (Figure 2) and the dynamic checker reports the two kinds of
   sharing the paper shows (the ``sdata`` field, and the buffer behind
   it);
2. check and run the *annotated* program — two ``locked`` annotations, a
   ``private`` argument, and the suggested sharing casts describe the
   strategy, and the same run is clean.

Run:  python examples/quickstart.py
"""

import pathlib
import sys

from repro import check_source, run_checked

HERE = pathlib.Path(__file__).parent

UNANNOTATED = r"""
typedef struct stage {
  struct stage *next;
  cond *cv;
  mutex *mut;
  char *sdata;
  void (*fun)(char *fdata);
} stage_t;

int progress = 0;

void *thrFunc(void *d) {
  stage_t *S = d;
  stage_t *nextS = S->next;
  char *ldata;
  int k;
  for (k = 0; k < 4; k++) {
    mutexLock(S->mut);
    while (S->sdata == NULL)
      condWait(S->cv, S->mut);
    ldata = S->sdata;
    S->sdata = NULL;
    condSignal(S->cv);
    mutexUnlock(S->mut);
    S->fun(ldata);
    progress++;
    if (nextS) {
      mutexLock(nextS->mut);
      while (nextS->sdata)
        condWait(nextS->cv, nextS->mut);
      nextS->sdata = ldata;
      condSignal(nextS->cv);
      mutexUnlock(nextS->mut);
    } else {
      free(ldata);
    }
  }
  return NULL;
}

void work(char *fdata) {
  int i;
  for (i = 0; i < 16; i++)
    fdata[i] = fdata[i] + 1;
}

mutex m1; mutex m2; cond c1; cond c2;

stage_t *mkstage(stage_t *next, mutex *m, cond *c) {
  stage_t *st = malloc(sizeof(stage_t));
  st->next = next;
  st->cv = c;
  st->mut = m;
  st->sdata = NULL;
  st->fun = work;
  return st;
}

int main() {
  stage_t *s1;
  stage_t *s2;
  int t1; int t2; int i;
  s2 = mkstage(NULL, &m2, &c2);
  s1 = mkstage(s2, &m1, &c1);
  t1 = thread_create(thrFunc, s1);
  t2 = thread_create(thrFunc, s2);
  for (i = 0; i < 4; i++) {
    char *buf = malloc(16);
    memset(buf, i, 16);
    mutexLock(s1->mut);
    while (s1->sdata)
      condWait(s1->cv, s1->mut);
    s1->sdata = buf;
    condSignal(s1->cv);
    mutexUnlock(s1->mut);
  }
  thread_join(t1);
  thread_join(t2);
  printf("processed %d items\n", progress);
  return 0;
}
"""


def main() -> int:
    print("=" * 72)
    print("STEP 1 — the unannotated pipeline (Figure 1 without bold)")
    print("=" * 72)
    checked = check_source(UNANNOTATED, "pipeline_test.c")
    assert checked.ok, checked.render_diagnostics()

    print("\nInferred qualifiers (the paper's Figure 2 view), excerpt:")
    for line in checked.inferred_source().splitlines()[:12]:
        print("   ", line)

    result = run_checked(checked, seed=3)
    print(f"\nDynamic run: {len(result.reports)} conflict report(s); "
          "the first few:")
    for report in result.reports[:3]:
        print(report.render())
    print("\nSharC assumes all sharing is an error until declared: these")
    print("reports point at the sdata handoff and the buffer behind it.")

    print()
    print("=" * 72)
    print("STEP 2 — the annotated pipeline (Figure 1 with bold)")
    print("=" * 72)
    annotated = (HERE / "pipeline_annotated.c").read_text()
    checked2 = check_source(annotated, "pipeline_annotated.c")
    if not checked2.ok:
        print(checked2.render_diagnostics())
        return 1
    print("Annotations: char locked(mut) * locked(mut) sdata;")
    print("             void (*fun)(char private *fdata);  + SCASTs")
    stats = checked2.check_stats
    print(f"Static checks inserted: {stats.lock_checks} lock-held, "
          f"{stats.read_checks} chkread, {stats.write_checks} chkwrite, "
          f"{stats.oneref_checks} oneref")

    clean = True
    for seed in range(6):
        result2 = run_checked(checked2, seed=seed)
        clean &= result2.clean
        print(f"  seed {seed}: reports={len(result2.reports)} "
              f"output={result2.output.strip()!r}")
    print(f"\nAll runs clean: {clean}")
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
