// The paper's Figure 1 pipeline, fully annotated (Section 2.1).
// Sharing strategy: stage structs are dynamic; the data buffer is
// handed between threads, protected by each stage's lock while queued
// (locked(mut)), and private while a stage works on it.
#define NITEMS 4

typedef struct stage {
  struct stage *next;
  cond *cv;
  mutex *mut;
  char locked(mut) *locked(mut) sdata;
  void (*fun)(char private *fdata);
} stage_t;

int racy progress = 0;

void *thrFunc(void *d) {
  stage_t *S = d;
  stage_t *nextS = S->next;
  char *ldata;
  int k;
  for (k = 0; k < NITEMS; k++) {
    mutexLock(S->mut);
    while (S->sdata == NULL)
      condWait(S->cv, S->mut);
    ldata = SCAST(char private *, S->sdata);
    S->sdata = NULL;
    condSignal(S->cv);
    mutexUnlock(S->mut);
    S->fun(ldata);
    progress++;
    if (nextS) {
      mutexLock(nextS->mut);
      while (nextS->sdata)
        condWait(nextS->cv, nextS->mut);
      nextS->sdata = SCAST(char locked(mut) *, ldata);
      condSignal(nextS->cv);
      mutexUnlock(nextS->mut);
    } else {
      free(ldata);
    }
  }
  return NULL;
}

void work(char private *fdata) {
  int i;
  for (i = 0; i < 16; i++)
    fdata[i] = fdata[i] + 1;
}

mutex m1; mutex m2; cond c1; cond c2;

stage_t dynamic *mkstage(stage_t dynamic *next, mutex racy *m,
                         cond racy *c) {
  // Initialize while private (locked/readonly fields of a private
  // struct are writable), then move to dynamic with a sharing cast.
  stage_t *st = malloc(sizeof(stage_t));
  st->next = next;
  st->cv = c;
  st->mut = m;
  st->sdata = NULL;
  st->fun = work;
  return SCAST(stage_t dynamic *, st);
}

int main() {
  stage_t dynamic *s1;
  stage_t dynamic *s2;
  int t1; int t2; int i;
  s2 = mkstage(NULL, &m2, &c2);
  s1 = mkstage(s2, &m1, &c1);
  t1 = thread_create(thrFunc, s1);
  t2 = thread_create(thrFunc, s2);
  for (i = 0; i < NITEMS; i++) {
    char *buf = malloc(16);
    memset(buf, i, 16);
    mutexLock(s1->mut);
    while (s1->sdata)
      condWait(s1->cv, s1->mut);
    s1->sdata = SCAST(char locked(mut) *, buf);
    condSignal(s1->cv);
    mutexUnlock(s1->mut);
  }
  thread_join(t1);
  thread_join(t2);
  printf("processed %d items\n", progress);
  return 0;
}
