#!/usr/bin/env python3
"""Race detection: SharC as a dynamic race detector (Sections 1, 4.2).

Three scenarios on a shared counter:

1. **A real race** — two threads increment an unprotected global.  The
   global is inferred ``dynamic``; the checker reports read/write
   conflicts in the paper's format, deterministically replayable from
   the scheduler seed.
2. **The fix** — the counter annotated ``locked(lk)`` and the increments
   guarded: clean, and the checker now *verifies the locking discipline*
   (it checks the lock is held, not merely that no race happened to
   occur on this schedule).
3. **A locking bug** — the annotation says ``locked(lk)`` but one thread
   forgets the lock: reported as "lock not held" even on schedules where
   the racy interleaving never materializes — this is what
   distinguishes checking a *strategy* from hunting races.

Run:  python examples/race_detection.py
"""

import sys

from repro import check_source, run_checked

RACY = r"""
int counter = 0;

void *bump(void *arg) {
  int i;
  for (i = 0; i < 10; i++)
    counter = counter + 1;
  return NULL;
}

int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  printf("counter = %d\n", counter);
  return 0;
}
"""

FIXED = r"""
mutex lk;
int locked(lk) counter = 0;

void *bump(void *arg) {
  int i;
  for (i = 0; i < 10; i++) {
    mutexLock(&lk);
    counter = counter + 1;
    mutexUnlock(&lk);
  }
  return NULL;
}

int main() {
  int t1 = thread_create(bump, NULL);
  int t2 = thread_create(bump, NULL);
  thread_join(t1);
  thread_join(t2);
  mutexLock(&lk);
  printf("counter = %d\n", counter);
  mutexUnlock(&lk);
  return 0;
}
"""

# One thread takes the lock, the other "forgot".
BUGGY = FIXED.replace(
    """int main() {
  int t1 = thread_create(bump, NULL);""",
    """void *bump_unlocked(void *arg) {
  counter = counter + 1;
  return NULL;
}

int main() {
  int t1 = thread_create(bump_unlocked, NULL);""")


def main() -> int:
    print("1) unprotected counter — a real data race")
    checked = check_source(RACY, "racy.c")
    assert checked.ok
    result = run_checked(checked, seed=1)
    print(f"   reports: {len(result.reports)}  (replay with seed=1)")
    for report in result.reports[:2]:
        print("   " + report.render().replace("\n", "\n   "))

    print("\n2) locked(lk) counter with correct locking")
    checked = check_source(FIXED, "fixed.c")
    assert checked.ok, checked.render_diagnostics()
    result = run_checked(checked, seed=1)
    print(f"   reports: {len(result.reports)}  "
          f"output: {result.output.strip()!r}")

    print("\n3) locked(lk) counter, one thread forgets the lock")
    checked = check_source(BUGGY, "buggy.c")
    assert checked.ok, checked.render_diagnostics()
    found = 0
    for seed in range(4):
        result = run_checked(checked, seed=seed)
        kinds = {r.kind.value for r in result.reports}
        found += bool(result.reports)
        print(f"   seed {seed}: {len(result.reports)} report(s) {kinds}")
    print("   -> the violation is reported on every schedule, because")
    print("      SharC checks the declared strategy, not schedules.")
    return 0 if found == 4 else 1


if __name__ == "__main__":
    sys.exit(main())
