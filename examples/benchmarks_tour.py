#!/usr/bin/env python3
"""A tour of the evaluation (Section 5) at example scale.

Runs two contrasting Table 1 workload models and prints the metrics the
paper reports for them:

- **pfscan** — almost every access hits ``dynamic`` data (the scanned
  bytes), yet the time overhead stays modest because repeated accesses
  take the shadow-bitmap fast path;
- **stunnel** — the sharing strategy keeps all bulk work on ``private``
  data, so nearly nothing is checked (~0%% dynamic) and the overhead is
  tiny, while the per-session metadata still shows up as memory overhead.

Also demonstrates the formal model (Section 3): a random well-typed
program is executed under the checked semantics while asserting the
Definition 1 consistency invariants after every step.

Run:  python examples/benchmarks_tour.py
"""

import random
import sys

from repro.bench import get_workload, run_workload
from repro.formal import Machine, MachineConfig, check_consistency, typecheck
from repro.formal.gen import gen_program


def show(name: str) -> bool:
    workload = get_workload(name)
    result = run_workload(workload)
    paper = workload.paper
    time_ours = ("n/a" if paper.time_overhead is None
                 else f"{result.time_overhead:.1%}")
    time_paper = ("n/a" if paper.time_overhead is None
                  else f"{paper.time_overhead:.0%}")
    print(f"{name}: {workload.description}")
    print(f"  threads: {result.threads_peak} (paper {paper.threads})")
    print(f"  time overhead:   {time_ours:>6} (paper {time_paper})")
    print(f"  memory overhead: {result.mem_overhead:>6.1%} "
          f"(paper {paper.mem_overhead:.1%})")
    print(f"  %dynamic:        {result.pct_dynamic:>6.1%} "
          f"(paper {paper.pct_dynamic:.1%})")
    print(f"  reports: {result.reports} (annotated: expect 0)")
    return result.clean


def formal_demo() -> bool:
    print("formal model: 5 random well-typed programs x random schedules,")
    print("checking Definition 1 consistency after every step...")
    for seed in range(5):
        program = gen_program(random.Random(seed))
        machine = Machine(typecheck(program),
                          MachineConfig(seed=seed, max_steps=2000))
        machine.run(invariant_hook=check_consistency)
        races = machine.races_in_trace()
        print(f"  seed {seed}: {machine.steps} steps, "
              f"{len(machine.failures)} checks fired, races: {len(races)}")
        if races:
            return False
    print("  no race ever completes under enforcement (Theorem, S3.4)")
    return True


def main() -> int:
    ok = show("pfscan")
    print()
    ok &= show("stunnel")
    print()
    ok &= formal_demo()
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
