#!/usr/bin/env python3
"""Ownership transfer with sharing casts (Sections 2 and 4.2.3).

A producer builds buffers privately, *publishes* them into a
lock-protected mailbox with ``SCAST`` (which nulls the source and checks
the reference count is one), and a consumer *claims* them back to
``private``.  We then break the protocol on purpose:

- keeping a second reference across the cast makes ``oneref`` fail
  (reported with the reference count, as in Figure 7);
- dropping the cast makes the program fail the *static* check, with
  SharC suggesting the exact SCAST to insert — the paper's workflow.

Run:  python examples/ownership_transfer.py
"""

import sys

from repro import check_source, run_checked

GOOD = r"""
mutex lk;
cond full;
cond empty;
char dynamic * locked(lk) mailbox = NULL;
int racy rounds_done = 0;

void *producer(void *arg) {
  char *buf;
  int r;
  for (r = 0; r < 5; r++) {
    buf = malloc(32);
    memset(buf, r + 65, 31);
    mutexLock(&lk);
    while (mailbox != NULL)
      condWait(&empty, &lk);
    mailbox = SCAST(char dynamic *, buf);
    condSignal(&full);
    mutexUnlock(&lk);
  }
  return NULL;
}

void *consumer(void *arg) {
  char *mine;
  int r;
  long total = 0;
  for (r = 0; r < 5; r++) {
    mutexLock(&lk);
    while (mailbox == NULL)
      condWait(&full, &lk);
    mine = SCAST(char private *, mailbox);
    condSignal(&empty);
    mutexUnlock(&lk);
    total = total + strlen(mine);
    free(mine);
  }
  printf("consumed %ld bytes\n", total);
  rounds_done = 1;
  return NULL;
}

int main() {
  int t1 = thread_create(producer, NULL);
  int t2 = thread_create(consumer, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
"""

# The producer stashes a second reference before casting: oneref fails.
LEAKY = GOOD.replace(
    "void *producer(void *arg) {\n  char *buf;",
    "char *stash[8];\n\nvoid *producer(void *arg) {\n  char *buf;"
).replace(
    "    mutexLock(&lk);\n    while (mailbox != NULL)",
    "    stash[r] = buf;   // second reference survives the cast!\n"
    "    mutexLock(&lk);\n    while (mailbox != NULL)")

# No casts: with the consumer's pointer annotated private (it frees the
# buffer, so it must own it), the assignment cannot type-check and SharC
# suggests the exact casts.  Without any annotation everything would just
# be inferred dynamic and the races would surface at run time instead.
UNCAST = (GOOD
          .replace("mailbox = SCAST(char dynamic *, buf);",
                   "mailbox = buf;")
          .replace("mine = SCAST(char private *, mailbox);",
                   "mine = mailbox;")
          .replace("char *mine;", "char private *mine;"))


def main() -> int:
    print("1) correct ownership transfer through the mailbox")
    checked = check_source(GOOD, "mailbox.c")
    assert checked.ok, checked.render_diagnostics()
    result = run_checked(checked, seed=2)
    print(f"   clean: {result.clean}  output: {result.output.strip()!r}")

    print("\n2) a second reference survives the cast -> oneref fails")
    checked = check_source(LEAKY, "mailbox_leaky.c")
    assert checked.ok, checked.render_diagnostics()
    result = run_checked(checked, seed=2)
    oneref = [r for r in result.reports
              if "reference" in r.kind.value]
    print(f"   oneref violations: {len(oneref)}")
    if oneref:
        print("   " + oneref[0].render().replace("\n", "\n   "))

    print("\n3) the casts removed -> static errors with suggestions")
    checked = check_source(UNCAST, "mailbox_uncast.c")
    print(f"   type-checks: {checked.ok}")
    for diag in checked.suggestions[:2]:
        print(f"   suggestion: {diag.message}")
    return 0 if not checked.ok and oneref else 1


if __name__ == "__main__":
    sys.exit(main())
