#!/usr/bin/env python3
"""The Section 7 extension: rwlock-aware ``locked`` and barriers.

The paper closes with "SharC may also need new sharing modes to better
support existing sharing strategies (e.g., more support for locks)".
This example exercises that extension:

1. a read-mostly table guarded by a reader-writer lock — concurrent
   readers are legal under read holds, the writer takes a write hold:
   clean on every schedule;
2. a buggy variant where the writer only takes a *read* hold — SharC
   reports "lock not held" on every schedule (writes need write holds);
3. a barrier-phased computation (the fftw-style pattern).

Run:  python examples/rwlock_extension.py
"""

import sys

from repro import check_source, run_checked

GOOD = r"""
rwlock tlock;
int locked(tlock) table[8];
int racy reads_done = 0;

void *reader(void *a) {
  int i;
  int s = 0;
  rwlock_rdlock(&tlock);
  for (i = 0; i < 8; i++)
    s = s + table[i];
  rwlock_unlock(&tlock);
  reads_done = reads_done + 1;
  return NULL;
}

void *writer(void *a) {
  int i;
  rwlock_wrlock(&tlock);
  for (i = 0; i < 8; i++)
    table[i] = i * i;
  rwlock_unlock(&tlock);
  return NULL;
}

int main() {
  int t1 = thread_create(writer, NULL);
  int t2 = thread_create(reader, NULL);
  int t3 = thread_create(reader, NULL);
  thread_join(t1);
  thread_join(t2);
  thread_join(t3);
  printf("reads done: %d\n", reads_done);
  return 0;
}
"""

BUGGY = GOOD.replace(
    "void *writer(void *a) {\n  int i;\n  rwlock_wrlock(&tlock);",
    "void *writer(void *a) {\n  int i;\n  rwlock_rdlock(&tlock);")

BARRIER = r"""
barrier phase;
// The exchange slots are synchronized by the barrier itself, which is
// outside the n-readers-or-1-writer discipline -- like the benign racy
// flag the paper found in pbzip2, they are declared racy; the buffers
// behind them still move with checked sharing casts.
double dynamic * racy halves[2];
int racy sums[2];

void *stage(void *a) {
  int *idx = a;
  int me = *idx;
  int i;
  double *mine;
  mine = SCAST(double private *, halves[me]);
  for (i = 0; i < 64; i++)
    mine[i] = me * 100 + i;
  halves[me] = SCAST(double dynamic *, mine);
  barrier_wait(&phase);
  // After the barrier both halves are published; read the *other* one.
  mine = SCAST(double private *, halves[1 - me]);
  int s = 0;
  for (i = 0; i < 64; i++)
    s = s + mine[i];
  sums[me] = s;
  halves[1 - me] = SCAST(double dynamic *, mine);
  return NULL;
}

int main() {
  int tids[2];
  int i;
  int *id;
  barrier_init(&phase, 2);
  for (i = 0; i < 2; i++) {
    double *buf = malloc(64 * 8);
    halves[i] = SCAST(double dynamic *, buf);
  }
  for (i = 0; i < 2; i++) {
    id = malloc(4);
    *id = i;
    tids[i] = thread_create(stage, SCAST(int dynamic *, id));
  }
  thread_join(tids[0]);
  thread_join(tids[1]);
  printf("cross sums: %d %d\n", sums[0], sums[1]);
  return 0;
}
"""


def main() -> int:
    print("1) reader-writer lock, correct discipline")
    checked = check_source(GOOD, "rwtable.c")
    assert checked.ok, checked.render_diagnostics()
    ok = True
    for seed in range(4):
        result = run_checked(checked, seed=seed)
        ok &= result.clean
        print(f"   seed {seed}: reports={len(result.reports)}")

    print("\n2) writer only takes a READ hold")
    checked = check_source(BUGGY, "rwtable_buggy.c")
    assert checked.ok
    caught = 0
    for seed in range(4):
        result = run_checked(checked, seed=seed)
        caught += bool(result.reports)
    print(f"   'lock not held' reported on {caught}/4 schedules")

    print("\n3) barrier-phased exchange (fftw-style)")
    checked = check_source(BARRIER, "barrier.c")
    if not checked.ok:
        print(checked.render_diagnostics())
        return 1
    result = run_checked(checked, seed=2)
    print(f"   clean={result.clean}  output: {result.output.strip()!r}")
    return 0 if ok and caught == 4 and result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
