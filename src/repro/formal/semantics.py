"""Figures 5 and 6: the small-step parallel operational semantics.

The runtime state is:

- **Memory** ``M : addr -> (value, type, owner, readers, writers)`` —
  exactly the five-tuple of Section 3.3 (the real implementation never
  reads the type/owner components; the formal model tracks them so the
  soundness invariants can be checked),
- per-thread **environments** ``E : var -> addr``,
- a positive **thread id** per thread.

Each machine step advances one nondeterministically chosen thread by one
micro-transition: an l-value resolution, one ``when`` check (executed in
one big step once its argument is known, per Figure 6), or the guarded
assignment itself.  A failing check sends the thread to ``fail``, leaving
it blocked — the paper's semantics of detection.

``enforce`` selects what a failing check does:

- ``"fail"``  — the paper's semantics (thread blocks);
- ``"record"`` — the violation is recorded and execution continues, which
  lets tests demonstrate that *without* blocking, the Definition 1
  invariants break (the negative half of the soundness argument);
- ``"skip"``  — checks are not executed at all (baseline).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.formal.lang import (
    Assign, Check, CheckKind, Deref, Mode, New, Null, Num, Program,
    RefBase, Scast, Seq, Skip, Spawn, Stmt, Type, Var,
)


@dataclass
class Cell:
    """One memory cell: Z x t x owner x P(tid) x P(tid)."""

    value: int
    type: Type
    owner: int
    readers: set[int] = field(default_factory=set)
    writers: set[int] = field(default_factory=set)


@dataclass
class Event:
    """One successful memory access or sharing cast (the trace the race
    oracle inspects)."""

    step: int
    tid: int
    kind: str  # "read" | "write" | "scast"
    addr: int


@dataclass
class Violation:
    """A failed runtime check (only recorded when enforce="record")."""

    step: int
    tid: int
    check: str
    addr: int


class ThreadFailed(Exception):
    """Internal: a check failed under enforce="fail"."""

    def __init__(self, check: Check, addr: int):
        self.check = check
        self.addr = addr


@dataclass
class ThreadRec:
    tid: int
    name: str
    env: dict[str, int]
    local_addrs: list[int]
    gen: Optional[Iterator] = None
    done: bool = False
    failed: Optional[str] = None


@dataclass
class MachineConfig:
    seed: int = 0
    enforce: str = "fail"  # "fail" | "record" | "skip"
    max_steps: int = 10_000


class Machine:
    """Executes a *checked* program (output of ``typecheck``)."""

    def __init__(self, program: Program,
                 config: Optional[MachineConfig] = None) -> None:
        self.program = program
        self.config = config or MachineConfig()
        self.rng = random.Random(self.config.seed)
        self.memory: dict[int, Cell] = {}
        self._next_addr = 1  # 0 is the invalid address
        self.threads: list[ThreadRec] = []
        self._next_tid = 1
        self.global_env: dict[str, int] = {}
        self.steps = 0
        self.trace: list[Event] = []
        self.violations: list[Violation] = []
        self.failures: list[tuple[int, str]] = []  # (tid, failed check)
        #: tid -> step at which the thread exited (threads whose
        #: executions do not overlap cannot race)
        self.exit_step: dict[int, int] = {}

        for g in program.globals:
            addr = self._alloc(g.type, owner=0)
            self.global_env[g.name] = addr
        self._spawn(program.main)

    # -- memory helpers ----------------------------------------------------

    def _alloc(self, cell_type: Type, owner: int) -> int:
        addr = self._next_addr
        self._next_addr += 1
        self.memory[addr] = Cell(0, cell_type, owner)
        return addr

    def var_addresses(self) -> set[int]:
        """Addresses bound to variables (for the not-addressable check)."""
        addrs = set(self.global_env.values())
        for t in self.threads:
            addrs |= set(t.env.values())
        return addrs

    # -- threads -------------------------------------------------------------

    def _spawn(self, name: str) -> ThreadRec:
        tdef = self.program.thread(name)
        tid = self._next_tid
        self._next_tid += 1
        env = dict(self.global_env)
        local_addrs = []
        for x, ty in tdef.locals:
            addr = self._alloc(ty, owner=tid)
            env[x] = addr
            local_addrs.append(addr)
        rec = ThreadRec(tid, name, env, local_addrs)
        rec.gen = self._exec_stmt(rec, tdef.body)
        self.threads.append(rec)
        return rec

    def _thread_exit(self, rec: ThreadRec) -> None:
        """threadexit: zero the locals, remove the tid from all
        reader/writer sets."""
        for addr in rec.local_addrs:
            self.memory[addr].value = 0
        for cell in self.memory.values():
            cell.readers.discard(rec.tid)
            cell.writers.discard(rec.tid)
        self.exit_step[rec.tid] = self.steps

    # -- l-values and checks ----------------------------------------------------

    def _resolve(self, rec: ThreadRec, lv) -> int:
        """M,E : l ->_t a (a null deref fails the thread)."""
        if isinstance(lv, Var):
            return rec.env[lv.name]
        if isinstance(lv, Deref):
            cell = self.memory[rec.env[lv.name]]
            self._note_access(rec, "read", rec.env[lv.name])
            if cell.value == 0:
                raise ThreadFailed(
                    Check(CheckKind.CHKREAD, lv), 0)
            return cell.value
        raise TypeError(f"not an l-value: {lv!r}")

    def _note_access(self, rec: ThreadRec, kind: str, addr: int) -> None:
        self.trace.append(Event(self.steps, rec.tid, kind, addr))

    def _run_check(self, rec: ThreadRec, check: Check) -> None:
        """Figure 6, one big step."""
        if self.config.enforce == "skip":
            return
        addr = self._resolve(rec, check.lval)
        cell = self.memory[addr]
        tid = rec.tid
        ok: bool
        record = self.config.enforce == "record"
        if check.kind is CheckKind.CHKREAD:
            ok = not (cell.writers - {tid})
            if ok or record:
                # In record mode the access proceeds anyway, so the sets
                # reflect reality — which is exactly how Definition 1
                # becomes observably violated without enforcement.
                cell.readers.add(tid)
        elif check.kind is CheckKind.CHKWRITE:
            ok = not (cell.readers - {tid}) and not (cell.writers - {tid})
            if ok or record:
                cell.writers.add(tid)
        else:  # ONEREF: |{b : M(b).value = a and M(b) is a ref}| = 1
            refs = sum(
                1 for other in self.memory.values()
                if isinstance(other.type.base, RefBase)
                and other.value == addr)
            ok = refs == 1
        if not ok:
            if self.config.enforce == "fail":
                raise ThreadFailed(check, addr)
            self.violations.append(
                Violation(self.steps, tid, str(check), addr))

    # -- statement execution (generators; one yield per micro-step) ---------------

    def _exec_stmt(self, rec: ThreadRec, s: Stmt):
        if isinstance(s, Skip):
            yield  # skip; s -> s is one transition
            return
        if isinstance(s, Seq):
            yield from self._exec_stmt(rec, s.first)
            yield from self._exec_stmt(rec, s.second)
            return
        if isinstance(s, Spawn):
            yield
            self._spawn(s.func)
            return
        if isinstance(s, Assign):
            # Checks run left-to-right before the assignment they guard.
            for check in s.checks:
                yield
                self._run_check(rec, check)
            yield
            self._do_assign(rec, s)
            return
        raise TypeError(f"cannot execute {s!r}")

    def _do_assign(self, rec: ThreadRec, s: Assign) -> None:
        target_addr = self._resolve(rec, s.target)
        value = s.value
        if isinstance(value, Num):
            v = value.value
        elif isinstance(value, Null):
            v = 0
        elif isinstance(value, New):
            v = self._alloc(value.cell_type, owner=rec.tid)
        elif isinstance(value, (Var, Deref)):
            src_addr = self._resolve(rec, value)
            self._note_access(rec, "read", src_addr)
            v = self.memory[src_addr].value
        elif isinstance(value, Scast):
            x_addr = rec.env[value.var]
            self._note_access(rec, "read", x_addr)
            v = self.memory[x_addr].value
            # Null out the source; retype and re-own the referenced cell;
            # clear its reader/writer sets (the scast transition).
            self.memory[x_addr].value = 0
            self._note_access(rec, "write", x_addr)
            if v != 0:
                target_cell = self.memory[v]
                target_cell.type = value.to
                target_cell.owner = rec.tid
                target_cell.readers = set()
                target_cell.writers = set()
                self.trace.append(
                    Event(self.steps, rec.tid, "scast", v))
        else:
            raise TypeError(f"cannot evaluate {value!r}")
        self.memory[target_addr].value = v
        self._note_access(rec, "write", target_addr)

    # -- the machine loop ------------------------------------------------------------

    def runnable(self) -> list[ThreadRec]:
        return [t for t in self.threads
                if not t.done and t.failed is None]

    def step(self) -> bool:
        """One transition of one thread.  Returns False when no thread can
        move (all done or failed)."""
        candidates = self.runnable()
        if not candidates:
            return False
        rec = self.rng.choice(candidates)
        self.steps += 1
        try:
            next(rec.gen)
        except StopIteration:
            rec.done = True
            self._thread_exit(rec)
        except ThreadFailed as tf:
            rec.failed = str(tf.check)
            self.failures.append((rec.tid, str(tf.check)))
        return True

    def run(self, invariant_hook=None) -> None:
        """Runs to quiescence or the step budget.  ``invariant_hook`` is
        called after every step (used by the soundness tests)."""
        for _ in range(self.config.max_steps):
            if not self.step():
                return
            if invariant_hook is not None:
                invariant_hook(self)

    # -- the race oracle -----------------------------------------------------------------

    def races_in_trace(self) -> list[tuple[Event, Event]]:
        """Conflicting accesses (same dynamic cell, different threads, at
        least one write) with no intervening sharing cast on that cell —
        the property the soundness theorem says cannot happen under
        enforce="fail"."""
        races = []
        by_addr: dict[int, list[Event]] = {}
        for ev in self.trace:
            by_addr.setdefault(ev.addr, []).append(ev)
        for addr, events in by_addr.items():
            cell = self.memory.get(addr)
            if cell is None or cell.type.mode is not Mode.DYNAMIC:
                continue
            window: list[Event] = []
            for ev in events:
                if ev.kind == "scast":
                    window = []
                    continue
                for prev in window:
                    if prev.tid == ev.tid:
                        continue
                    if prev.kind != "write" and ev.kind != "write":
                        continue
                    exited = self.exit_step.get(prev.tid)
                    if exited is not None and exited <= ev.step:
                        continue  # executions did not overlap
                    races.append((prev, ev))
                window.append(ev)
        return races
