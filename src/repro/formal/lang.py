"""Figure 3: the grammar of the core language.

::

    Core Type    s ::= int | ref t
    Sharing Mode m ::= dynamic | private
    Type         t ::= m s | thread
    Program      P ::= t x | f(){t1 x1 ... tn xn; s} | P; P
    L-expression l ::= x | *x | a
    Expression   e ::= l | scast_t x | n | null | new_t
    Statement    s ::= s1; s2 | spawn f()
                     | l := e [when phi_1(l1), ..., phi_n(ln)]
                     | skip | done | fail
    Predicate  phi ::= chkread | chkwrite | oneref

``done``, ``skip``, ``fail`` and runtime addresses appear only in the
operational semantics.  Control flow is omitted (it has no effect on the
type system or the runtime checks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union


class Mode(enum.Enum):
    """The two sharing modes of the core language."""

    PRIVATE = "private"
    DYNAMIC = "dynamic"

    def __str__(self) -> str:
        return self.value


class CoreType:
    """s ::= int | ref t"""


@dataclass(frozen=True)
class IntBase(CoreType):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class RefBase(CoreType):
    target: "Type"

    def __str__(self) -> str:
        return f"ref ({self.target})"


@dataclass(frozen=True)
class Type:
    """t ::= m s (the ``thread`` type is implicit on thread names)."""

    mode: Mode
    base: CoreType

    def __str__(self) -> str:
        return f"{self.mode} {self.base}"

    @property
    def is_ref(self) -> bool:
        return isinstance(self.base, RefBase)

    @property
    def is_int(self) -> bool:
        return isinstance(self.base, IntBase)

    def target(self) -> "Type":
        assert isinstance(self.base, RefBase)
        return self.base.target


def IntType(mode: Mode) -> Type:
    return Type(mode, IntBase())


def RefType(mode: Mode, target: Type) -> Type:
    return Type(mode, RefBase(target))


# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """l ::= x"""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Deref:
    """l ::= *x  (only variables may be dereferenced; see DEREF)."""

    name: str

    def __str__(self) -> str:
        return f"*{self.name}"


LValue = Union[Var, Deref]


@dataclass(frozen=True)
class Num:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Null:
    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True)
class New:
    """new_t — allocates a fresh cell of type t."""

    cell_type: Type

    def __str__(self) -> str:
        return f"new {self.cell_type}"


@dataclass(frozen=True)
class Scast:
    """scast_t x — changes *x's sharing mode; nulls out x."""

    to: Type  # the new type of the referenced cell
    var: str

    def __str__(self) -> str:
        return f"scast[{self.to}] {self.var}"


Expr = Union[Var, Deref, Num, Null, New, Scast]


# -- runtime checks (inserted by the static semantics) --------------------------


class CheckKind(enum.Enum):
    CHKREAD = "chkread"
    CHKWRITE = "chkwrite"
    ONEREF = "oneref"


@dataclass(frozen=True)
class Check:
    """One ``when`` guard on an assignment."""

    kind: CheckKind
    lval: LValue

    def __str__(self) -> str:
        return f"{self.kind.value}({self.lval})"


# -- statements -----------------------------------------------------------------


@dataclass
class Skip:
    def __str__(self) -> str:
        return "skip"


@dataclass
class Done:
    def __str__(self) -> str:
        return "done"


@dataclass
class Fail:
    def __str__(self) -> str:
        return "fail"


@dataclass
class Spawn:
    func: str

    def __str__(self) -> str:
        return f"spawn {self.func}()"


@dataclass
class Assign:
    """l := e when phi_1, ..., phi_n"""

    target: LValue
    value: Expr
    checks: list[Check] = field(default_factory=list)

    def __str__(self) -> str:
        out = f"{self.target} := {self.value}"
        if self.checks:
            out += " when " + ", ".join(str(c) for c in self.checks)
        return out


@dataclass
class Seq:
    first: "Stmt"
    second: "Stmt"

    def __str__(self) -> str:
        return f"{self.first}; {self.second}"


Stmt = Union[Skip, Done, Fail, Spawn, Assign, Seq]

FAIL_STMT = Fail()


def seq_of(stmts: list[Stmt]) -> Stmt:
    """Builds a right-nested Seq from a statement list."""
    if not stmts:
        return Skip()
    result = stmts[-1]
    for s in reversed(stmts[:-1]):
        result = Seq(s, result)
    return result


# -- programs ----------------------------------------------------------------------


@dataclass
class Global:
    name: str
    type: Type


@dataclass
class ThreadDef:
    """f(){t1 x1 ... tn xn; s}"""

    name: str
    locals: list[tuple[str, Type]] = field(default_factory=list)
    body: Stmt = field(default_factory=Skip)


@dataclass
class Program:
    globals: list[Global] = field(default_factory=list)
    threads: list[ThreadDef] = field(default_factory=list)
    #: the initially running thread (by name)
    main: str = "main"

    def thread(self, name: str) -> ThreadDef:
        for t in self.threads:
            if t.name == name:
                return t
        raise KeyError(name)

    def __str__(self) -> str:
        lines = [f"{g.type} {g.name};" for g in self.globals]
        for t in self.threads:
            decls = " ".join(f"{ty} {x};" for x, ty in t.locals)
            lines.append(f"{t.name}() {{ {decls} {t.body} }}")
        return "\n".join(lines)
