"""The Section 3 formal model: a core language with ``private`` and
``dynamic`` sharing modes, its typing judgments (which insert ``when``
guards), a small-step parallel operational semantics, and an executable
check of the soundness theorem's invariants (Definition 1).

This package is deliberately independent of the full-language pipeline in
:mod:`repro.sharc`/:mod:`repro.runtime`: it is the paper's proof vehicle,
reproduced so the soundness claims can be property-tested (see
``tests/formal``).
"""

from repro.formal.lang import (
    FAIL_STMT, Assign, Deref, Global, IntType, Mode, New, Null, Num,
    Program, RefType, Scast, Seq, Skip, Spawn, ThreadDef, Type, Var,
)
from repro.formal.statics import TypeError_, typecheck
from repro.formal.semantics import Machine, MachineConfig
from repro.formal.soundness import ConsistencyError, check_consistency

__all__ = [
    "Mode", "Type", "IntType", "RefType",
    "Var", "Deref", "Num", "Null", "New", "Scast",
    "Assign", "Seq", "Skip", "Spawn",
    "Global", "ThreadDef", "Program", "FAIL_STMT",
    "typecheck", "TypeError_",
    "Machine", "MachineConfig",
    "check_consistency", "ConsistencyError",
]
