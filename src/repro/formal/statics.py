"""Figure 4: the typing judgments of the core language.

``typecheck`` validates a program and *returns a copy with runtime checks
inserted* — the ``when`` guards — exactly as the compilation judgment
``G |- s ~> s'`` does:

- GLOBAL: globals use the dynamic sharing mode;
- REF-CTOR / INT-CTOR: ``m ref (m' s)`` is well-formed iff ``m = m'`` or
  ``m = private`` (no dynamic reference to a private cell);
- NAME / DEREF: ``*x`` requires ``x : private ref t`` (so no other thread
  can change ``x`` between a check and the access it guards);
- the five assignment rules compute checks with
  ``R(t, dynamic) = chkread``, ``W(t, dynamic) = chkwrite`` and nothing
  for private;
- CAST-ASSIGN: ``l := scast_t x`` with ``l : m ref (m1 s)``,
  ``x : private ref (m2 s)`` and ``t = m1 s`` — conversion is allowed only
  at the first target level, guarded by ``oneref(*x)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.formal.lang import (
    Assign, Check, CheckKind, Deref, Done, Fail, Global, Mode, New, Null,
    Num, Program, RefBase, Scast, Seq, Skip, Spawn, Stmt, ThreadDef, Type,
    Var,
)


class TypeError_(Exception):
    """A static type error in the core language."""


def wellformed(t: Type) -> None:
    """REF-CTOR / INT-CTOR: no dynamic reference to a private type."""
    if isinstance(t.base, RefBase):
        target = t.base.target
        if t.mode is not Mode.PRIVATE and target.mode is Mode.PRIVATE:
            raise TypeError_(
                f"ill-formed type {t}: a {t.mode} ref may not reference "
                "a private type (REF-CTOR)")
        wellformed(target)


@dataclass
class Env:
    """G: the typing environment (globals + current thread's locals)."""

    globals: dict[str, Type]
    locals: dict[str, Type]
    threads: set[str]

    def lookup(self, name: str) -> Type:
        if name in self.locals:
            return self.locals[name]
        if name in self.globals:
            return self.globals[name]
        raise TypeError_(f"unbound variable {name!r}")

    def is_local(self, name: str) -> bool:
        return name in self.locals


def lval_type(env: Env, lv) -> Type:
    """NAME and DEREF."""
    if isinstance(lv, Var):
        return env.lookup(lv.name)
    if isinstance(lv, Deref):
        t = env.lookup(lv.name)
        if not t.is_ref:
            raise TypeError_(f"*{lv.name}: not a reference ({t})")
        if t.mode is not Mode.PRIVATE:
            raise TypeError_(
                f"*{lv.name}: DEREF requires a private reference, "
                f"got {t.mode}")
        return t.target()
    raise TypeError_(f"not an l-value: {lv!r}")


def _read_check(lv, t: Type) -> list[Check]:
    """R(t, m): dynamic cells need chkread."""
    if t.mode is Mode.DYNAMIC:
        return [Check(CheckKind.CHKREAD, lv)]
    return []


def _write_check(lv, t: Type) -> list[Check]:
    """W(t, m): dynamic cells need chkwrite."""
    if t.mode is Mode.DYNAMIC:
        return [Check(CheckKind.CHKWRITE, lv)]
    return []


def check_stmt(env: Env, s: Stmt) -> Stmt:
    """G |- s ~> s': validates and returns s with checks inserted."""
    if isinstance(s, (Skip, Done)):
        return Skip()
    if isinstance(s, Fail):
        return Fail()
    if isinstance(s, Seq):
        return Seq(check_stmt(env, s.first), check_stmt(env, s.second))
    if isinstance(s, Spawn):
        if s.func not in env.threads:
            raise TypeError_(f"spawn of non-thread {s.func!r}")
        return Spawn(s.func)
    if isinstance(s, Assign):
        return _check_assign(env, s)
    raise TypeError_(f"unknown statement {s!r}")


def _check_assign(env: Env, s: Assign) -> Assign:
    target_t = lval_type(env, s.target)
    checks: list[Check] = []
    value = s.value

    if isinstance(value, Num):
        # CONSTANT-ASSIGN: t := n when W(t, m) — t must be m int.
        if not target_t.is_int:
            raise TypeError_(f"{s}: integer assigned to {target_t}")
        checks = _write_check(s.target, target_t)
    elif isinstance(value, Null):
        # NULL-ASSIGN: t must be a reference.
        if not target_t.is_ref:
            raise TypeError_(f"{s}: null assigned to {target_t}")
        checks = _write_check(s.target, target_t)
    elif isinstance(value, New):
        # NEW-ASSIGN: t := new t' with t : m ref t'.
        if not target_t.is_ref:
            raise TypeError_(f"{s}: new assigned to {target_t}")
        if target_t.target() != value.cell_type:
            raise TypeError_(
                f"{s}: new {value.cell_type} assigned to ref "
                f"{target_t.target()}")
        wellformed(value.cell_type)
        checks = _write_check(s.target, target_t)
    elif isinstance(value, (Var, Deref)):
        # ASSIGN: t1 := t2 — both sides must have the same core type
        # shape; modes may differ only at the outermost level (the cells
        # are distinct), deeper levels are invariant.
        source_t = lval_type(env, value)
        if not _same_below(target_t, source_t):
            raise TypeError_(
                f"{s}: incompatible types {target_t} vs {source_t}")
        checks = (_write_check(s.target, target_t)
                  + _read_check(value, source_t))
    elif isinstance(value, Scast):
        # CAST-ASSIGN.
        if not target_t.is_ref:
            raise TypeError_(f"{s}: scast assigned to {target_t}")
        x_t = env.lookup(value.var)
        if not env.is_local(value.var) or not x_t.is_ref or \
                x_t.mode is not Mode.PRIVATE:
            raise TypeError_(
                f"{s}: scast source must be a private (local) reference, "
                f"got {x_t}")
        m1 = target_t.target()   # m1 s
        m2 = x_t.target()        # m2 s
        if value.to != m1:
            raise TypeError_(
                f"{s}: cast type {value.to} does not match target "
                f"reference {m1}")
        if type(m1.base) is not type(m2.base) or not _same_strict(
                _target_or_none(m1), _target_or_none(m2)):
            raise TypeError_(
                f"{s}: scast may only convert the first target level "
                f"({m1} vs {m2})")
        checks = ([Check(CheckKind.ONEREF, Deref(value.var))]
                  + _write_check(s.target, target_t))
    else:
        raise TypeError_(f"unknown expression {value!r}")

    return Assign(s.target, value, checks)


def _target_or_none(t: Type) -> Optional[Type]:
    return t.target() if t.is_ref else None


def _same_strict(a: Optional[Type], b: Optional[Type]) -> bool:
    """Exact equality of types below the converted level."""
    return a == b


def _same_below(a: Type, b: Type) -> bool:
    """Same core-type shape; modes equal at every level below the
    outermost (pointer targets are invariant)."""
    if type(a.base) is not type(b.base):
        return False
    if a.is_ref:
        return a.target() == b.target()
    return True


def typecheck(program: Program) -> Program:
    """G |- P ~> P': validates the program, returning it with checks."""
    globals_env: dict[str, Type] = {}
    for g in program.globals:
        if g.type.mode is not Mode.DYNAMIC:
            raise TypeError_(
                f"global {g.name} must use the dynamic sharing mode "
                f"(GLOBAL), got {g.type.mode}")
        wellformed(g.type)
        globals_env[g.name] = g.type

    thread_names = {t.name for t in program.threads}
    checked_threads: list[ThreadDef] = []
    for t in program.threads:
        locals_env: dict[str, Type] = {}
        for x, ty in t.locals:
            wellformed(ty)
            if x in globals_env:
                raise TypeError_(
                    f"local {x} of {t.name} shadows a global "
                    "(identifiers must be distinct)")
            locals_env[x] = ty
        env = Env(globals_env, locals_env, thread_names)
        checked_threads.append(
            ThreadDef(t.name, list(t.locals), check_stmt(env, t.body)))
    return Program(list(program.globals), checked_threads, program.main)
