"""Definition 1 (consistency) as an executable invariant, plus the
access-safety assertions the soundness theorem (Section 3.4) guarantees.

The theorem: at all times, all threads are well-typed, well-checked, and
consistent with memory, from which it follows that

- private cells are only accessed by the thread that owns them, and
- no two threads race on a dynamic cell (access it with at least one
  write) unless there has been an intervening sharing cast.

``check_consistency`` validates Definition 1 against a machine state; the
property tests drive random well-typed programs through random schedules,
calling it after every step, and separately assert the no-race property on
the access trace (``Machine.races_in_trace``).
"""

from __future__ import annotations

from repro.formal.lang import Mode, Program, RefBase
from repro.formal.semantics import Machine


class ConsistencyError(AssertionError):
    """A Definition 1 invariant is violated."""


def check_consistency(machine: Machine,
                      program: Program | None = None) -> None:
    """Raises :class:`ConsistencyError` if any invariant fails."""
    program = program or machine.program
    memory = machine.memory
    var_addrs = machine.var_addresses()

    # Variable types are preserved; locals are owned by their thread.
    global_types = {g.name: g.type for g in program.globals}
    for rec in machine.threads:
        tdef = program.thread(rec.name)
        local_types = dict(tdef.locals)
        for x, addr in rec.env.items():
            cell = memory[addr]
            declared = local_types.get(x, global_types.get(x))
            if declared is None:
                raise ConsistencyError(f"{rec.name}: unknown variable {x}")
            if cell.type != declared:
                raise ConsistencyError(
                    f"type of {x} changed: declared {declared}, "
                    f"memory has {cell.type}")
            if x in local_types and not rec.done and \
                    cell.owner != rec.tid:
                raise ConsistencyError(
                    f"local {x} of thread {rec.tid} owned by "
                    f"{cell.owner}")

    for addr, cell in memory.items():
        value = cell.value
        if isinstance(cell.type.base, RefBase) and value != 0:
            # Variables are not addressable.
            if value in var_addrs and value not in _heap_addrs(machine):
                raise ConsistencyError(
                    f"cell 0x{addr:x} points at a variable")
            target = memory.get(value)
            if target is None:
                raise ConsistencyError(
                    f"cell 0x{addr:x} points at unallocated 0x{value:x}")
            # Types are consistent between a ref and its referent.
            if target.type != cell.type.target():
                raise ConsistencyError(
                    f"ref 0x{addr:x} : {cell.type} points at cell of "
                    f"type {target.type}")
            # Owners are consistent for private ref (private s).
            if cell.type.mode is Mode.PRIVATE and \
                    cell.type.target().mode is Mode.PRIVATE and \
                    cell.owner != target.owner:
                raise ConsistencyError(
                    f"private ref 0x{addr:x} (owner {cell.owner}) points "
                    f"at private cell owned by {target.owner}")
        # No more than one writer; no readers besides the writer.
        if len(cell.writers) > 1:
            raise ConsistencyError(
                f"cell 0x{addr:x} has writers {cell.writers}")
        if cell.writers and not cell.readers <= cell.writers:
            raise ConsistencyError(
                f"cell 0x{addr:x} has readers {cell.readers} besides "
                f"writer {cell.writers}")


def _heap_addrs(machine: Machine) -> set[int]:
    """Addresses created by ``new`` (i.e. not variable storage)."""
    var_addrs = machine.var_addresses()
    return {a for a in machine.memory if a not in var_addrs}


def check_private_accesses(machine: Machine) -> list[str]:
    """The first soundness conclusion: every access to a private cell was
    performed by its owner at that time.

    Because ownership changes only at scast (recorded in the trace), we
    can replay the trace: a private cell's owner between scasts is the
    owner recorded by the machine.  This simplified validator checks the
    *current* state only; the property tests call it after every step, so
    every access is checked while its effects are fresh.
    """
    problems: list[str] = []
    for ev in machine.trace[-2:]:
        cell = machine.memory.get(ev.addr)
        if cell is None or ev.kind == "scast":
            continue
        if cell.type.mode is Mode.PRIVATE and cell.owner not in (0,
                                                                 ev.tid):
            problems.append(
                f"step {ev.step}: thread {ev.tid} accessed private cell "
                f"0x{ev.addr:x} owned by {cell.owner}")
    return problems
