"""Random well-typed program generation for the soundness property tests.

Programs are correct by construction: every statement is built from
variables whose declared types satisfy the corresponding Figure 4 rule, so
``typecheck`` accepts them (a property the tests assert) and the machine
can run them under arbitrary schedules.

The generated shapes deliberately exercise the interesting transitions:
globals shared through ``dynamic``, heap cells moving between threads via
``scast``, private cells dereferenced by their owners, and spawns that
overlap thread lifetimes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.formal.lang import (
    Assign, Deref, Global, IntType, Mode, New, Null, Num, Program,
    RefType, Scast, Seq, Skip, Spawn, ThreadDef, Var, seq_of,
)

# The type vocabulary.
D_INT = IntType(Mode.DYNAMIC)
P_INT = IntType(Mode.PRIVATE)
D_REF_D = RefType(Mode.DYNAMIC, D_INT)
P_REF_D = RefType(Mode.PRIVATE, D_INT)
P_REF_P = RefType(Mode.PRIVATE, P_INT)

LOCAL_TYPES = [P_INT, P_REF_D, P_REF_P, D_INT]
GLOBAL_TYPES = [D_INT, D_REF_D]


def gen_program(rng: random.Random, n_threads: int = 3,
                n_stmts: int = 8, n_globals: int = 3,
                n_locals: int = 4) -> Program:
    """One random well-typed program."""
    globals_ = [Global(f"g{i}", rng.choice(GLOBAL_TYPES))
                for i in range(n_globals)]
    thread_names = [f"t{i}" for i in range(n_threads)]
    threads = []
    for i, name in enumerate(thread_names):
        locals_ = [(f"{name}_x{j}", rng.choice(LOCAL_TYPES))
                   for j in range(n_locals)]
        # Worker threads may spawn later workers (never earlier ones, so
        # spawn graphs are acyclic and runs terminate).
        spawnable = thread_names[i + 1:]
        body = _gen_body(rng, globals_, locals_, spawnable, n_stmts)
        threads.append(ThreadDef(name, locals_, body))
    # main spawns a few workers and also runs a body of its own.
    main_locals = [(f"m_x{j}", rng.choice(LOCAL_TYPES))
                   for j in range(n_locals)]
    stmts = [Spawn(rng.choice(thread_names))
             for _ in range(rng.randint(1, max(1, n_threads)))]
    body = _gen_body(rng, globals_, main_locals, thread_names, n_stmts)
    main = ThreadDef("main", main_locals, Seq(seq_of(stmts), body))
    return Program(globals_, threads + [main], main="main")


def _vars_of(pool, wanted) -> list[str]:
    return [name for name, ty in pool if ty == wanted]


def _gen_body(rng: random.Random, globals_, locals_, spawnable,
              n_stmts: int):
    pool = [(g.name, g.type) for g in globals_] + list(locals_)
    stmts = []
    for _ in range(n_stmts):
        stmt = _gen_stmt(rng, pool, locals_, spawnable)
        if stmt is not None:
            stmts.append(stmt)
    return seq_of(stmts) if stmts else Skip()


def _gen_stmt(rng: random.Random, pool, locals_, spawnable):
    choices = ["const", "copy_int", "new", "null", "copy_ref",
               "deref_read", "deref_write", "scast", "spawn"]
    kind = rng.choice(choices)
    int_vars = _vars_of(pool, D_INT) + _vars_of(pool, P_INT)
    if kind == "const" and int_vars:
        return Assign(Var(rng.choice(int_vars)), Num(rng.randint(0, 9)))
    if kind == "copy_int" and len(int_vars) >= 2:
        dst, src = rng.sample(int_vars, 2)
        return Assign(Var(dst), Var(src))
    ref_vars = (_vars_of(pool, D_REF_D) + _vars_of(pool, P_REF_D)
                + _vars_of(pool, P_REF_P))
    if kind == "new" and ref_vars:
        name = rng.choice(ref_vars)
        ty = dict(pool)[name]
        return Assign(Var(name), New(ty.target()))
    if kind == "null" and ref_vars:
        return Assign(Var(rng.choice(ref_vars)), Null())
    if kind == "copy_ref":
        # Same target type required (ASSIGN is invariant below the top).
        to_d = _vars_of(pool, D_REF_D) + _vars_of(pool, P_REF_D)
        if len(to_d) >= 2:
            dst, src = rng.sample(to_d, 2)
            return Assign(Var(dst), Var(src))
    # Deref needs a *private* reference (DEREF rule).
    local_p_ref_d = [n for n, t in locals_ if t == P_REF_D]
    local_p_ref_p = [n for n, t in locals_ if t == P_REF_P]
    if kind == "deref_read" and int_vars and (
            local_p_ref_d or local_p_ref_p):
        src = rng.choice(local_p_ref_d + local_p_ref_p)
        return Assign(Var(rng.choice(int_vars)), Deref(src))
    if kind == "deref_write" and (local_p_ref_d or local_p_ref_p):
        dst = rng.choice(local_p_ref_d + local_p_ref_p)
        return Assign(Deref(dst), Num(rng.randint(0, 9)))
    if kind == "scast":
        # l := scast_{m1 int} x: x : private ref (m2 int) local;
        # l : m ref (m1 int).  Generate both directions:
        #   private ref (private int) := scast[private int] x_prd
        #   (dynamic->private: claim a shared cell)
        #   dyn/private ref (dynamic int) := scast[dynamic int] x_prp
        #   (private->dynamic: publish a private cell)
        direction = rng.choice(["claim", "publish"])
        if direction == "claim":
            srcs = [n for n, t in locals_ if t == P_REF_D]
            dsts = _vars_of(pool, P_REF_P)
            if srcs and dsts:
                return Assign(Var(rng.choice(dsts)),
                              Scast(P_INT, rng.choice(srcs)))
        else:
            srcs = [n for n, t in locals_ if t == P_REF_P]
            dsts = _vars_of(pool, P_REF_D) + _vars_of(pool, D_REF_D)
            if srcs and dsts:
                return Assign(Var(rng.choice(dsts)),
                              Scast(D_INT, rng.choice(srcs)))
    if kind == "spawn" and spawnable:
        return Spawn(rng.choice(spawnable))
    # Fall back to something always possible.
    if int_vars:
        return Assign(Var(rng.choice(int_vars)), Num(rng.randint(0, 9)))
    return None


# -- racy-by-construction programs --------------------------------------------
#
# The exploration engine (repro.explore) needs ground truth: a program
# that *definitely* contains a race, at a *known* location, whose
# detection is schedule-dependent.  gen_racy_program injects one into an
# otherwise well-typed random program and reports where it put it.


@dataclass(frozen=True)
class RaceSpec:
    """Where the injected race lives — the oracle the exploration tests
    match detector reports against."""

    #: "write-write" (two unsynchronized writes to a dynamic cell) or
    #: "lock-elision" (the cell is lock-protected but one thread skips
    #: the lock — only meaningful once rendered to mini-C, where locks
    #: exist; the formal program is identical to the write-write one)
    kind: str
    #: name of the racy dynamic int global
    global_name: str
    #: the two racing thread names
    threads: tuple[str, str]
    #: the values each injected write stores (distinct, for debugging)
    values: tuple[int, int]

    def matches_report(self, report) -> bool:
        """True when a :class:`repro.sharc.reports.Report` from the
        dynamic checker (or the Eraser baseline) flags the injected
        race's cell."""
        kinds = {"read conflict", "write conflict", "lock not held"}
        if report.kind.value not in kinds:
            return False
        if report.who.lvalue == self.global_name:
            return True
        return (report.last is not None
                and report.last.lvalue == self.global_name)

    def matches_key(self, key: str) -> bool:
        """Same test against an interp ``report_counts`` key
        (``"<kind> <lvalue>@<line>"`` — the kind is multi-word, e.g.
        ``"write conflict"``, and lvalues never contain spaces)."""
        lvalue = key.rsplit("@", 1)[0].split()[-1]
        return lvalue == self.global_name

    def as_dict(self) -> dict:
        return {"kind": self.kind, "global": self.global_name,
                "threads": list(self.threads),
                "values": list(self.values)}

    @staticmethod
    def from_dict(data: dict) -> "RaceSpec":
        return RaceSpec(kind=data["kind"], global_name=data["global"],
                        threads=tuple(data["threads"]),
                        values=tuple(data["values"]))


def inject_races(rng: random.Random, program: Program,
                 kinds: "list[str] | tuple[str, ...]",
                 ) -> tuple[Program, tuple[RaceSpec, ...]]:
    """Injects one race per entry of ``kinds`` into ``program``.

    Each race is a fresh ``dynamic int`` global written once by each of
    two sampled worker threads; main spawns every racing thread up front
    so their lifetimes can overlap under *some* schedule.  For a single
    ``"write-write"``/``"lock-elision"`` entry the rng consumption is
    exactly what :func:`gen_racy_program` always drew, so seeded
    programs are unchanged.
    """
    victims = [t.name for t in program.threads if t.name != "main"]
    if len(victims) < 2:
        raise ValueError("need at least two worker threads to race")
    globals_ = list(program.globals)
    specs: list[RaceSpec] = []
    #: thread name -> statements to inject, in race order
    plan: dict[str, list] = {}
    for kind in kinds:
        if kind not in ("write-write", "lock-elision"):
            raise ValueError(f"unknown race kind {kind!r}")
        racy_name = f"race{len(globals_)}"
        globals_.append(Global(racy_name, IntType(Mode.DYNAMIC)))
        first, second = rng.sample(victims, 2)
        values = (rng.randint(10, 49), rng.randint(50, 99))
        plan.setdefault(first, []).append(
            Assign(Var(racy_name), Num(values[0])))
        plan.setdefault(second, []).append(
            Assign(Var(racy_name), Num(values[1])))
        specs.append(RaceSpec(kind=kind, global_name=racy_name,
                              threads=(first, second), values=values))
    spawn_first: list[str] = []
    for spec in specs:
        for name in spec.threads:
            if name not in spawn_first:
                spawn_first.append(name)
    threads: list[ThreadDef] = []
    for tdef in program.threads:
        body = tdef.body
        if tdef.name == "main":
            # Spawns may duplicate main's own random spawns; extra
            # instances only add interleavings.
            for name in reversed(spawn_first):
                body = Seq(Spawn(name), body)
        else:
            for stmt in plan.get(tdef.name, ()):
                body = _inject(rng, body, stmt)
        threads.append(ThreadDef(tdef.name, list(tdef.locals), body))
    return Program(globals_, threads, main=program.main), tuple(specs)


def gen_racy_program(rng: random.Random, kind: str = "write-write",
                     n_threads: int = 3, n_stmts: int = 8,
                     n_globals: int = 3, n_locals: int = 4,
                     ) -> tuple[Program, RaceSpec]:
    """A random well-typed program with one injected race.

    The race: a fresh ``dynamic int`` global written once by each of two
    worker threads, both spawned by main before its own body runs, with
    random filler statements around the writes.  Whether a dynamic
    detector *observes* the conflict depends entirely on the
    interleaving — under the ``serial`` policy the two writes never
    overlap; under schedule sweeps they frequently do.  That gap is the
    exploration engine's reason to exist.
    """
    if kind not in ("write-write", "lock-elision"):
        raise ValueError(f"unknown race kind {kind!r}")
    n_threads = max(2, n_threads)
    program = gen_program(rng, n_threads=n_threads, n_stmts=n_stmts,
                          n_globals=n_globals, n_locals=n_locals)
    racy_program, specs = inject_races(rng, program, [kind])
    return racy_program, specs[0]


def _flatten(stmt) -> list:
    """Seq tree -> statement list (inverse of seq_of)."""
    if isinstance(stmt, Seq):
        return _flatten(stmt.first) + _flatten(stmt.second)
    if isinstance(stmt, Skip):
        return []
    return [stmt]


def _inject(rng: random.Random, body, stmt):
    """Inserts ``stmt`` at a random position in ``body``."""
    stmts = _flatten(body)
    stmts.insert(rng.randint(0, len(stmts)), stmt)
    return seq_of(stmts)
