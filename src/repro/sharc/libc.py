"""Built-in library functions and their trusted summaries (Section 4.4).

The paper stipulates that C library calls require pointer arguments to be
``private``, but also supports *trusted annotations that summarize the
read/write behavior of library calls*: a summarized argument may be passed
in any sharing mode except ``locked``; for a ``dynamic`` actual the summary
tells the runtime how to update the reader/writer sets, and a ``readonly``
actual is accepted when the summary is read-only.

This module is the static side of that mechanism: each builtin declares its
signature and, per pointer parameter, whether the callee reads (``"r"``),
writes (``"w"``), or both (``"rw"``).  The dynamic side (the Python
implementations) lives in :mod:`repro.runtime.builtins` so that the static
checker does not depend on the runtime.

Builtins are *mode-polymorphic per call site*: their parameter types are
instantiated fresh at each call so qualifier inference never unifies two
call sites through a library function (unlike user functions, which get the
``dynamic_in`` treatment of Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfront.ctypes import QualType


@dataclass(frozen=True)
class Builtin:
    """Static description of one built-in function."""

    name: str
    sig: str  # C-ish signature, parsed lazily
    #: read/write summary: parameter index -> "r" | "w" | "rw".
    #: Pointer parameters *not* listed here must be passed ``private``
    #: (or ``racy`` for the lock-internal arguments).
    summary: dict[int, str] = field(default_factory=dict, hash=False,
                                    compare=False)
    #: Index of a parameter whose pointee is handed to a new thread
    #: (seeds the sharing analysis).
    spawn_arg: Optional[int] = None
    #: Index of a function-pointer parameter spawned as a thread root.
    spawn_fn: Optional[int] = None
    #: True for allocation functions (returns fresh memory; the result's
    #: sharing mode is chosen by the receiving context).
    allocates: bool = False
    #: True if this builtin may block (affects the scheduler, not typing).
    blocking: bool = False
    varargs: bool = False


BUILTINS: dict[str, Builtin] = {}


def _register(b: Builtin) -> Builtin:
    BUILTINS[b.name] = b
    return b


# -- memory ---------------------------------------------------------------

_register(Builtin("malloc", "void *(unsigned long n)", allocates=True))
_register(Builtin("calloc", "void *(unsigned long n, unsigned long size)",
                  allocates=True))
_register(Builtin("free", "void (void *p)", summary={0: "w"}))
_register(Builtin("memset", "void *(void *p, int c, unsigned long n)",
                  summary={0: "w"}))
_register(Builtin("memcpy",
                  "void *(void *dst, void *src, unsigned long n)",
                  summary={0: "w", 1: "r"}))
_register(Builtin("memmove",
                  "void *(void *dst, void *src, unsigned long n)",
                  summary={0: "w", 1: "r"}))

# -- strings --------------------------------------------------------------

_register(Builtin("strlen", "unsigned long (char *s)", summary={0: "r"}))
_register(Builtin("strcpy", "char *(char *dst, char *src)",
                  summary={0: "w", 1: "r"}))
_register(Builtin("strncpy",
                  "char *(char *dst, char *src, unsigned long n)",
                  summary={0: "w", 1: "r"}))
_register(Builtin("strcmp", "int (char *a, char *b)",
                  summary={0: "r", 1: "r"}))
_register(Builtin("strncmp", "int (char *a, char *b, unsigned long n)",
                  summary={0: "r", 1: "r"}))
_register(Builtin("strchr", "char *(char *s, int c)", summary={0: "r"}))
_register(Builtin("strstr", "char *(char *hay, char *needle)",
                  summary={0: "r", 1: "r"}))
_register(Builtin("strcat", "char *(char *dst, char *src)",
                  summary={0: "rw", 1: "r"}))
_register(Builtin("strdup", "char *(char *s)", summary={0: "r"},
                  allocates=True))
_register(Builtin("atoi", "int (char *s)", summary={0: "r"}))

# -- formatted output (simulated; output is captured by the interpreter) ---

_register(Builtin("printf", "int (char *fmt, ...)", summary={0: "r"},
                  varargs=True))
_register(Builtin("snprintf",
                  "int (char *buf, unsigned long n, char *fmt, ...)",
                  summary={0: "w", 2: "r"}, varargs=True))
_register(Builtin("puts", "int (char *s)", summary={0: "r"}))
_register(Builtin("putchar", "int (int c)"))

# -- threads (pthread-like, names per the paper's example) -----------------

_register(Builtin("thread_create",
                  "int (void *(*fn)(void *), void *arg)",
                  spawn_fn=0, spawn_arg=1))
_register(Builtin("thread_join", "void *(int tid)", blocking=True))
_register(Builtin("thread_self", "int ()"))
_register(Builtin("thread_yield", "void ()"))
_register(Builtin("thread_exit", "void (void *ret)"))

# -- synchronization -------------------------------------------------------
# Lock/condvar internals are racy by nature (Section 4.1); the prelude
# defines mutex/cond as racy structs and these signatures take racy
# pointers, so ordinary mode checking passes them through.

_register(Builtin("mutex_init", "void (mutex racy *m)"))
_register(Builtin("mutex_lock", "void (mutex racy *m)", blocking=True))
_register(Builtin("mutex_trylock", "int (mutex racy *m)"))
_register(Builtin("mutex_unlock", "void (mutex racy *m)"))
_register(Builtin("cond_init", "void (cond racy *c)"))
_register(Builtin("cond_wait", "void (cond racy *c, mutex racy *m)",
                  blocking=True))
_register(Builtin("cond_signal", "void (cond racy *c)"))
_register(Builtin("cond_broadcast", "void (cond racy *c)"))

# Reader-writer locks and barriers: the paper's Section 7 "more support
# for locks" future work, implemented as an extension.
_register(Builtin("rwlock_init", "void (rwlock racy *l)"))
_register(Builtin("rwlock_rdlock", "void (rwlock racy *l)",
                  blocking=True))
_register(Builtin("rwlock_wrlock", "void (rwlock racy *l)",
                  blocking=True))
_register(Builtin("rwlock_unlock", "void (rwlock racy *l)"))
_register(Builtin("barrier_init", "void (barrier racy *b, int parties)"))
_register(Builtin("barrier_wait", "void (barrier racy *b)",
                  blocking=True))

# Aliases used by the paper's Figure 1.
for alias, target in (
    ("mutexLock", "mutex_lock"), ("mutexUnlock", "mutex_unlock"),
    ("condWait", "cond_wait"), ("condSignal", "cond_signal"),
    ("condBroadcast", "cond_broadcast"),
    ("pthread_mutex_lock", "mutex_lock"),
    ("pthread_mutex_unlock", "mutex_unlock"),
    ("pthread_cond_wait", "cond_wait"),
    ("pthread_cond_signal", "cond_signal"),
):
    original = BUILTINS[target]
    _register(Builtin(alias, original.sig, original.summary,
                      original.spawn_arg, original.spawn_fn,
                      original.allocates, original.blocking,
                      original.varargs))

# -- simulated external world ----------------------------------------------
# The benchmarks in Table 1 interact with files, the network, and the
# screen.  We model those through a small set of "world" builtins whose
# behaviour each workload configures (repro.runtime.world).  Their sharing
# summaries mirror read(2)/write(2)-style contracts.

_register(Builtin("world_nitems", "int ()"))
_register(Builtin("world_item_size", "unsigned long (int idx)"))
_register(Builtin("world_read",
                  "long (int idx, char *buf, unsigned long off, "
                  "unsigned long n)",
                  summary={1: "w"}, blocking=True))
_register(Builtin("world_write",
                  "long (int idx, char *buf, unsigned long n)",
                  summary={1: "r"}, blocking=True))
_register(Builtin("world_name", "long (int idx, char *buf, "
                                "unsigned long n)",
                  summary={1: "w"}))
_register(Builtin("world_recv", "long (int chan, char *buf, "
                                "unsigned long n)",
                  summary={1: "w"}, blocking=True))
_register(Builtin("world_send", "long (int chan, char *buf, "
                                "unsigned long n)",
                  summary={1: "r"}, blocking=True))

# -- misc -------------------------------------------------------------------

_register(Builtin("rand", "int ()"))
_register(Builtin("srand", "void (unsigned int seed)"))
_register(Builtin("abort", "void ()"))
_register(Builtin("exit", "void (int code)"))
_register(Builtin("sc_assert", "void (int cond)"))


_SIG_CACHE: dict[str, QualType] = {}


def builtin_type(name: str) -> QualType:
    """Returns a *fresh* :class:`QualType` (FuncType) for builtin ``name``.

    Fresh per call so inference never links distinct call sites through a
    library signature.
    """
    b = BUILTINS[name]
    if name not in _SIG_CACHE:
        from repro.cfront.parser import Parser, tokenize
        from repro.cfront.parser import PRELUDE
        pre = Parser(tokenize(PRELUDE, "<prelude>"), "<prelude>")
        pre.parse_program()
        parser = Parser(tokenize(f"{b.sig.split('(')[0]} __b({b.sig.split('(', 1)[1]};",
                                 f"<builtin:{name}>"),
                        f"<builtin:{name}>",
                        typedefs=pre.program.typedefs,
                        structs=pre.program.structs)
        base = parser.parse_base_type()
        _, qtype = parser.parse_declarator(base)
        _SIG_CACHE[name] = qtype
    return _SIG_CACHE[name].clone()


def is_builtin(name: str) -> bool:
    return name in BUILTINS
