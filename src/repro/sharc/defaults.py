"""The Section 4.1 defaulting rules, applied before inference proper.

SharC keeps the annotation burden low with a handful of predictable rules:

1. *Struct qualifier polymorphism* — an unannotated outermost field
   qualifier is the qualifier of the containing struct instance (the ``q``
   variable of Figure 2).  We encode it as the internal ``inherit`` mode,
   resolved at each access.  As a consequence, an explicit outermost
   ``private`` on a field is rejected (see
   :func:`repro.sharc.wellformed.check_program_types`).
2. *Lock fields are readonly* — a field or variable used in a ``locked``
   qualifier must be ``readonly`` for soundness, so SharC infers that.
3. *Racy types* — type definitions may be inherently racy (pthread's mutex
   and cond); any position of such a type defaults to ``racy``.
4. *Pointer-target inheritance* — outside struct definitions, an
   unannotated pointer target takes the pointer's own *explicit* mode
   (``int * dynamic`` becomes ``int dynamic * dynamic``); inside struct
   definitions unannotated pointer targets default to ``dynamic``.
5. *Arrays* are one object of the base type: the element mode is the
   array's mode (represented structurally; see ``ArrayType``).

Everything still unannotated after these rules is decided by the sharing
analysis (``private`` vs ``dynamic``).
"""

from __future__ import annotations

from repro.cfront import cast as A
from repro.cfront.ctypes import (
    ArrayType, FuncType, PtrType, QualType, StructTable, StructType,
)
from repro.cfront.parser import parse_expression
from repro.sharc import modes as M


def _is_racy_struct(qt: QualType, structs: StructTable) -> bool:
    base = qt.base
    if isinstance(base, ArrayType):
        base = base.elem.base
    return isinstance(base, StructType) and structs.is_racy(base.name)


def _lock_idents(lock_text: str) -> set[str]:
    """The identifiers mentioned by a ``locked(...)`` expression."""
    expr = parse_expression(lock_text)
    names: set[str] = set()
    for node in A.walk_expr(expr):
        if isinstance(node, A.Ident):
            names.add(node.name)
        elif isinstance(node, A.Member):
            names.add(node.name)
    return names


def _apply_deep_defaults(qt: QualType, structs: StructTable,
                         in_struct: bool, copied: bool = False) -> None:
    """Fills nested (below-outermost) positions per rules 3 and 4."""
    if isinstance(qt.base, ArrayType):
        # Arrays are a single object: the element position mirrors the
        # array's own mode and is filled once the array's is known.
        _apply_deep_defaults(qt.base.elem, structs, in_struct, copied)
        return
    if isinstance(qt.base, PtrType):
        target = qt.base.target
        target_copied = False
        if target.mode is None and not isinstance(target.base, FuncType):
            if _is_racy_struct(target, structs):
                target.mode = M.RACY
            elif in_struct:
                target.mode = M.DYNAMIC
            elif qt.mode is not None and (qt.explicit or copied):
                # Rule 4: the target copies the pointer's explicit mode,
                # recursively (int **dynamic -> int dynamic *dynamic
                # *dynamic).
                target.mode = qt.mode
                target_copied = True
        _apply_deep_defaults(target, structs, in_struct, target_copied)
    if isinstance(qt.base, FuncType):
        _apply_deep_defaults(qt.base.ret, structs, False)
        for param in qt.base.params:
            _apply_deep_defaults(param, structs, False)


def apply_struct_defaults(program: A.Program) -> None:
    """Applies rules 1–4 to every struct definition in ``program``."""
    structs = program.structs
    for name in structs.names():
        fields = structs.fields(name)
        lock_names: set[str] = set()
        for _, ftype in fields:
            for pos in ftype.walk():
                if pos.mode is not None and pos.mode.is_locked:
                    lock_names |= _lock_idents(pos.mode.lock)
        for fname, ftype in fields:
            if ftype.mode is None:
                if fname in lock_names:
                    # Rule 2: the lock path must be immutable.
                    ftype.mode = M.READONLY
                elif _is_racy_struct(ftype, structs):
                    ftype.mode = M.RACY
                elif isinstance(ftype.base, FuncType):
                    pass  # function fields have no cell of their own
                else:
                    ftype.mode = M.INHERIT
            _apply_deep_defaults(ftype, structs, in_struct=True)


def apply_decl_defaults(qt: QualType, structs: StructTable) -> None:
    """Applies rules 3 and 4 to a variable/param/return type."""
    if qt.mode is None and _is_racy_struct(qt, structs):
        qt.mode = M.RACY
    _apply_deep_defaults(qt, structs, in_struct=False)


def _decl_types_of_stmt(stmt: A.Stmt):
    for s in A.walk_stmts(stmt):
        if isinstance(s, A.DeclStmt):
            for d in s.decls:
                yield d
        elif isinstance(s, A.For) and isinstance(s.init, A.DeclStmt):
            for d in s.init.decls:
                yield d


def collect_local_decls(func: A.FuncDef) -> list[A.VarDecl]:
    """All local variable declarations in a function body."""
    if func.body is None:
        return []
    return list(_decl_types_of_stmt(func.body))


def apply_program_defaults(program: A.Program) -> None:
    """Applies all defaulting rules to a parsed program, in place.

    After this pass, every struct-field position has a concrete (possibly
    internal) mode, and the remaining ``None`` positions — in globals,
    locals, parameters, and return types — are exactly the positions the
    sharing analysis must decide.
    """
    apply_struct_defaults(program)

    # Collect lock identifiers used by locked() annotations anywhere, to
    # promote the named globals/locals to readonly (rule 2).
    lock_names: set[str] = set()
    for decl in program.decls:
        if isinstance(decl, A.FuncDef):
            types = [p for p in decl.qtype.base.params]
            types.append(decl.qtype.base.ret)
            for d in collect_local_decls(decl):
                types.append(d.qtype)
            for t in types:
                for pos in t.walk():
                    if pos.mode is not None and pos.mode.is_locked:
                        lock_names |= _lock_idents(pos.mode.lock)

    for decl in program.decls:
        if isinstance(decl, A.VarDecl):
            if decl.qtype.mode is None and decl.name in lock_names:
                decl.qtype.mode = M.READONLY
            apply_decl_defaults(decl.qtype, program.structs)
        elif isinstance(decl, A.FuncDef):
            func = decl.qtype.base
            assert isinstance(func, FuncType)
            apply_decl_defaults(func.ret, program.structs)
            for param in func.params:
                apply_decl_defaults(param, program.structs)
            for local in collect_local_decls(decl):
                if local.qtype.mode is None and local.name in lock_names:
                    local.qtype.mode = M.READONLY
                apply_decl_defaults(local.qtype, program.structs)
