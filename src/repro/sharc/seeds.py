"""Seeding the sharing analysis (Section 4.1).

For an object to be shared it must be read or written by a function spawned
as a thread.  The locations available to such a function are:

- *locals* — not seeds (only shared if their address escapes, which the
  constraint analysis tracks through ``&``),
- *formals* — the thread argument is inherently shared: its pointee seeds
  the analysis as ``dynamic``,
- *globals* — every global touched by any function reachable from a thread
  root is a seed.

Function pointers are resolved by assuming they may alias any function of
the appropriate type, which is sound under the paper's type-safety
assumption.  The initial thread (``main``) participates in sharing through
the same globals, so its accesses to seeded globals are checked too; but
``main`` itself is not a root (a program with no spawns shares nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfront import cast as A
from repro.cfront.ctypes import FuncType, PtrType, QualType
from repro.sharc.defaults import collect_local_decls
from repro.sharc.libc import BUILTINS, is_builtin


@dataclass
class SpawnSite:
    """One ``thread_create(fn, arg)`` call."""

    call: A.Call
    fn_names: list[str]  # resolved thread-root candidates
    arg: A.Expr | None


@dataclass
class SeedInfo:
    """Result of the seeding analysis."""

    thread_roots: set[str] = field(default_factory=set)
    reachable: set[str] = field(default_factory=set)
    touched_globals: set[str] = field(default_factory=set)
    spawn_sites: list[SpawnSite] = field(default_factory=list)
    #: name -> FuncDef for quick lookup
    functions: dict[str, A.FuncDef] = field(default_factory=dict)


def _local_names(func: A.FuncDef) -> set[str]:
    names = set(func.param_names)
    for decl in collect_local_decls(func):
        names.add(decl.name)
    return names


def functions_of_shape(program: A.Program, shape: tuple) -> list[str]:
    """All defined functions whose type shape matches ``shape``."""
    out = []
    for f in program.functions():
        if f.qtype.base.shape_key() == shape:
            out.append(f.name)
    return out


def _callee_shape(callee_type: QualType) -> tuple | None:
    base = callee_type.base
    if isinstance(base, PtrType):
        base = base.target.base
    if isinstance(base, FuncType):
        return ("func", base.ret.base.shape_key(),
                tuple(p.base.shape_key() for p in base.params),
                base.varargs)
    return None


@dataclass
class FuncFacts:
    """Per-function syntactic facts used by the seed computation."""

    direct_calls: set[str] = field(default_factory=set)
    #: shapes of indirect calls (via pointer-typed callees)
    indirect_shapes: set[tuple] = field(default_factory=set)
    globals_touched: set[str] = field(default_factory=set)
    #: functions referenced as values (address taken / stored)
    fn_refs: set[str] = field(default_factory=set)
    spawns: list[SpawnSite] = field(default_factory=list)


def collect_func_facts(program: A.Program, func: A.FuncDef,
                       fn_names: set[str]) -> FuncFacts:
    """Scans one function body for calls, spawns, and global accesses."""
    facts = FuncFacts()
    locals_ = _local_names(func)
    if func.body is None:
        return facts
    for e in A.all_exprs(func.body):
        if isinstance(e, A.Call):
            callee = e.callee
            if isinstance(callee, A.Ident):
                name = callee.name
                if is_builtin(name):
                    b = BUILTINS[name]
                    if b.spawn_fn is not None and len(e.args) > b.spawn_fn:
                        fn_expr = e.args[b.spawn_fn]
                        arg_expr = (e.args[b.spawn_arg]
                                    if b.spawn_arg is not None
                                    and len(e.args) > b.spawn_arg else None)
                        if isinstance(fn_expr, A.Ident) and \
                                fn_expr.name in fn_names:
                            roots = [fn_expr.name]
                        else:
                            # Spawn through a pointer: any matching shape.
                            roots = [f.name for f in program.functions()
                                     if _thread_shape(f)]
                        facts.spawns.append(SpawnSite(e, roots, arg_expr))
                elif name in fn_names and name not in locals_:
                    facts.direct_calls.add(name)
                else:
                    # Unknown name: treated as an indirect call through a
                    # variable; shape resolved during inference.
                    pass
            else:
                facts.indirect_shapes.add(("<expr>",))
        elif isinstance(e, A.Ident):
            name = e.name
            if name in locals_ or is_builtin(name):
                continue
            if name in fn_names:
                facts.fn_refs.add(name)
            else:
                facts.globals_touched.add(name)
    return facts


def _thread_shape(func: A.FuncDef) -> bool:
    """True if ``func`` has the thread-entry shape ``void *(void *)``."""
    ftype = func.qtype.base
    if not isinstance(ftype, FuncType) or len(ftype.params) != 1:
        return False
    return (ftype.params[0].is_pointer
            and ftype.ret.is_pointer)


def compute_seeds(program: A.Program) -> SeedInfo:
    """Runs the whole-program seed analysis.

    Indirect calls and function references are handled conservatively: a
    function whose address is taken anywhere is treated as callable from
    any function that performs an indirect call or mentions it.
    """
    info = SeedInfo()
    fn_names = {f.name for f in program.functions()}
    for f in program.functions():
        info.functions[f.name] = f

    facts = {f.name: collect_func_facts(program, f, fn_names)
             for f in program.functions()}

    global_names = {g.name for g in program.globals()}

    # Thread roots: every function passed to thread_create anywhere.
    for fname, fact in facts.items():
        for spawn in fact.spawns:
            info.spawn_sites.append(spawn)
            info.thread_roots.update(spawn.fn_names)

    # Reachability from roots over direct calls + referenced functions.
    # A function whose address escapes inside a reachable function is
    # conservatively reachable (function pointers alias by type).
    worklist = list(info.thread_roots)
    while worklist:
        name = worklist.pop()
        if name in info.reachable or name not in facts:
            continue
        info.reachable.add(name)
        fact = facts[name]
        for callee in fact.direct_calls | fact.fn_refs:
            if callee not in info.reachable:
                worklist.append(callee)

    # Also: functions referenced as values from *anywhere* that match an
    # indirect call performed by a reachable function are reachable.  We
    # over-approximate by adding all fn_refs of reachable functions above;
    # fields holding function pointers are resolved by the inference
    # phase when linking call sites.

    for name in info.reachable:
        info.touched_globals |= facts[name].globals_touched

    return info


def seed_types(program: A.Program, info: SeedInfo) -> list[QualType]:
    """Returns the qualified-type positions that must be ``dynamic``:

    - every unannotated position of a touched global,
    - the pointee (and deeper positions) of each thread root's formal,
    - the pointee of each thread root's return type (the value is handed
      to ``thread_join`` in another thread).
    """
    seeded: list[QualType] = []
    for g in program.globals():
        if g.name in info.touched_globals:
            seeded.extend(g.qtype.walk())
    for root in info.thread_roots:
        func = info.functions.get(root)
        if func is None:
            continue
        ftype = func.qtype.base
        assert isinstance(ftype, FuncType)
        for param in ftype.params:
            if isinstance(param.base, PtrType):
                seeded.extend(param.base.target.walk())
        if isinstance(ftype.ret.base, PtrType):
            seeded.extend(ftype.ret.base.target.walk())
    return seeded
