"""Reference-count instrumentation marking and the rewritten-source view.

The access checks themselves (chkread / chkwrite / lock-held / oneref) are
attached to AST nodes by the type checker.  This pass adds what Section 4.3
describes: a whole-program, flow-insensitive, type-based analysis decides
*which pointer writes need reference-count updates* — only pointers whose
pointee shape may be subject to a sharing cast are tracked, which is the
optimization that makes reference counting affordable before the
Levanoni–Petrank adaptation takes it the rest of the way.

``instrumented_listing`` renders the program with its runtime checks shown
as comments, mirroring the source-to-source output of the real SharC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfront import cast as A
from repro.cfront.ctypes import PtrType, QualType
from repro.cfront.pretty import pretty_program
from repro.sharc.defaults import collect_local_decls
from repro.sharc.inference import InferenceResult


@dataclass
class InstrumentStats:
    """How many sites got reference-count instrumentation."""

    rc_writes: int = 0
    rc_locals: int = 0
    tracked_shapes: set = field(default_factory=set)


def _pointee_shape(qt: QualType | None):
    if qt is None or not isinstance(qt.base, PtrType):
        return None
    return qt.base.target.base.shape_key()


def mark_rc_writes(program: A.Program, inference: InferenceResult,
                   rc_all: bool = False) -> InstrumentStats:
    """Marks pointer-write sites needing reference-count updates.

    With ``rc_all`` True every pointer write is tracked — the naive scheme
    the paper rejects (Section 4.3's >60% overhead); used by the RC
    ablation benchmark.
    """
    stats = InstrumentStats(tracked_shapes=set(inference.scast_shapes))

    def tracked(qt: QualType | None) -> bool:
        shape = _pointee_shape(qt)
        if shape is None:
            return False
        return rc_all or shape in stats.tracked_shapes

    for func in program.functions():
        assert func.body is not None
        rc_locals: list[str] = []
        for decl in collect_local_decls(func):
            if tracked(decl.qtype):
                decl.rc_track = True  # type: ignore[attr-defined]
                rc_locals.append(decl.name)
                stats.rc_locals += 1
        ftype = func.qtype.base
        for pname, ptype in zip(func.param_names, ftype.params):
            if tracked(ptype):
                rc_locals.append(pname)
                stats.rc_locals += 1
        func.rc_locals = rc_locals  # type: ignore[attr-defined]
        for e in A.all_exprs(func.body):
            if isinstance(e, A.Assign) and tracked(e.lhs.ctype):
                e.rc_track = True  # type: ignore[attr-defined]
                stats.rc_writes += 1
            elif isinstance(e, A.SCastExpr) and tracked(e.to):
                e.rc_track = True  # type: ignore[attr-defined]
                stats.rc_writes += 1
    for g in program.globals():
        if tracked(g.qtype):
            g.rc_track = True  # type: ignore[attr-defined]
    return stats


def _check_line(info, fallback_kind: str) -> str:
    """One ``// loc: check(...)`` listing line for an access check."""
    if info.mode.is_locked:
        # Name the lock expression: two lock-held checks at the same
        # lvalue guarding different locks must be distinguishable.
        if info.lock_ast is not None:
            from repro.cfront.pretty import pretty_expr
            lock = pretty_expr(info.lock_ast)
        else:
            lock = "?"
        body = f"lock-held({info.lvalue_text}, {lock})"
    else:
        body = f"{fallback_kind}({info.lvalue_text})"
    flags = []
    if getattr(info, "elide", False):
        flags.append("elide")
    if getattr(info, "range_walk", False):
        flags.append("range")
    if getattr(info, "lockset_refined", False):
        flags.append(f"locked:{info.refined_lock}")
    suffix = f" [{','.join(flags)}]" if flags else ""
    return f"// {info.loc}: {body}{suffix}"


def instrumented_listing(program: A.Program) -> str:
    """The program rendered with inferred qualifiers, followed by a table
    of the runtime checks the interpreter will perform."""
    lines = [pretty_program(program, show_inferred=True), "",
             "// --- runtime checks ---"]
    for func in program.functions():
        assert func.body is not None
        for e in A.all_exprs(func.body):
            read = getattr(e, "sharc_read", None)
            write = getattr(e, "sharc_write", None)
            if read is not None:
                lines.append(_check_line(read, "chkread"))
            if write is not None:
                lines.append(_check_line(write, "chkwrite"))
            if getattr(e, "sharc_oneref", False):
                src = getattr(e, "sharc_src_write", None)
                lv = getattr(e, "src_lv", None)
                text = (src.lvalue_text if src
                        else lv.text if lv is not None else "?")
                lines.append(f"// {e.loc}: oneref({text}) + null-out")
            if getattr(e, "rc_track", False):
                lines.append(f"// {e.loc}: refcount update")
    return "\n".join(lines) + "\n"
