"""Static checking and runtime-check placement (Figure 4, generalized).

After inference every type position has a concrete mode.  This phase:

- validates assignments, argument passing, returns, and casts: pointer
  targets are *invariant* in their modes at every depth
  (``target_compatible``); a mismatch at the first target level is an error
  accompanied by an ``SCAST`` suggestion (the paper's workflow for the
  pipeline example), a deeper mismatch is an error with no cast possible
  (Section 3.2);
- enforces the write rules: ``readonly`` cells are writable only as fields
  of ``private`` struct instances;
- verifies ``locked(e)`` lock expressions are constant (built from
  unmodified locals and readonly values) and resolves them to evaluable
  ASTs, substituting sibling-field names with accesses through the struct
  instance;
- checks sharing casts: the source must be a pointer l-value, ``void*``
  sharing casts are forbidden (Section 4), and modes below the first
  target level must agree; warns when the nulled-out source is live
  afterwards;
- enforces the library rules of Section 4.4: unsummarized pointer
  arguments (and all vararg pointer arguments) must be ``private``;
  summarized arguments accept any mode except ``locked``;
- attaches :class:`AccessInfo` metadata to every l-value occurrence whose
  mode needs a runtime check (``dynamic``/``dynamic_in`` -> chkread /
  chkwrite; ``locked`` -> lock-held check), which the interpreter consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DiagKind, DiagnosticSink, Loc
from repro.cfront import cast as A
from repro.cfront.ctypes import (
    ArrayType, FuncType, Prim, PtrType, QualType, shape_equal,
)
from repro.cfront.parser import parse_expression
from repro.cfront.pretty import pretty_expr, pretty_type
from repro.sharc import modes as M
from repro.sharc.defaults import collect_local_decls
from repro.sharc.exprtypes import LValue, NULL_TYPE, TypeWalker
from repro.sharc.libc import BUILTINS


@dataclass
class AccessInfo:
    """Runtime-check metadata for one l-value occurrence.

    The check kind is resolved once here, at instrumentation time — the
    interpreter consults ``is_lock``/``is_dynamic`` on every access, so
    they are plain precomputed fields rather than per-access mode
    dispatch."""

    mode: M.Mode
    lvalue_text: str
    loc: Loc
    lock_ast: Optional[A.Expr] = None
    #: precomputed dispatch: lock-held check vs dynamic discipline check
    is_lock: bool = field(init=False, default=False)
    is_dynamic: bool = field(init=False, default=False)
    #: static check-elimination marks (repro.sharc.checkelim).  ``elide``:
    #: a prior check of the same lvalue dominates this one with no yield
    #: point between — the interpreter may discharge it via the
    #: ``ShadowMemory.recheck`` guard.  ``range_walk``: this access is a
    #: monotone array walk inside a call-free loop — route it through the
    #: range-batched check APIs.
    elide: bool = field(init=False, default=False)
    range_walk: bool = field(init=False, default=False)
    #: static lockset refinement marks (repro.sharc.lockset).  A refined
    #: access is still ``dynamic`` — the interpreter merely gets to
    #: discharge it through the held-lock log + ``recheck`` guard when
    #: ``refined_lock`` (a program global mutex) is indeed held.
    lockset_refined: bool = field(init=False, default=False)
    refined_lock: Optional[str] = field(init=False, default=None)
    #: abstract-interpretation marks (repro.sharc.absint).  ``ai_elide``:
    #: the interval analysis proved a dominating same-granule cover
    #: (possibly across check-free calls or under a symbolic index
    #: offset) — dischargeable through the same ``recheck`` guard as
    #: ``elide``, behind the separate runtime ``absint`` switch.
    #: ``ai_range``: a monotone array walk checkelim skipped (the loop
    #: calls functions, all proven check-free) — route through the
    #: range-batched APIs when ``absint`` is on.
    ai_elide: bool = field(init=False, default=False)
    ai_range: bool = field(init=False, default=False)
    #: precomputed per-site attribution keys (repro.obs.sitestats):
    #: ``(file, line, lvalue, op)`` for the read and write flavour of
    #: this occurrence, built once here so the hot check paths never
    #: allocate a key tuple per access
    site_key_r: tuple = field(init=False, default=())
    site_key_w: tuple = field(init=False, default=())

    def __post_init__(self) -> None:
        self.is_lock = self.mode.is_locked
        self.is_dynamic = self.mode.kind in (M.ModeKind.DYNAMIC,
                                             M.ModeKind.DYNAMIC_IN)
        self.site_key_r = (self.loc.file, self.loc.line,
                           self.lvalue_text, "r")
        self.site_key_w = (self.loc.file, self.loc.line,
                           self.lvalue_text, "w")

    @property
    def is_checked(self) -> bool:
        return self.is_lock or self.is_dynamic


@dataclass
class CheckStats:
    """Census of inserted runtime checks (reported by the harness)."""

    read_checks: int = 0
    write_checks: int = 0
    lock_checks: int = 0
    oneref_checks: int = 0
    suggestions: int = 0

    @property
    def total(self) -> int:
        return (self.read_checks + self.write_checks + self.lock_checks
                + self.oneref_checks)


def _stmt_subtree_exprs(stmt: A.Stmt):
    """All expressions under one statement, pre-order."""
    return list(A.all_exprs(stmt))


def _target_of(qt: QualType) -> Optional[QualType]:
    if isinstance(qt.base, PtrType):
        return qt.base.target
    if isinstance(qt.base, ArrayType):
        return qt.base.elem
    return None


def _is_voidish(qt: QualType) -> bool:
    return isinstance(qt.base, Prim) and qt.base.is_void


def _mode_of(qt: Optional[QualType]) -> M.Mode:
    if qt is None or qt.mode is None:
        return M.PRIVATE
    return qt.mode


class CheckWalker(TypeWalker):
    """The checking phase walker; see module docstring."""

    def __init__(self, program: A.Program, sink: DiagnosticSink) -> None:
        super().__init__(program, sink)
        self.stats = CheckStats()
        self._assigned_locals: set[str] = set()
        self._addr_taken: set[str] = set()
        self._scast_sources: list[tuple[str, Loc]] = []

    # -- per-function setup -------------------------------------------------

    def walk_func(self, func: A.FuncDef) -> None:
        self._assigned_locals = self._collect_assigned(func)
        self._addr_taken = self._collect_addr_taken(func)
        self._scast_sources = []
        super().walk_func(func)
        self._check_liveness_after_scast(func)

    @staticmethod
    def _collect_addr_taken(func: A.FuncDef) -> set[str]:
        names: set[str] = set()
        if func.body is None:
            return names
        for e in A.all_exprs(func.body):
            if isinstance(e, A.Unop) and e.op == "&" and \
                    isinstance(e.operand, A.Ident):
                names.add(e.operand.name)
        return names

    def _is_register_like(self, lv: LValue) -> bool:
        """A private scalar local whose address is never taken lives in a
        register in compiled C; its accesses are not memory accesses.
        The interpreter uses this mark to keep the accesses-census (and
        the %%dynamic column) comparable to the paper's."""
        return (lv.kind == "var" and lv.is_local
                and lv.name not in self._addr_taken
                and not lv.qt.is_struct and not lv.qt.is_array
                and _mode_of(lv.qt).kind in (M.ModeKind.PRIVATE,
                                             M.ModeKind.READONLY))

    @staticmethod
    def _collect_assigned(func: A.FuncDef) -> set[str]:
        """Locals that may not appear in lock expressions because their
        value can change: assigned more than once, mutated in place, or
        address-taken.  A single initializing assignment is allowed —
        the local is constant from then on, which is what the paper's
        "unmodified locals" rule is protecting."""
        names: set[str] = set()
        assign_counts: dict[str, int] = {}
        if func.body is None:
            return names
        for e in A.all_exprs(func.body):
            if isinstance(e, A.Assign) and isinstance(e.lhs, A.Ident):
                assign_counts[e.lhs.name] = \
                    assign_counts.get(e.lhs.name, 0) + 1
                if e.op != "=":
                    names.add(e.lhs.name)
            elif isinstance(e, A.Unop) and e.op in ("++", "--") and \
                    isinstance(e.operand, A.Ident):
                names.add(e.operand.name)
            elif isinstance(e, A.Unop) and e.op == "&" and \
                    isinstance(e.operand, A.Ident):
                names.add(e.operand.name)
        names.update(n for n, count in assign_counts.items() if count > 1)
        return names

    # -- lock expressions ----------------------------------------------------

    def _resolve_lock(self, mode: M.Mode, lv: LValue,
                      node: A.Expr) -> Optional[A.Expr]:
        """Builds the evaluable lock expression for a ``locked`` access."""
        assert mode.lock is not None
        try:
            lock = parse_expression(mode.lock)
        except Exception:  # well-formedness already reported it
            return None
        if lv.struct_name is not None and lv.obj_expr is not None:
            field_names = {fname for fname, _
                           in self.structs.fields(lv.struct_name)}
            lock = self._substitute_fields(lock, field_names, lv)
        # Type the resolved expression so the interpreter has layout
        # metadata (member offsets) for evaluating it at each access.
        self.type_of(lock)
        self._check_lock_constant(lock, node)
        return lock

    def _substitute_fields(self, e: A.Expr, fields: set[str],
                           lv: LValue) -> A.Expr:
        """Replaces bare sibling-field names with accesses through the
        struct instance (``mut`` -> ``S->mut`` for access ``S->sdata``)."""
        if isinstance(e, A.Ident) and e.name in fields:
            arrow = isinstance(lv.node, A.Member) and lv.node.arrow
            return A.Member(lv.obj_expr, e.name, arrow=arrow, loc=e.loc)
        for attr in ("operand", "lhs", "rhs", "obj", "arr", "idx"):
            child = getattr(e, attr, None)
            if isinstance(child, A.Expr):
                setattr(e, attr, self._substitute_fields(child, fields, lv))
        return e

    def _check_lock_constant(self, lock: A.Expr, node: A.Expr) -> None:
        """Lock expressions must use only unmodified locals and readonly
        values (Section 2), so the lock identity cannot change.  A mutex
        *object* (struct-typed variable) names its own address, which is
        constant by construction."""
        for sub in A.walk_expr(lock):
            if isinstance(sub, A.Ident):
                lv = self.lvalue_of(sub)
                if lv is None:
                    continue
                if lv.qt.is_struct or lv.qt.is_array:
                    continue  # the lock object itself: address is fixed
                if lv.is_local:
                    if sub.name in self._assigned_locals:
                        self.sink.error(
                            DiagKind.LOCK_NOT_CONSTANT,
                            f"lock expression uses local '{sub.name}' "
                            "which is modified in this function",
                            node.loc)
                elif not _mode_of(lv.qt).is_readonly and \
                        not _mode_of(lv.qt).is_racy:
                    self.sink.error(
                        DiagKind.LOCK_NOT_CONSTANT,
                        f"lock expression uses global '{sub.name}' "
                        "which is not readonly", node.loc)
            elif isinstance(sub, A.Member):
                lv = self.lvalue_of(sub)
                if lv is None:
                    continue
                if lv.qt.is_struct or lv.qt.is_array:
                    continue
                if not _mode_of(lv.qt).is_readonly:
                    self.sink.error(
                        DiagKind.LOCK_NOT_CONSTANT,
                        f"lock path component '{pretty_expr(sub)}' is not "
                        "readonly", node.loc)

    # -- access hooks -----------------------------------------------------------

    def _locked_in_private_instance(self, lv: LValue) -> bool:
        """A locked field of a *private* struct instance needs no lock
        check: the object is unreachable by other threads, exactly like
        the readonly initialization exception of Section 2.  (Accesses
        with no containing instance — globals, locked arrays — are never
        exempt.)"""
        return (lv.kind in ("member", "index")
                and lv.container_qt is not None
                and _mode_of(lv.container_qt).is_private)

    def on_read(self, lv: LValue, node: A.Expr) -> None:
        mode = _mode_of(lv.qt)
        if self._is_register_like(lv):
            node.sharc_reg = True  # type: ignore[attr-defined]
        if mode.kind in (M.ModeKind.DYNAMIC, M.ModeKind.DYNAMIC_IN):
            node.sharc_read = AccessInfo(mode, lv.text, node.loc)
            self.stats.read_checks += 1
        elif mode.is_locked:
            if self._locked_in_private_instance(lv):
                return
            lock = self._resolve_lock(mode, lv, node)
            node.sharc_read = AccessInfo(mode, lv.text, node.loc, lock)
            self.stats.lock_checks += 1

    def on_write(self, lv: LValue, node: A.Expr) -> None:
        mode = _mode_of(lv.qt)
        if self._is_register_like(lv):
            node.sharc_reg = True  # type: ignore[attr-defined]
        if mode.is_readonly:
            container = _mode_of(lv.container_qt)
            if lv.kind not in ("member", "index") or \
                    lv.container_qt is None or not container.is_private:
                self.sink.error(
                    DiagKind.READONLY_WRITE,
                    f"write to readonly l-value '{lv.text}' (readonly is "
                    "writable only as a field of a private struct)",
                    node.loc)
            return
        if mode.kind in (M.ModeKind.DYNAMIC, M.ModeKind.DYNAMIC_IN):
            node.sharc_write = AccessInfo(mode, lv.text, node.loc)
            self.stats.write_checks += 1
        elif mode.is_locked:
            if self._locked_in_private_instance(lv):
                return
            lock = self._resolve_lock(mode, lv, node)
            node.sharc_write = AccessInfo(mode, lv.text, node.loc, lock)
            self.stats.lock_checks += 1

    # -- compatibility ------------------------------------------------------------

    def _compat(self, lhs_t: Optional[QualType],
                rhs_t: Optional[QualType],
                rhs_expr: Optional[A.Expr], loc: Loc,
                what: str) -> None:
        """Checks that a value of ``rhs_t`` may flow into ``lhs_t``."""
        if lhs_t is None or rhs_t is None or rhs_t is NULL_TYPE:
            return
        lt = _target_of(lhs_t)
        rt = _target_of(rhs_t)
        if lt is None or rt is None:
            return  # arithmetic / pointer-integer flows are permitted
        if isinstance(lt.base, FuncType) or isinstance(rt.base, FuncType):
            return  # function pointers: shapes checked by the frontend
        if _is_voidish(lt) or _is_voidish(rt):
            # void* flows compare only the first target level, and SCAST
            # cannot fix a mismatch (void* sharing casts are forbidden).
            self._compat_level(lt, rt, rhs_expr, loc, what,
                               castable=False)
            return
        if not shape_equal(lt, rt):
            # Differing base shapes are a plain C type matter; SharC only
            # rules on sharing modes, so accept what the frontend accepted.
            return
        self._compat_level(lt, rt, rhs_expr, loc, what, castable=True)
        # Deeper levels must agree exactly.
        lt2, rt2 = _target_of(lt), _target_of(rt)
        while lt2 is not None and rt2 is not None:
            if _mode_of(lt2) != _mode_of(rt2) and not \
                    M.target_compatible(_mode_of(lt2), _mode_of(rt2)):
                self.sink.error(
                    DiagKind.MODE_MISMATCH,
                    f"{what}: sharing modes differ below the first "
                    f"target level ({_mode_of(lt2)} vs {_mode_of(rt2)}); "
                    "no sharing cast can convert this (Section 3.2)", loc)
                return
            lt2, rt2 = _target_of(lt2), _target_of(rt2)

    def _compat_level(self, lt: QualType, rt: QualType,
                      rhs_expr: Optional[A.Expr], loc: Loc, what: str,
                      castable: bool) -> None:
        lm, rm = _mode_of(lt), _mode_of(rt)
        if M.target_compatible(lm, rm):
            return
        message = (f"{what}: pointer target modes are incompatible "
                   f"({lm} vs {rm})")
        diag = self.sink.error(DiagKind.MODE_MISMATCH, message, loc)
        if castable and rhs_expr is not None:
            to_type = QualType(PtrType(QualType(rt.base, lm)), None)
            suggestion = (f"SCAST({pretty_type(to_type)}, "
                          f"{pretty_expr(rhs_expr)})")
            diag.notes.append(f"suggested sharing cast: {suggestion}")
            self.sink.suggest(
                DiagKind.SCAST_SUGGESTION,
                f"replace '{pretty_expr(rhs_expr)}' with '{suggestion}'",
                loc)
            self.stats.suggestions += 1

    # -- assignment / call / return hooks ---------------------------------------

    def on_assign(self, lhs_t, rhs_t, rhs, node) -> None:
        loc = node.loc if isinstance(node, A.Expr) else node.loc
        self._compat(lhs_t, rhs_t, rhs, loc, "assignment")

    def on_return(self, value_t, node) -> None:
        if self.current_func is None:
            return
        ftype = self.current_func.qtype.base
        assert isinstance(ftype, FuncType)
        if value_t is not None:
            self._compat(ftype.ret, value_t, node.value, node.loc,
                         "return value")

    def on_cast(self, to, src_t, node) -> None:
        """A plain cast may not change sharing modes."""
        if src_t is None or src_t is NULL_TYPE:
            return
        lt, rt = _target_of(to), _target_of(src_t)
        if lt is None or rt is None:
            return
        if _is_voidish(lt) or _is_voidish(rt):
            if not M.target_compatible(_mode_of(lt), _mode_of(rt)):
                self.sink.error(
                    DiagKind.MODE_MISMATCH,
                    f"cast changes sharing mode ({_mode_of(rt)} to "
                    f"{_mode_of(lt)}); use SCAST", node.loc)
            return
        if not shape_equal(lt, rt):
            return
        pairs = zip(lt.walk(), rt.walk())
        for a, b in pairs:
            if not M.target_compatible(_mode_of(a), _mode_of(b)):
                self.sink.error(
                    DiagKind.MODE_MISMATCH,
                    f"cast changes sharing mode ({_mode_of(b)} to "
                    f"{_mode_of(a)}); use SCAST", node.loc)
                return

    def on_call(self, func, ftype, builtin_name, node, arg_types) -> None:
        n_params = len(ftype.params)
        if len(node.args) < n_params or (
                len(node.args) > n_params and not ftype.varargs):
            self.sink.error(
                DiagKind.PARSE,
                f"call passes {len(node.args)} arguments, expected "
                f"{n_params}{' or more' if ftype.varargs else ''}",
                node.loc)
            return
        if builtin_name is not None:
            self._check_builtin_call(builtin_name, ftype, node, arg_types)
            return
        callee = func.name if func is not None else "function pointer"
        for i, (param, arg_t) in enumerate(zip(ftype.params, arg_types)):
            self._compat(param, arg_t, node.args[i], node.args[i].loc,
                         f"argument {i + 1} of {callee}")
        self._check_varargs(ftype, node, arg_types)

    def _check_varargs(self, ftype: FuncType, node: A.Call,
                       arg_types) -> None:
        """Vararg pointer arguments must be private (Section 4.4)."""
        if not ftype.varargs:
            return
        for i in range(len(ftype.params), len(node.args)):
            arg_t = arg_types[i]
            if arg_t is None or arg_t is NULL_TYPE:
                continue
            target = _target_of(arg_t)
            if target is not None and not _mode_of(target).is_private \
                    and not _mode_of(target).is_readonly:
                self.sink.error(
                    DiagKind.VARARG_NOT_PRIVATE,
                    f"vararg pointer argument "
                    f"'{pretty_expr(node.args[i])}' must be private, "
                    f"got {_mode_of(target)}", node.args[i].loc)

    def _check_builtin_call(self, name: str, ftype: FuncType,
                            node: A.Call, arg_types) -> None:
        b = BUILTINS[name]
        node.arg_access = {}  # type: ignore[attr-defined]
        for i, (param, arg_t) in enumerate(zip(ftype.params, arg_types)):
            if arg_t is None or arg_t is NULL_TYPE:
                continue
            if i == b.spawn_arg or i == b.spawn_fn or \
                    name == "thread_exit":
                # Data handed across threads is inherently shared; the
                # seed analysis forces it dynamic, which is exactly right.
                continue
            target = _target_of(arg_t)
            if target is None:
                continue
            if isinstance(target.base, FuncType):
                continue
            mode = _mode_of(target)
            if i in b.summary:
                rw = b.summary[i]
                if mode.is_locked:
                    self.sink.error(
                        DiagKind.MODE_MISMATCH,
                        f"library call {name} cannot take a locked "
                        f"argument '{pretty_expr(node.args[i])}' "
                        "(summaries accept any mode except locked, "
                        "Section 4.4)", node.args[i].loc)
                    continue
                if "w" in rw and mode.is_readonly:
                    self.sink.error(
                        DiagKind.READONLY_WRITE,
                        f"library call {name} writes through readonly "
                        f"argument '{pretty_expr(node.args[i])}'",
                        node.args[i].loc)
                    continue
                if mode.kind in (M.ModeKind.DYNAMIC,
                                 M.ModeKind.DYNAMIC_IN):
                    info = AccessInfo(mode, pretty_expr(node.args[i]),
                                      node.args[i].loc)
                    node.arg_access[i] = (rw, info)
                    if "r" in rw:
                        self.stats.read_checks += 1
                    if "w" in rw:
                        self.stats.write_checks += 1
                continue
            # Unsummarized pointer argument: must be private (or the racy
            # internals of locks, which the signature declares racy).
            sig_mode = _mode_of(_target_of(param))
            if sig_mode.is_racy:
                if not mode.is_racy:
                    self.sink.error(
                        DiagKind.MODE_MISMATCH,
                        f"argument '{pretty_expr(node.args[i])}' of "
                        f"{name} must be the racy internals of a lock, "
                        f"got {mode}", node.args[i].loc)
                continue
            if not mode.is_private:
                self.sink.error(
                    DiagKind.MODE_MISMATCH,
                    f"library call {name} requires private pointer "
                    f"argument, '{pretty_expr(node.args[i])}' is {mode}",
                    node.args[i].loc)
        self._check_varargs(ftype, node, arg_types)

    # -- sharing casts --------------------------------------------------------------

    def on_scast(self, to, src_t, node) -> None:
        lv: Optional[LValue] = getattr(node, "src_lv", None)
        if lv is None or not (lv.qt.is_pointer or lv.qt.is_array):
            self.sink.error(
                DiagKind.BAD_SCAST,
                "SCAST source must be a pointer l-value (it is nulled "
                "out)", node.loc)
            return
        if not to.is_pointer:
            self.sink.error(DiagKind.BAD_SCAST,
                            "SCAST target type must be a pointer",
                            node.loc)
            return
        lt = _target_of(to)
        rt = _target_of(lv.qt)
        assert lt is not None and rt is not None
        if _is_voidish(lt) or _is_voidish(rt):
            self.sink.error(
                DiagKind.VOID_SCAST,
                "sharing casts on (void *) are forbidden: cast to a "
                "concrete type first (Section 4)", node.loc)
            return
        if not shape_equal(lt, rt):
            self.sink.error(
                DiagKind.BAD_SCAST,
                f"SCAST changes the base type ({lt.base} vs {rt.base})",
                node.loc)
            return
        lt2, rt2 = _target_of(lt), _target_of(rt)
        while lt2 is not None and rt2 is not None:
            if not M.target_compatible(_mode_of(lt2), _mode_of(rt2)):
                self.sink.error(
                    DiagKind.BAD_SCAST,
                    "SCAST may only convert the first target level; "
                    f"deeper modes differ ({_mode_of(lt2)} vs "
                    f"{_mode_of(rt2)})", node.loc)
                return
            lt2, rt2 = _target_of(lt2), _target_of(rt2)
        # Legal: record the oneref check and the null-out write.
        node.sharc_oneref = True  # type: ignore[attr-defined]
        self.stats.oneref_checks += 1
        mode = _mode_of(lv.qt)
        if mode.is_locked and self._locked_in_private_instance(lv):
            pass  # initialization of a still-private object
        elif mode.is_locked:
            lock = self._resolve_lock(mode, lv, node)
            node.sharc_src_write = AccessInfo(  # type: ignore[attr-defined]
                mode, lv.text, node.loc, lock)
            self.stats.lock_checks += 1
        elif mode.kind in (M.ModeKind.DYNAMIC, M.ModeKind.DYNAMIC_IN):
            node.sharc_src_write = AccessInfo(  # type: ignore[attr-defined]
                mode, lv.text, node.loc, None)
            self.stats.write_checks += 1
        if mode.is_readonly and not (
                lv.kind in ("member", "index")
                and _mode_of(lv.container_qt).is_private):
            self.sink.error(
                DiagKind.READONLY_WRITE,
                f"SCAST nulls out readonly l-value '{lv.text}'", node.loc)
        if lv.kind == "var" and lv.is_local:
            self._scast_sources.append((lv.name, node.loc))

    def _check_liveness_after_scast(self, func: A.FuncDef) -> None:
        """Warns when a local is *definitely* read after being nulled by a
        sharing cast: the read appears in a later statement of the same
        block sequence, with no intervening reassignment.  Reads in
        sibling branches or earlier statements do not warn."""
        if func.body is None or not self._scast_sources:
            return
        for name, cast_loc in self._scast_sources:
            for compound in A.walk_stmts(func.body):
                if not isinstance(compound, A.Compound):
                    continue
                cast_idx = None
                for i, stmt in enumerate(compound.stmts):
                    if any(isinstance(e, A.SCastExpr)
                           and e.loc == cast_loc
                           for e in _stmt_subtree_exprs(stmt)):
                        cast_idx = i
                        break
                if cast_idx is None:
                    continue
                self._scan_following(name, cast_loc,
                                     compound.stmts[cast_idx + 1:])

    def _scan_following(self, name: str, cast_loc: Loc,
                        stmts: list[A.Stmt]) -> None:
        for stmt in stmts:
            for e in _stmt_subtree_exprs(stmt):
                if isinstance(e, A.Assign) and \
                        isinstance(e.lhs, A.Ident) and e.lhs.name == name:
                    return  # reassigned before any read
                if isinstance(e, A.Ident) and e.name == name:
                    self.sink.warning(
                        DiagKind.LIVE_AFTER_SCAST,
                        f"'{name}' is live after being nulled out by a "
                        f"sharing cast (read at line {e.loc.line})",
                        cast_loc)
                    return


def typecheck_program(program: A.Program,
                      sink: DiagnosticSink) -> CheckStats:
    """Runs the checking phase over an inferred program."""
    walker = CheckWalker(program, sink)
    walker.walk_program()
    return walker.stats
