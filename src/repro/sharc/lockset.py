"""Static lockset analysis: must-held locks + `locked(l)` refinement.

SharC's inference (Section 4.1) marks every possibly-shared location
``dynamic``, pushing all of its accesses onto the runtime checker; the
paper's users recover performance by hand-annotating ``locked(l)``.
This pass recovers a large slice of those annotations automatically, in
the style of lightweight whole-program lockset analyses for C (RacerF;
Mine's static analysis of concurrent embedded C): for every abstract
location the seed analysis marks possibly-shared, compute the
intersection of the lock sets that *must* be held across all of its
accesses.

The analysis is flow-insensitive in the heap but tracks lock context
flow-sensitively through each function body, interprocedurally:

1. **Relative summaries** — every function gets a summary describing
   its effect on an incoming held-lock set ``H`` as
   ``H' = (H - minus) | plus`` (plus a taint flag for unknown lock
   operations), composed over direct calls to a fixpoint.
2. **Entry sets** — concrete must-held-at-entry sets, seeded empty at
   ``main`` and every thread root, met (set intersection) over all
   call sites to a fixpoint.
3. **Recording** — one walk per reachable function records, for every
   dynamic-checked access of a *nameable* location (globals, global
   array elements, struct fields), the named locks surely held there.

Locks are tracked by name only when the argument of an acquire/release
is ``&g`` or ``g`` for a program global ``g``; anything else (locks
through pointers, trylocks, reader-writer locks) raises the *taint*
flag for that context.  Taint is per-context, not a global top: it
flows through call chains (callee summaries, call sites) where it can
suppress static race reports, but it never adds a named lock and
never leaks into the must-held summaries of functions outside the
tainted call chain.

Two consumers:

- **Qualifier refinement**: a location whose accesses share a
  non-empty named lock intersection keeps its ``dynamic`` mode but has
  every access marked ``lockset_refined`` with the chosen lock.  The
  interpreter may then discharge such a check through the held-lock
  log + ``ShadowMemory.recheck`` guard instead of a shadow-bitmap
  walk.  Exactly like check elimination, the runtime guard makes a
  wrong mark cost one lookup rather than a missed race, so the
  refinement is bit-identical in reports, step counts, and scheduler
  RNG with the ``--no-lockset`` ablation.
- **Static race reports**: a location with a write, accesses from two
  thread contexts, an *empty* lock intersection, and no taint is
  reported as a compile-time ``static-race`` diagnostic carrying both
  access sites — found with zero dynamic execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfront import cast as A
from repro.errors import DiagKind, Diagnostic, Loc, Severity
from repro.sharc.libc import is_builtin
from repro.sharc.seeds import SeedInfo
from repro.sharc.typecheck import AccessInfo

#: builtin names that acquire / release the mutex named by argument 0.
ACQUIRES = frozenset({"mutex_lock", "mutexLock", "pthread_mutex_lock"})
RELEASES = frozenset({"mutex_unlock", "mutexUnlock",
                      "pthread_mutex_unlock"})
#: condition wait re-acquires its mutex before returning: lock-neutral.
COND_WAITS = frozenset({"cond_wait", "condWait", "pthread_cond_wait"})
#: operations that may leave an unnamed lock held (or released): the
#: taint top element.  Trylock success is data-dependent; rwlocks use a
#: separate runtime discipline this pass does not model.
TAINTING = frozenset({"mutex_trylock", "rwlock_rdlock", "rwlock_wrlock",
                      "rwlock_unlock"})
SPAWNS = frozenset({"thread_create"})


def _lock_name(arg: Optional[A.Expr],
               global_names: frozenset) -> Optional[str]:
    """The canonical name of a lock argument: ``&g`` or ``g`` for a
    program global ``g``; ``None`` for anything fancier."""
    if arg is None:
        return None
    if arg.__class__ is A.Unop and arg.op == "&":
        arg = arg.operand
    if arg.__class__ is A.Ident and arg.name in global_names:
        return arg.name
    return None


def loc_key(node: A.Expr, global_names: frozenset) -> Optional[tuple]:
    """Abstract location of one checked l-value occurrence.

    ``("global", g)`` for globals and global arrays (element accesses
    collapse onto the array), ``("field", struct, field)`` for struct
    members.  Locals and unresolvable derefs return ``None`` — skipped
    locations are only ever missed refinements / missed race reports,
    never wrong ones.
    """
    cls = node.__class__
    if cls is A.Ident:
        if node.name in global_names:
            return ("global", node.name)
        return None
    if cls is A.Index:
        if getattr(node, "sharc_on_array", False):
            return loc_key(node.arr, global_names)
        return None
    if cls is A.Member:
        struct = getattr(node, "sharc_struct", None)
        if struct is not None:
            return ("field", struct, node.name)
        return None
    return None


def key_text(key: tuple) -> str:
    if key[0] == "global":
        return key[1]
    return f"{key[1]}.{key[2]}"


class _LockState:
    """Held-lock state, usable both relatively and concretely.

    Relative reading (phase 1): applying the state to an incoming held
    set ``H`` yields ``(H - minus) | plus`` (``kill_all``: minus is
    every lock).  Concrete reading (phases 2-3): start from
    ``plus = entry set`` and simply never consult ``minus``.
    """

    __slots__ = ("minus", "plus", "kill_all", "taint")

    def __init__(self, minus=(), plus=(), kill_all=False, taint=False):
        self.minus = set(minus)
        self.plus = set(plus)
        self.kill_all = kill_all
        self.taint = taint

    def copy(self) -> "_LockState":
        return _LockState(self.minus, self.plus, self.kill_all,
                          self.taint)

    def acquire(self, name: str) -> None:
        self.plus.add(name)
        self.minus.discard(name)

    def release(self, name: str) -> None:
        self.plus.discard(name)
        if not self.kill_all:
            self.minus.add(name)

    def release_unknown(self) -> None:
        """An unresolvable unlock may release anything — but erasing
        the named held set here would let one pointer-typed unlock in
        a callee wipe every caller's must-held summary, and the
        untainted empty lockset then reports the caller's
        consistently-locked accesses as static races.  Instead the
        named locks stay and the *context* is tainted: taint flows
        through the call chain (summaries, call sites) and suppresses
        race reports there, while unrelated functions keep their
        summaries; a refinement kept alive by a lock this unlock in
        fact released costs one guarded runtime lookup, never a
        missed race."""
        self.taint = True

    def apply(self, s: "Summary") -> None:
        """Composes a callee's summary onto this state."""
        if s.kill_all:
            self.plus = set(s.plus)
            self.minus.clear()
            self.kill_all = True
        else:
            self.plus = (self.plus - s.minus) | s.plus
            if not self.kill_all:
                self.minus |= s.minus
        self.taint = self.taint or s.taint

    def meet(self, other: "_LockState") -> None:
        """Path join: a lock is surely held only if held on both."""
        self.plus &= other.plus
        if other.kill_all:
            self.kill_all = True
            self.minus.clear()
        elif not self.kill_all:
            self.minus |= other.minus
        self.taint = self.taint or other.taint

    def freeze(self) -> "Summary":
        return Summary(frozenset(self.minus), frozenset(self.plus),
                       self.kill_all, self.taint)


@dataclass(frozen=True)
class Summary:
    """One function's relative lock effect (see :class:`_LockState`)."""

    minus: frozenset = frozenset()
    plus: frozenset = frozenset()
    kill_all: bool = False
    taint: bool = False


@dataclass
class AccessSite:
    """One dynamic-checked access of a nameable location, with the
    named locks surely held when it executes.  Loop bodies are walked
    twice; revisits intersect ``held`` (loop-invariant locks survive)
    and accumulate ``tainted``."""

    key: tuple
    func: str
    loc: Loc
    is_write: bool
    held: set
    tainted: bool
    lvalue: str
    info: AccessInfo


@dataclass
class LocationInfo:
    """Everything the analysis learned about one abstract location."""

    key: tuple
    sites: list = field(default_factory=list)

    @property
    def text(self) -> str:
        return key_text(self.key)

    @property
    def lockset(self) -> frozenset:
        """Intersection of named locks held over every access."""
        sets = [site.held for site in self.sites]
        out = set(sets[0]) if sets else set()
        for s in sets[1:]:
            out &= s
        return frozenset(out)

    @property
    def tainted(self) -> bool:
        return any(site.tainted for site in self.sites)

    @property
    def writes(self) -> int:
        return sum(1 for s in self.sites if s.is_write)

    @property
    def reads(self) -> int:
        return len(self.sites) - self.writes


@dataclass
class Refinement:
    """One location refined from inferred ``dynamic`` to ``locked(l)``
    checking."""

    key: tuple
    lock: str
    sites: int
    reads: int
    writes: int
    first_loc: Loc

    @property
    def text(self) -> str:
        return key_text(self.key)

    def render(self) -> str:
        return (f"lockset: refined '{self.text}' to locked({self.lock})"
                f" — {self.sites} access site(s), {self.reads} read / "
                f"{self.writes} write (first at {self.first_loc})")


@dataclass
class LocksetResult:
    """Output of :func:`analyze_locksets`."""

    summaries: dict = field(default_factory=dict)
    #: must-held set at function entry; functions never reached from
    #: ``main`` or a thread root are absent.
    entries: dict = field(default_factory=dict)
    locations: dict = field(default_factory=dict)
    refinements: list = field(default_factory=list)
    #: compile-time race findings (STATIC_RACE warnings); kept out of
    #: the error sink so they never flip ``CheckedProgram.ok``.
    races: list = field(default_factory=list)
    #: thread roots spawned more than once (>=2 sites, or in a loop).
    multi_spawned: frozenset = frozenset()

    @property
    def refined_sites(self) -> int:
        return sum(r.sites for r in self.refinements)

    @property
    def race_keys(self) -> list:
        """Stable machine keys for the static findings, comparable
        against the dynamic checkers' report keys."""
        return sorted({f"static-race {d.message_key}" for d in self.races}
                      ) if self.races else []

    def report_lines(self) -> list:
        lines = [r.render() for r in self.refinements]
        lines.extend(str(d) for d in self.races)
        return lines

    def summary(self) -> str:
        return (f"lockset: {len(self.refinements)} location(s) refined "
                f"to locked ({self.refined_sites} check site(s)), "
                f"{len(self.races)} static race(s)")


@dataclass
class StaticRace:
    """A compile-time race finding with both access sites."""

    key: tuple
    write: AccessSite
    other: AccessSite
    contexts: tuple

    @property
    def text(self) -> str:
        return key_text(self.key)

    def diagnostic(self) -> Diagnostic:
        diag = Diagnostic(
            DiagKind.STATIC_RACE,
            f"possible data race on '{self.text}': written with no "
            "consistent lock held",
            self.write.loc, Severity.WARNING,
            [f"write in '{self.write.func}' at {self.write.loc}",
             (f"conflicting "
              f"{'write' if self.other.is_write else 'read'} in "
              f"'{self.other.func}' at {self.other.loc}"),
             "thread contexts: " + ", ".join(self.contexts)])
        # Stable key used by the differential sweep to line static
        # findings up against dynamic report keys.
        diag.message_key = f"{self.text}@{self.write.loc.line}"
        # Abstract-location key for downstream scoring (absint verdicts).
        diag.race_key_tuple = self.key
        return diag


class _Walker:
    """Evaluation-order walk mirroring ``checkelim._Walker`` with a
    held-lock state instead of cover strengths."""

    def __init__(self, global_names: frozenset, defined: dict,
                 summaries: dict) -> None:
        self.global_names = global_names
        self.defined = defined            # name -> FuncDef (has body)
        self.summaries = summaries        # name -> Summary
        #: direct defined callees seen (filled in every walk)
        self.calls: set = set()
        # recording-mode hooks (phase 2/3); None in summary mode
        self.on_call: Optional[callable] = None      # (name, held_state)
        self.on_access: Optional[callable] = None    # (node, info, is_w, st)
        self.on_spawn: Optional[callable] = None     # (call, loop_depth)
        self.loop_depth = 0
        self._loop_breaks: list = []

    # -- checks ---------------------------------------------------------------

    def check(self, node: A.Expr, info, is_write: bool,
              st: _LockState) -> None:
        if info is None or self.on_access is None:
            return
        self.on_access(node, info, is_write, st)

    # -- calls ----------------------------------------------------------------

    def call(self, e: A.Call, st: _LockState) -> None:
        if e.callee.__class__ is not A.Ident:
            self.expr(e.callee, st)
            for arg in e.args:
                self.expr(arg, st)
            st.taint = True  # an indirect callee may lock anything
            return
        for arg in e.args:
            self.expr(arg, st)
        name = e.callee.name
        if name in ACQUIRES:
            lock = _lock_name(e.args[0] if e.args else None,
                              self.global_names)
            if lock is not None:
                st.acquire(lock)
            else:
                st.taint = True
            return
        if name in RELEASES:
            lock = _lock_name(e.args[0] if e.args else None,
                              self.global_names)
            if lock is not None:
                st.release(lock)
            else:
                st.release_unknown()
            return
        if name in COND_WAITS:
            return
        if name in TAINTING:
            st.taint = True
            return
        if name in SPAWNS:
            if self.on_spawn is not None:
                self.on_spawn(e, self.loop_depth)
            return
        if name in self.defined:
            self.calls.add(name)
            if self.on_call is not None:
                self.on_call(name, st)
            st.apply(self.summaries.get(name, Summary()))
            return
        if not is_builtin(name):
            # An undefined function could do anything with locks.
            st.taint = True

    # -- expressions (structure identical to checkelim._Walker) ---------------

    def lvalue(self, e: A.Expr, st: _LockState) -> None:
        cls = e.__class__
        if cls is A.Ident:
            return
        if cls is A.Unop and e.op == "*":
            self.expr(e.operand, st)
            return
        if cls is A.Member:
            if e.arrow:
                self.expr(e.obj, st)
            else:
                self.lvalue(e.obj, st)
            return
        if cls is A.Index:
            if getattr(e, "sharc_on_array", False):
                self.lvalue(e.arr, st)
            else:
                self.expr(e.arr, st)
            self.expr(e.idx, st)
            return

    def expr(self, e, st: _LockState) -> None:
        if e is None:
            return
        cls = e.__class__
        if cls is A.Ident:
            self.check(e, getattr(e, "sharc_read", None), False, st)
            return
        if cls in (A.IntLit, A.CharLit, A.FloatLit, A.NullLit,
                   A.StrLit, A.SizeofExpr):
            return
        if cls in (A.Member, A.Index):
            self.lvalue(e, st)
            self.check(e, getattr(e, "sharc_read", None), False, st)
            return
        if cls is A.Unop:
            if e.op == "&":
                self.lvalue(e.operand, st)
                return
            if e.op == "*":
                self.expr(e.operand, st)
                self.check(e, getattr(e, "sharc_read", None), False, st)
                return
            if e.op in ("++", "--"):
                op = e.operand
                self.lvalue(op, st)
                self.check(op, getattr(op, "sharc_read", None), False, st)
                self.check(op, getattr(op, "sharc_write", None), True, st)
                return
            self.expr(e.operand, st)
            return
        if cls is A.Binop:
            if e.op in ("&&", "||"):
                self.expr(e.lhs, st)
                branch = st.copy()
                self.expr(e.rhs, branch)
                st.meet(branch)
                return
            self.expr(e.lhs, st)
            self.expr(e.rhs, st)
            return
        if cls is A.Assign:
            lhs = e.lhs
            lhs_qt = lhs.ctype
            if e.op == "=" and lhs_qt is not None and lhs_qt.is_struct:
                self.lvalue(e.rhs, st)
                self.lvalue(lhs, st)
                self.check(lhs, getattr(lhs, "sharc_write", None),
                           True, st)
                self.check(e.rhs, getattr(e.rhs, "sharc_read", None),
                           False, st)
                return
            self.expr(e.rhs, st)
            self.lvalue(lhs, st)
            if e.op != "=":
                self.check(lhs, getattr(lhs, "sharc_read", None),
                           False, st)
            self.check(lhs, getattr(lhs, "sharc_write", None), True, st)
            return
        if cls is A.Call:
            self.call(e, st)
            return
        if cls is A.SCastExpr:
            self.lvalue(e.expr, st)
            self.check(e.expr, getattr(e.expr, "sharc_read", None),
                       False, st)
            self.check(e, getattr(e, "sharc_src_write", None), True, st)
            return
        if cls is A.CastExpr:
            self.expr(e.expr, st)
            return
        if cls is A.CondExpr:
            self.expr(e.cond, st)
            then_st = st.copy()
            self.expr(e.then, then_st)
            self.expr(e.other, st)
            st.meet(then_st)
            return
        if cls is A.CommaExpr:
            for part in e.parts:
                self.expr(part, st)
            return

    # -- statements -----------------------------------------------------------

    def stmt(self, s, st: _LockState) -> None:
        if s is None:
            return
        cls = s.__class__
        if cls is A.Compound:
            for sub in s.stmts:
                self.stmt(sub, st)
            return
        if cls is A.ExprStmt:
            self.expr(s.expr, st)
            return
        if cls is A.DeclStmt:
            for d in s.decls:
                if d.init is not None:
                    self.expr(d.init, st)
            return
        if cls is A.If:
            self.expr(s.cond, st)
            then_st = st.copy()
            self.stmt(s.then, then_st)
            if s.other is not None:
                self.stmt(s.other, st)
            st.meet(then_st)
            return
        if cls in (A.While, A.DoWhile, A.For):
            self._loop(s, cls, st)
            return
        if cls is A.Return:
            if s.value is not None:
                self.expr(s.value, st)
            return
        if cls is A.Break:
            # The post-loop state must include the state here.
            if self._loop_breaks:
                self._loop_breaks[-1].append(st.copy())
            return
        # Continue: the two-pass loop walk already meets the back-edge.

    def _loop(self, s, cls, st: _LockState) -> None:
        self.loop_depth += 1
        self._loop_breaks.append([])
        exits = []
        if cls is A.For:
            if isinstance(s.init, A.DeclStmt):
                self.stmt(s.init, st)
            elif s.init is not None:
                self.expr(s.init, st)
        if cls is not A.DoWhile:
            if getattr(s, "cond", None) is not None:
                self.expr(s.cond, st)
            exits.append(st.copy())  # zero-iteration exit
        body_st = st.copy()
        for _ in range(2):
            # Pass 1 is the straight-line walk; pass 2 re-enters with
            # the back-edge state, so ``held`` at each access is met
            # with the loop-carried state (loop-invariant locks stay).
            self.stmt(s.body, body_st)
            if cls is A.For and s.step is not None:
                self.expr(s.step, body_st)
            if getattr(s, "cond", None) is not None:
                self.expr(s.cond, body_st)
            exits.append(body_st.copy())
        exits.extend(self._loop_breaks.pop())
        self.loop_depth -= 1
        met = exits[0]
        for other in exits[1:]:
            met.meet(other)
        st.minus, st.plus = met.minus, met.plus
        st.kill_all, st.taint = met.kill_all, met.taint


def _compute_summaries(walker: _Walker, funcs: list,
                       rounds: Optional[int] = None) -> dict:
    """Phase 1: relative (minus, plus, taint) summaries to fixpoint."""
    summaries = {f.name: Summary() for f in funcs}
    calls: dict = {}
    walker.summaries = summaries
    if rounds is None:
        rounds = 2 * len(funcs) + 4
    last_changed: set = set()
    for round_ in range(rounds):
        last_changed = set()
        for func in funcs:
            walker.calls = set()
            st = _LockState()
            walker.stmt(func.body, st)
            calls[func.name] = walker.calls
            new = st.freeze()
            if new != summaries[func.name]:
                summaries[func.name] = new
                last_changed.add(func.name)
        if not last_changed:
            break
    else:
        # Did not converge (deep mutual recursion): give up soundly —
        # but only on the functions still oscillating and their
        # transitive callers, whose summaries were computed against
        # stale callee values.  Unrelated functions keep their stable
        # summaries instead of the whole program collapsing to top.
        callers: dict = {}
        for caller, callees in calls.items():
            for callee in callees:
                callers.setdefault(callee, set()).add(caller)
        unstable: set = set()
        worklist = list(last_changed)
        while worklist:
            name = worklist.pop()
            if name in unstable:
                continue
            unstable.add(name)
            worklist.extend(callers.get(name, ()))
        for name in unstable:
            summaries[name] = Summary(kill_all=True, taint=True)
    walker.func_calls = calls
    return summaries


def analyze_locksets(program: A.Program,
                     seeds: SeedInfo) -> LocksetResult:
    """Runs the whole-program analysis and writes refinement marks back
    onto the typechecker's :class:`AccessInfo` records in place."""
    result = LocksetResult()
    funcs = program.functions()
    if not funcs:
        return result
    global_names = frozenset(g.name for g in program.globals())
    defined = {f.name: f for f in funcs}
    walker = _Walker(global_names, defined, {})

    result.summaries = _compute_summaries(walker, funcs)
    walker.summaries = result.summaries

    # Phase 2: concrete must-held entry sets, met over call sites.
    entries: dict = {}
    for root in set(seeds.thread_roots) | {"main"}:
        if root in defined:
            entries[root] = frozenset()
    for _ in range(2 * len(funcs) + 4):
        changed = False
        for func in funcs:
            entry = entries.get(func.name)
            if entry is None:
                continue

            def meet_entry(name, st, _entries=entries):
                held = frozenset(st.plus)
                old = _entries.get(name)
                new = held if old is None else old & held
                if new != old:
                    _entries[name] = new
                    nonlocal changed
                    changed = True

            walker.on_call = meet_entry
            walker.stmt(func.body, _LockState(plus=entry))
        walker.on_call = None
        if not changed:
            break
    result.entries = entries

    # Phase 3: one recording pass per reachable function.
    sites: dict = {}          # id(info) -> AccessSite
    spawn_weight: dict = {}   # root name -> spawn multiplicity

    def record(node, info, is_write, st):
        if not info.is_dynamic:
            return
        key = loc_key(node, global_names)
        if key is None:
            return
        site = sites.get(id(info))
        if site is not None:
            site.held &= st.plus
            site.tainted = site.tainted or st.taint
            site.is_write = site.is_write or is_write
            return
        sites[id(info)] = AccessSite(
            key, walker._current_func, info.loc, is_write,
            set(st.plus), st.taint, info.lvalue_text, info)

    def spawn(call, loop_depth):
        weight = 2 if loop_depth > 0 else 1
        fn_expr = call.args[0] if call.args else None
        if fn_expr is not None and fn_expr.__class__ is A.Ident \
                and fn_expr.name in defined:
            roots = [fn_expr.name]
        else:
            roots = list(seeds.thread_roots)  # spawn through a pointer
        for root in roots:
            spawn_weight[root] = spawn_weight.get(root, 0) + weight

    walker.on_access = record
    walker.on_spawn = spawn
    for func in funcs:
        entry = entries.get(func.name)
        if entry is None:
            continue  # unreachable from main and every thread root
        walker._current_func = func.name
        walker.stmt(func.body, _LockState(plus=entry))
    walker.on_access = None
    walker.on_spawn = None
    result.multi_spawned = frozenset(
        name for name, w in spawn_weight.items() if w >= 2)

    for site in sites.values():
        result.locations.setdefault(
            site.key, LocationInfo(site.key)).sites.append(site)

    # Consumer 1: qualifier refinement.
    for key in sorted(result.locations):
        info = result.locations[key]
        lockset = info.lockset
        if not lockset:
            continue
        lock = sorted(lockset)[0]
        if lock not in global_names:
            continue  # refined checks resolve the lock as a global
        for site in info.sites:
            site.info.lockset_refined = True
            site.info.refined_lock = lock
        result.refinements.append(Refinement(
            key, lock, len(info.sites), info.reads, info.writes,
            min((s.loc for s in info.sites),
                key=lambda loc: (loc.line, loc.col))))

    # Consumer 2: static race reports.
    reach = _per_root_reachability(walker.func_calls, defined,
                                   set(seeds.thread_roots) | {"main"})
    for key in sorted(result.locations):
        info = result.locations[key]
        race = _find_race(info, reach, result.multi_spawned)
        if race is not None:
            result.races.append(race.diagnostic())
    return result


def _per_root_reachability(func_calls: dict, defined: dict,
                           roots: set) -> dict:
    """``func name -> frozenset of roots that can reach it`` over the
    direct-call graph (reflexively)."""
    reached_by: dict = {name: set() for name in defined}
    for root in roots:
        if root not in defined:
            continue
        worklist, seen = [root], set()
        while worklist:
            name = worklist.pop()
            if name in seen:
                continue
            seen.add(name)
            reached_by[name].add(root)
            worklist.extend(func_calls.get(name, ()))
    # Thread roots are also conservatively reachable through spawn-by-
    # pointer from anywhere; their own bodies always run in their root.
    return {name: frozenset(val) for name, val in reached_by.items()}


def _find_race(info: LocationInfo, reach: dict,
               multi_spawned: frozenset) -> Optional[StaticRace]:
    """A location races statically when it is written, two thread
    contexts can access it, its named lockset is empty, and no access
    is tainted by an unknown lock operation."""
    if info.lockset or info.tainted or not info.writes:
        return None
    contexts = set()
    write_contexts = set()
    for site in info.sites:
        roots = reach.get(site.func, frozenset())
        # A thread root's own body runs in that thread even if no
        # direct call edge leads to it.
        contexts |= roots
        if site.is_write:
            write_contexts |= roots
    if not write_contexts:
        return None
    # "main" alone cannot race; a single root can only race against a
    # second instance of itself.
    two_threads = (len(contexts) >= 2
                   or bool(contexts & multi_spawned))
    if not two_threads or contexts == {"main"}:
        return None
    write = next(s for s in info.sites if s.is_write)
    other = next((s for s in info.sites
                  if reach.get(s.func, frozenset()) - reach.get(
                      write.func, frozenset())), None)
    if other is None:
        other = next((s for s in info.sites if s is not write), write)
    return StaticRace(info.key, write, other, tuple(sorted(contexts)))
