"""Flow-insensitive qualifier constraints (Section 4.1).

The analysis decides, for every type position left unannotated after the
defaulting rules, whether it must be checked dynamically or may be treated
as private.  We follow CQual-style flow-insensitive rules: assignments link
the *nested* positions of the two sides (pointer targets are invariant), and
the linked positions form a constraint graph over qualifier variables.

Solving uses a three-point lattice per position::

    PRIVATE  <  DYN_IN  <  DYNAMIC

- ``DYNAMIC`` flows in both directions along *body* edges (ordinary
  assignments, returns) and from actuals to formals along *call* edges.
- A formal only pushes ``DYNAMIC`` back to its actuals when the formal
  itself became ``DYNAMIC`` through the function body (it was stored into a
  dynamic location, or had a dynamic location stored into it) — this is the
  paper's internal ``dynamic_in`` qualifier: a formal that merely *receives*
  a shared object is ``DYN_IN``; its accesses are checked at run time, but
  private actuals at other call sites stay private.

Fixed positions (explicit annotations, defaults, seeds) act as constant
sources; flows *into* a fixed non-dynamic position are ignored here — the
type checker reports the mismatch at the offending assignment and suggests
a sharing cast.
"""

from __future__ import annotations

import enum
from collections import defaultdict, deque
from dataclasses import dataclass, field as dc_field

from repro.cfront.ctypes import QualType, fresh_qvar
from repro.sharc import modes as M


class Level(enum.IntEnum):
    """Solver lattice for one qualifier variable."""

    PRIVATE = 0
    DYN_IN = 1
    DYNAMIC = 2


class EdgeKind(enum.Enum):
    BODY = "body"            # bidirectional, full strength
    CALL_IN = "call-in"      # actual -> formal (capped at DYN_IN)
    CALL_OUT = "call-out"    # formal -> actual (active only when the
    #                          formal is fully DYNAMIC — the leak case)


@dataclass
class Edge:
    src: int
    dst: int
    kind: EdgeKind


class ConstraintGraph:
    """Qualifier variables, edges, and fixed-mode hints."""

    def __init__(self) -> None:
        self.edges_from: dict[int, list[Edge]] = defaultdict(list)
        #: fixed sharing modes adjacent to each qvar via body links —
        #: used both for seeding (dynamic neighbours) and for mode
        #: adoption (racy / readonly neighbours).
        self.hints: dict[int, list[M.Mode]] = defaultdict(list)
        self.seeds: set[int] = set()
        self.qvars: set[int] = set()
        #: every QualType object that received a qvar (fresh builtin
        #: instances, wrappers, ...), so final modes reach all of them.
        self.positions: list[QualType] = []

    # -- construction ------------------------------------------------------

    def ensure_qvar(self, pos: QualType) -> int | None:
        """Gives an unannotated position a qualifier variable."""
        if pos.mode is not None:
            return None
        if pos.qvar is None:
            pos.qvar = fresh_qvar()
        self.qvars.add(pos.qvar)
        self.positions.append(pos)
        return pos.qvar

    def extra_positions(self) -> list[QualType]:
        """All positions that participated in constraints (including
        per-call-site builtin instances not reachable from declarations)."""
        return list(self.positions)

    def seed_dynamic(self, pos: QualType) -> None:
        """Forces a position to DYNAMIC (thread formals, touched globals)."""
        qvar = self.ensure_qvar(pos)
        if qvar is not None:
            self.seeds.add(qvar)

    def link(self, a: QualType, b: QualType, kind: EdgeKind) -> None:
        """Links two positions.  For BODY both directions; CALL_IN is
        a -> b with ``a`` the actual and ``b`` the formal; CALL_OUT is the
        reverse direction, added alongside CALL_IN."""
        a_var = self.ensure_qvar(a)
        b_var = self.ensure_qvar(b)
        if a_var is not None and b_var is not None:
            if kind is EdgeKind.BODY:
                self.edges_from[a_var].append(Edge(a_var, b_var, kind))
                self.edges_from[b_var].append(Edge(b_var, a_var, kind))
            else:
                self.edges_from[a_var].append(
                    Edge(a_var, b_var, EdgeKind.CALL_IN))
                self.edges_from[b_var].append(
                    Edge(b_var, a_var, EdgeKind.CALL_OUT))
            return
        # One side fixed: record a hint on the variable side.
        if a_var is None and b_var is None:
            return
        fixed_mode = a.mode if a_var is None else b.mode
        var = a_var if a_var is not None else b_var
        assert fixed_mode is not None and var is not None
        if kind is EdgeKind.BODY:
            self.hints[var].append(fixed_mode)
        elif kind is EdgeKind.CALL_IN:
            if b_var is None:
                # Fixed formal: dynamic actuals flowing into an explicitly
                # annotated formal are a type-check matter, not inference.
                return
            # Fixed actual flowing into a formal variable.
            self.hints[var].append(fixed_mode)

    # -- solving -----------------------------------------------------------

    def solve(self) -> dict[int, Level]:
        """Worklist propagation to a fixpoint; returns level per qvar."""
        level: dict[int, Level] = {q: Level.PRIVATE for q in self.qvars}
        work: deque[int] = deque()

        def raise_to(qvar: int, lvl: Level) -> None:
            if level.get(qvar, Level.PRIVATE) < lvl:
                level[qvar] = lvl
                work.append(qvar)

        for qvar in self.seeds:
            raise_to(qvar, Level.DYNAMIC)
        for qvar, hint_modes in self.hints.items():
            for mode in hint_modes:
                if mode.is_dynamic:
                    raise_to(qvar, Level.DYNAMIC)
                elif mode.kind is M.ModeKind.DYNAMIC_IN:
                    raise_to(qvar, Level.DYN_IN)

        while work:
            qvar = work.popleft()
            lvl = level[qvar]
            for edge in self.edges_from[qvar]:
                if edge.kind is EdgeKind.BODY:
                    raise_to(edge.dst, lvl)
                elif edge.kind is EdgeKind.CALL_IN:
                    if lvl >= Level.DYN_IN:
                        raise_to(edge.dst, Level.DYN_IN)
                elif edge.kind is EdgeKind.CALL_OUT:
                    # The leak case: the formal became fully dynamic.
                    if lvl is Level.DYNAMIC:
                        raise_to(edge.dst, Level.DYNAMIC)
        return level

    def adopted_mode(self, qvar: int, level: Level) -> M.Mode:
        """Final mode for one variable.

        Non-dynamic variables may adopt a safe fixed-neighbour mode:
        ``racy`` and ``readonly`` adoption keeps e.g. a local copy of a
        ``mutex racy *`` usable without annotations.  ``locked`` is never
        adopted (its lock expression is only meaningful in the scope of the
        annotation); mismatches surface as type errors with SCAST
        suggestions, exactly as the paper describes for the pipeline.
        """
        if level is Level.DYNAMIC:
            return M.DYNAMIC
        if level is Level.DYN_IN:
            return M.DYNAMIC_IN
        adoptable = {m for m in self.hints.get(qvar, [])
                     if m.kind in (M.ModeKind.RACY, M.ModeKind.READONLY)}
        if len(adoptable) == 1:
            return next(iter(adoptable))
        return M.PRIVATE

    def assign_modes(self, positions: list[QualType]) -> dict[int, M.Mode]:
        """Solves and writes the inferred mode into every position."""
        level = self.solve()
        resolved: dict[int, M.Mode] = {}
        for qvar in self.qvars:
            resolved[qvar] = self.adopted_mode(
                qvar, level.get(qvar, Level.PRIVATE))
        for pos in positions:
            if pos.mode is None and pos.qvar is not None:
                pos.mode = resolved.get(pos.qvar, M.PRIVATE)
            elif pos.mode is None:
                pos.mode = M.PRIVATE
        return resolved
