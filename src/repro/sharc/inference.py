"""Qualifier inference (Section 4.1): defaults + seeds + constraints.

``infer_program`` is the entry point.  It mutates the parsed program's
types in place so that after it returns every type position carries a
concrete sharing mode (possibly the internal ``inherit`` on struct fields,
resolved per access, or ``dynamic_in`` on formals).

Pipeline:

1. apply the defaulting rules (:mod:`repro.sharc.defaults`),
2. check declared types are well-formed (:mod:`repro.sharc.wellformed`),
3. run the seed analysis (:mod:`repro.sharc.seeds`) and seed the constraint
   graph; an explicit ``private`` on an inherently-shared position is an
   error,
4. walk all bodies generating constraint edges
   (:class:`ConstraintWalker`),
5. solve and write modes back; remaining untouched positions are
   ``private``,
6. enforce REF-CTOR by promotion: an inferred-private target under a
   non-private pointer is promoted to ``dynamic``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DiagKind, DiagnosticSink
from repro.cfront import cast as A
from repro.cfront.ctypes import (
    ArrayType, FuncType, PtrType, QualType,
)
from repro.sharc import modes as M
from repro.sharc.constraints import ConstraintGraph, EdgeKind
from repro.sharc.defaults import apply_program_defaults, collect_local_decls
from repro.sharc.exprtypes import NULL_TYPE, TypeWalker
from repro.sharc.libc import BUILTINS
from repro.sharc.seeds import SeedInfo, compute_seeds, seed_types
from repro.sharc.wellformed import check_program_types


@dataclass
class InferenceResult:
    """Artifacts of the inference phase."""

    graph: ConstraintGraph
    seeds: SeedInfo
    #: pointee shape keys that may be subject to a sharing cast — only
    #: pointers to these need reference-count updates (Section 4.3).
    scast_shapes: set = field(default_factory=set)


class ConstraintWalker(TypeWalker):
    """Generates qualifier-constraint edges from every function body."""

    def __init__(self, program: A.Program, graph: ConstraintGraph,
                 seeds: SeedInfo, sink: DiagnosticSink) -> None:
        super().__init__(program, sink)
        self.graph = graph
        self.seeds = seeds

    # -- linking helpers ---------------------------------------------------

    def link_value(self, lhs: QualType | None, rhs: QualType | None,
                   kind: EdgeKind) -> None:
        """Links the nested positions of two types after ``lhs <- rhs``."""
        if lhs is None or rhs is None:
            return
        if lhs is NULL_TYPE or rhs is NULL_TYPE:
            return
        lt = rt = None
        if lhs.is_pointer:
            lt = lhs.base.target
        elif lhs.is_array:
            lt = lhs.base.elem
        if rhs.is_pointer:
            rt = rhs.base.target
        elif rhs.is_array:
            rt = rhs.base.elem
        if lt is None or rt is None:
            return
        self._link_target(lt, rt, kind)

    def _link_target(self, lt: QualType, rt: QualType,
                     kind: EdgeKind) -> None:
        """Links two positions describing the *same* cell."""
        if isinstance(lt.base, FuncType) or isinstance(rt.base, FuncType):
            if isinstance(lt.base, FuncType) and \
                    isinstance(rt.base, FuncType):
                self._link_func(lt.base, rt.base)
            return
        if kind is EdgeKind.BODY:
            self.graph.link(lt, rt, EdgeKind.BODY)
        else:
            # CALL: rt is the actual's position, lt the formal's.
            self.graph.link(rt, lt, EdgeKind.CALL_IN)
        lt_void = lt.base.shape_key() == ("prim", "void")
        rt_void = rt.base.shape_key() == ("prim", "void")
        if lt_void or rt_void:
            return
        self.link_value(lt, rt, kind)

    def _link_func(self, lf: FuncType, rf: FuncType) -> None:
        """Two function signatures become interchangeable (fn pointers
        alias by type): link params and return pairwise, full strength."""
        for lp, rp in zip(lf.params, rf.params):
            self.link_value(lp, rp, EdgeKind.BODY)
        self.link_value(lf.ret, rf.ret, EdgeKind.BODY)

    # -- hooks ---------------------------------------------------------------

    def on_assign(self, lhs_t, rhs_t, rhs, node) -> None:
        self.link_value(lhs_t, rhs_t, EdgeKind.BODY)

    def on_return(self, value_t, node) -> None:
        if self.current_func is None or value_t is None:
            return
        ftype = self.current_func.qtype.base
        assert isinstance(ftype, FuncType)
        self.link_value(ftype.ret, value_t, EdgeKind.BODY)

    def on_cast(self, to, src_t, node) -> None:
        # A plain cast cannot change modes; unify so inference is
        # consistent, the checker validates equality.
        self.link_value(to, src_t, EdgeKind.BODY)

    def on_scast(self, to, src_t, node) -> None:
        # The first target level is converted; deeper positions must agree.
        if src_t is None or not to.is_pointer or not src_t.is_pointer:
            return
        self.link_value(to.base.target, src_t.base.target, EdgeKind.BODY)

    def on_call(self, func, ftype, builtin_name, node, arg_types) -> None:
        if builtin_name is not None:
            b = BUILTINS[builtin_name]
            for i, (param, arg_t) in enumerate(
                    zip(ftype.params, arg_types)):
                self.link_value(param, arg_t, EdgeKind.BODY)
            if b.spawn_fn is not None:
                self._link_spawn(node, arg_types, b)
            return
        for param, arg_t in zip(ftype.params, arg_types):
            self.link_value(param, arg_t, EdgeKind.CALL_IN)

    def _link_spawn(self, node: A.Call, arg_types, b) -> None:
        """thread_create: the data argument is handed to the thread roots;
        link it with each candidate root's formal (both are shared)."""
        if b.spawn_arg is None or len(node.args) <= b.spawn_arg:
            return
        arg_t = arg_types[b.spawn_arg]
        fn_expr = node.args[b.spawn_fn]
        roots: list[str] = []
        if isinstance(fn_expr, A.Ident) and fn_expr.name in self.functions:
            roots = [fn_expr.name]
        else:
            roots = list(self.seeds.thread_roots)
        for root in roots:
            func = self.functions.get(root)
            if func is None:
                continue
            rft = func.qtype.base
            assert isinstance(rft, FuncType)
            if rft.params:
                self.link_value(rft.params[0], arg_t, EdgeKind.BODY)


def all_declared_positions(program: A.Program) -> list[QualType]:
    """Every qualified position in globals, params, returns, and locals."""
    positions: list[QualType] = []
    for decl in program.decls:
        if isinstance(decl, A.VarDecl):
            positions.extend(decl.qtype.walk())
        elif isinstance(decl, A.FuncDef):
            ftype = decl.qtype.base
            assert isinstance(ftype, FuncType)
            positions.extend(ftype.ret.walk())
            for param in ftype.params:
                positions.extend(param.walk())
            for local in collect_local_decls(decl):
                positions.extend(local.qtype.walk())
    return positions


def _promote_refctor(positions: list[QualType]) -> None:
    """Promotes inferred-private targets under non-private pointers to
    ``dynamic`` (REF-CTOR).  Explicit private targets were already
    rejected by well-formedness checking."""
    changed = True
    while changed:
        changed = False
        for pos in positions:
            if not isinstance(pos.base, PtrType):
                continue
            mode = pos.mode
            target = pos.base.target
            if mode is None or target.mode is None:
                continue
            if (not mode.is_private and not mode.is_inherit
                    and mode.kind is not M.ModeKind.DYNAMIC_IN
                    and target.mode.is_private and not target.explicit):
                target.mode = M.DYNAMIC
                changed = True


def collect_scast_shapes(program: A.Program) -> set:
    """Pointee shapes appearing in sharing casts (RC-tracking set)."""
    shapes = set()
    for func in program.functions():
        assert func.body is not None
        for e in A.all_exprs(func.body):
            if isinstance(e, A.SCastExpr) and e.to.is_pointer:
                shapes.add(e.to.base.target.base.shape_key())
    return shapes


def infer_program(program: A.Program,
                  sink: DiagnosticSink) -> InferenceResult:
    """Runs the complete inference pipeline over a parsed program."""
    apply_program_defaults(program)
    check_program_types(program, sink)

    seeds = compute_seeds(program)
    graph = ConstraintGraph()

    for pos in seed_types(program, seeds):
        if pos.mode is None:
            graph.seed_dynamic(pos)
        elif pos.mode.is_private and pos.explicit:
            sink.error(
                DiagKind.PRIVATE_SHARED,
                f"position '{pos}' is inherently shared (reachable from a "
                "spawned thread) but annotated private", pos.loc)

    walker = ConstraintWalker(program, graph, seeds, sink)
    walker.walk_program()

    positions = all_declared_positions(program)
    graph.assign_modes(positions + graph.extra_positions())
    for pos in positions:
        if pos.mode is None:
            pos.mode = M.PRIVATE

    _promote_refctor(positions)
    # Re-check well-formedness on the now fully concrete types.
    check_program_types(program, sink)

    return InferenceResult(graph, seeds, collect_scast_shapes(program))
