"""The one-call SharC pipeline: parse -> infer -> check -> instrument.

``check_source`` is the main entry point used by the examples, tests, and
benchmarks::

    checked = check_source(source, "prog.c")
    if checked.ok:
        result = run_checked(checked, seed=1)      # repro.runtime.interp

The returned :class:`CheckedProgram` carries the annotated AST (with
inferred qualifiers and runtime-check metadata on the nodes), all
diagnostics (errors, warnings, SCAST suggestions), and the inference
artifacts the runtime needs (the RC-tracked shape set).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import Diagnostic, DiagnosticSink, SharcError
from repro.cfront import cast as A
from repro.cfront.parser import parse_program
from repro.cfront.pretty import pretty_program
from repro.sharc.absint import AbsintResult, analyze_absint
from repro.sharc.checkelim import ElimStats, mark_elisions
from repro.sharc.inference import InferenceResult, infer_program
from repro.sharc.instrument import (
    InstrumentStats, instrumented_listing, mark_rc_writes,
)
from repro.sharc.lockset import LocksetResult, analyze_locksets
from repro.sharc.typecheck import CheckStats, typecheck_program


@dataclass
class CheckedProgram:
    """The result of running the static half of SharC."""

    program: A.Program
    sink: DiagnosticSink
    inference: InferenceResult
    check_stats: CheckStats
    rc_stats: InstrumentStats
    source: str = ""
    filename: str = "<input>"
    #: check-elimination census (repro.sharc.checkelim).  The marks are
    #: always computed; whether the interpreter consumes them is the
    #: run-time ``checkelim`` switch.
    elim_stats: ElimStats = field(default_factory=ElimStats)
    #: static lockset analysis (repro.sharc.lockset): locked(l)
    #: refinements and compile-time race findings.  Like check
    #: elimination, refinement marks are always computed; the
    #: interpreter's ``lockset`` switch decides whether they are
    #: consumed.  Static races are warnings kept out of ``ok``.
    lockset_result: LocksetResult = field(default_factory=LocksetResult)
    #: thread-modular abstract interpretation (repro.sharc.absint):
    #: interval-proved discharge marks (``ai_elide`` / ``ai_range``) and
    #: interval verdicts on the lockset pass's static races.  Marks are
    #: always computed; the runtime ``absint`` switch decides
    #: consumption, so the ablation stays bit-identical.
    absint_result: AbsintResult = field(default_factory=AbsintResult)

    @property
    def ok(self) -> bool:
        """True when the program type-checked with no errors."""
        return not self.sink.has_errors

    @property
    def errors(self) -> list[Diagnostic]:
        return self.sink.errors

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.sink.warnings

    @property
    def suggestions(self) -> list[Diagnostic]:
        return self.sink.suggestions

    def inferred_source(self) -> str:
        """The program with every inferred qualifier made explicit —
        the paper's Figure 2 view."""
        return pretty_program(self.program, show_inferred=True)

    def instrumented_source(self) -> str:
        return instrumented_listing(self.program)

    def render_diagnostics(self) -> str:
        return self.sink.render()


def check_program(program: A.Program, source: str = "",
                  filename: str = "<input>",
                  rc_all: bool = False) -> CheckedProgram:
    """Runs inference, type checking, and instrumentation marking."""
    sink = DiagnosticSink()
    inference = infer_program(program, sink)
    stats = typecheck_program(program, sink)
    rc_stats = mark_rc_writes(program, inference, rc_all=rc_all)
    elim_stats = mark_elisions(program)
    lockset_result = analyze_locksets(program, inference.seeds)
    absint_result = analyze_absint(program, inference.seeds,
                                   lockset_result,
                                   structs=program.structs)
    return CheckedProgram(program, sink, inference, stats, rc_stats,
                          source, filename, elim_stats, lockset_result,
                          absint_result)


def check_source(source: str, filename: str = "<input>",
                 rc_all: bool = False) -> CheckedProgram:
    """Parses and checks a mini-C translation unit."""
    program = parse_program(source, filename)
    return check_program(program, source, filename, rc_all=rc_all)


def check_and_run(source: str, filename: str = "<input>", *,
                  seed: int = 0, world=None, max_steps: int = 2_000_000,
                  require_clean: bool = False):
    """Convenience: static check then one dynamic run.

    Returns ``(checked, result)``; ``result`` is None when static checking
    failed.  With ``require_clean`` a static error raises
    :class:`SharcError` instead.
    """
    from repro.runtime.interp import run_checked

    checked = check_source(source, filename)
    if not checked.ok:
        if require_clean:
            raise SharcError(
                "static checking failed:\n" + checked.render_diagnostics())
        return checked, None
    result = run_checked(checked, seed=seed, world=world,
                         max_steps=max_steps)
    return checked, result
