"""Abstract domains for the thread-modular abstract interpreter.

The interval domain of Cousot & Cousot, as used by Miné's static
analysis of embedded parallel C (PAPERS.md): each integer-valued
expression is approximated by a closed interval ``[lo, hi]`` with
``±inf`` endpoints.  Bottom (unreachable / no value) is represented by
``None`` at use sites rather than a sentinel object, so the common
case — a real interval — never pays an ``is_bottom`` test.

The lattice operations the fixpoint engine needs:

- ``join`` (path merge, interference accumulation),
- ``meet`` (branch-condition refinement; may return ``None`` = bottom),
- ``widen`` (loop heads and late interference rounds: any endpoint
  still moving jumps straight to ``±inf``, which is what guarantees
  termination of every fixpoint in :mod:`repro.sharc.absint`).

Arithmetic transfer functions cover what the mini-C workloads actually
compute with indices and bounds: ``+ - *``, unary minus, ``%`` (value
range of the remainder), and comparison-guard refinement.  Anything
else conservatively returns ``TOP``.
"""

from __future__ import annotations

INF = float("inf")


class Interval:
    """A closed integer interval ``[lo, hi]``; endpoints may be ±inf.

    Immutable by convention: every operation returns a fresh interval
    (or a shared constant such as :data:`TOP`).
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        self.lo = lo
        self.hi = hi

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"[{self.lo}, {self.hi}]"

    def __eq__(self, other):
        return (other.__class__ is Interval
                and self.lo == other.lo and self.hi == other.hi)

    def __hash__(self):
        return hash((self.lo, self.hi))

    # -- predicates ---------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi and self.lo not in (INF, -INF)

    @property
    def is_top(self) -> bool:
        return self.lo == -INF and self.hi == INF

    @property
    def is_bounded(self) -> bool:
        return self.lo != -INF and self.hi != INF

    def contains(self, v) -> bool:
        return self.lo <= v <= self.hi

    def disjoint(self, other: "Interval") -> bool:
        return self.hi < other.lo or other.hi < self.lo

    def subset(self, other: "Interval") -> bool:
        return other.lo <= self.lo and self.hi <= other.hi

    # -- lattice ------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval"):
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None  # bottom
        return Interval(lo, hi)

    def widen(self, other: "Interval") -> "Interval":
        """Standard interval widening: an endpoint that moved outward
        since the previous iterate jumps to infinity."""
        lo = self.lo if other.lo >= self.lo else -INF
        hi = self.hi if other.hi <= self.hi else INF
        return Interval(lo, hi)

    # -- arithmetic ---------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        cands = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if 0 in (a, b):  # avoid inf * 0 = nan
                    cands.append(0)
                else:
                    cands.append(a * b)
        return Interval(min(cands), max(cands))

    def mod(self, other: "Interval") -> "Interval":
        """Value range of ``a % b`` under C-like semantics; only the
        all-positive-divisor case is refined, everything else is TOP."""
        if other.lo > 0 and other.hi != INF:
            hi = other.hi - 1
            if self.lo >= 0:
                return Interval(0, min(self.hi, hi))
            return Interval(-hi, hi)
        return TOP

    # -- guard refinement ---------------------------------------------------

    def below(self, bound, strict: bool) -> "Interval | None":
        """Refine by ``x < bound`` / ``x <= bound``."""
        hi = bound - 1 if strict else bound
        if self.lo > hi:
            return None
        return Interval(self.lo, min(self.hi, hi))

    def above(self, bound, strict: bool) -> "Interval | None":
        """Refine by ``x > bound`` / ``x >= bound``."""
        lo = bound + 1 if strict else bound
        if self.hi < lo:
            return None
        return Interval(max(self.lo, lo), self.hi)


TOP = Interval(-INF, INF)


def const(v) -> Interval:
    return Interval(v, v)


def from_pair(pair) -> Interval:
    """Decode the JSON form produced by :func:`encode` (``null`` =
    unbounded endpoint)."""
    lo, hi = pair
    return Interval(-INF if lo is None else lo, INF if hi is None else hi)


def encode(iv: Interval) -> list:
    """JSON-encodable ``[lo, hi]`` with ``None`` for ±inf endpoints."""
    return [None if iv.lo == -INF else int(iv.lo),
            None if iv.hi == INF else int(iv.hi)]


def join_env(dst: dict, src: dict) -> dict:
    """Pointwise join of two ``name -> Interval`` environments.  A name
    absent on either side is unknown there, so the join is TOP-absent
    (simply dropped): reads of absent names default to TOP."""
    out = {}
    for name, iv in dst.items():
        other = src.get(name)
        if other is not None:
            out[name] = iv.join(other)
    return out


def widen_env(old: dict, new: dict) -> dict:
    """Pointwise widening of ``new`` against the previous iterate."""
    out = {}
    for name, iv in new.items():
        prev = old.get(name)
        out[name] = prev.widen(iv) if prev is not None else iv
    return out


def env_equal(a: dict, b: dict) -> bool:
    if a.keys() != b.keys():
        return False
    return all(b[k] == iv for k, iv in a.items())
