"""SharC proper: the paper's primary contribution.

This package implements, on top of the :mod:`repro.cfront` frontend:

- the five sharing modes and their compatibility rules
  (:mod:`repro.sharc.modes`),
- well-formedness of qualified types (:mod:`repro.sharc.wellformed`),
- the Section 4.1 defaulting rules (:mod:`repro.sharc.defaults`),
- the flow-insensitive qualifier-constraint analysis with ``dynamic_in``
  (:mod:`repro.sharc.constraints`),
- thread-reachability seeding (:mod:`repro.sharc.seeds`),
- inference orchestration (:mod:`repro.sharc.inference`),
- the static type checker with SCAST legality and suggestions
  (:mod:`repro.sharc.typecheck`),
- runtime-check instrumentation (:mod:`repro.sharc.instrument`),
- conflict-report rendering (:mod:`repro.sharc.reports`), and
- the one-call pipeline (:mod:`repro.sharc.checker`).
"""

from repro.sharc.modes import Mode, ModeKind

__all__ = [
    "Mode",
    "ModeKind",
    "CheckedProgram",
    "check_program",
    "check_source",
]


def __getattr__(name):
    if name in ("CheckedProgram", "check_program", "check_source"):
        from repro.sharc import checker
        return getattr(checker, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
