"""Static check elimination: discharge dynamic checks before they run.

PR 1 made each ``chkread``/``chkwrite`` cheaper; this pass makes them
*rarer*, the standard next lever of lightweight static race analyses
(RacerF; Miné's static analysis of embedded parallel C).  Two
transformations, both driven by an evaluation-order dataflow walk that
mirrors the interpreter:

- **Redundant-check elimination** (``AccessInfo.elide`` /
  ``node.sharc_check_elided``): a check is marked when a previous check
  of the same lvalue, at least as strong (a write check covers a later
  read check), reaches it on every path with no intervening *yield
  point* — calls (which may spawn, lock, or run library summaries),
  sharing casts (which reset granule bitmaps), and loop boundaries are
  the kill points.  Loop bodies are walked twice so covers carried
  around the back-edge (``h[i]`` in a scan loop covering itself) are
  found.  ``continue`` edges re-enter the head too, so the back-edge
  state is the meet of the end-of-body state with the state at every
  continue point — a cover killed on a continue path (say by a call
  before the ``continue``) must not carry around the loop just because
  the body tail re-established it.

- **Range-walk marking** (``AccessInfo.range_walk`` /
  ``node.sharc_range_check``): an indexed access inside a call-free
  loop whose index variable is monotonically stepped is routed through
  the range-batched ``ShadowMemory.chkread_range``/``chkwrite_range``
  APIs, which hoist the page lookup out of the per-granule walk.

Soundness is *not* this pass's burden, by design.  The scheduler may
preempt a thread at any yield and another thread may mutate the shadow
state between two statically adjacent checks, so a purely static
elision could change which conflicts are observed.  Instead every
``elide`` mark is guarded at runtime by ``ShadowMemory.recheck`` — the
exact cache-hit prefix of the full check — so an elided check either
replays precisely the fast path the full check would have taken (same
cost, same counters, no conflict possible) or falls back to the full
check.  Elimination on and off are therefore bit-identical in reports,
step counts, and scheduler RNG; the marks only decide how often the
cheap guard gets to answer first.  The pass can accordingly mark
aggressively: a wrong (never-hitting) mark costs one predicate test,
not a missed race.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfront import cast as A
from repro.sharc.typecheck import AccessInfo

#: cover strength: a read check proves the thread's read bit is set, a
#: write check proves exclusive ownership (which covers later reads too)
_READ, _WRITE = 1, 2


@dataclass
class ElimStats:
    """Census of statically discharged check sites."""

    elided_reads: int = 0
    elided_writes: int = 0
    range_reads: int = 0
    range_writes: int = 0

    @property
    def elided(self) -> int:
        return self.elided_reads + self.elided_writes

    @property
    def ranges(self) -> int:
        return self.range_reads + self.range_writes

    def summary(self) -> str:
        return (f"checkelim: {self.elided} elidable check site(s) "
                f"({self.elided_reads} read, {self.elided_writes} "
                f"write), {self.ranges} range-walk site(s)")


def mark_elisions(program: A.Program) -> ElimStats:
    """Annotates every function's checked accesses in place."""
    stats = ElimStats()
    walker = _Walker(stats)
    for func in program.functions():
        if func.body is not None:
            walker.stmt(func.body, {})
    return stats


def _meet(a: dict, b: dict) -> dict:
    """Path join: a cover survives only at the weaker of its strengths
    on the two paths (absent = strength 0 = dropped)."""
    return {key: min(strength, b.get(key, 0))
            for key, strength in a.items() if b.get(key, 0)}


def _idents(e: A.Expr) -> set:
    return {sub.name for sub in A.walk_expr(e)
            if sub.__class__ is A.Ident}


def _has_break(s) -> bool:
    """Does this loop body break out of *this* loop?  (Breaks inside
    nested loops exit those, not this one.)"""
    cls = s.__class__
    if cls is A.Break:
        return True
    if cls in (A.While, A.DoWhile, A.For):
        return False
    if cls is A.Compound:
        return any(_has_break(sub) for sub in s.stmts)
    if cls is A.If:
        if _has_break(s.then):
            return True
        return s.other is not None and _has_break(s.other)
    return False


class _Walker:
    """Evaluation-order walk mirroring ``Interp.eval_expr`` /
    ``Interp.exec_stmt``.  The state is ``lvalue text -> cover
    strength``; it is mutated in place and copied at branches."""

    def __init__(self, stats: ElimStats) -> None:
        self.stats = stats
        #: per enclosing loop, the cover states snapshot at each
        #: ``continue`` — the loop head is re-entered from every one of
        #: them, so the back-edge state is their meet with the
        #: end-of-body state
        self._continues: list[list[dict]] = []

    # -- marking -------------------------------------------------------------

    def check(self, node: A.Expr, info, is_write: bool,
              st: dict) -> None:
        """One runtime check firing at ``node``: mark it elidable if a
        covering check reaches it, then record its own cover."""
        if info is None or not info.is_dynamic:
            return
        need = _WRITE if is_write else _READ
        key = info.lvalue_text
        if st.get(key, 0) >= need:
            if not info.elide:
                info.elide = True
                node.sharc_check_elided = True  # type: ignore[attr-defined]
                if is_write:
                    self.stats.elided_writes += 1
                else:
                    self.stats.elided_reads += 1
        if st.get(key, 0) < need:
            st[key] = need

    # -- expressions ---------------------------------------------------------

    def lvalue(self, e: A.Expr, st: dict) -> None:
        """Address computation only: the reads embedded in the address
        expression fire, the node's own access check does not."""
        cls = e.__class__
        if cls is A.Ident:
            return
        if cls is A.Unop and e.op == "*":
            self.expr(e.operand, st)
            return
        if cls is A.Member:
            if e.arrow:
                self.expr(e.obj, st)
            else:
                self.lvalue(e.obj, st)
            return
        if cls is A.Index:
            if getattr(e, "sharc_on_array", False):
                self.lvalue(e.arr, st)
            else:
                self.expr(e.arr, st)
            self.expr(e.idx, st)
            return

    def expr(self, e, st: dict) -> None:
        if e is None:
            return
        cls = e.__class__
        if cls is A.Ident:
            self.check(e, getattr(e, "sharc_read", None), False, st)
            return
        if cls in (A.IntLit, A.CharLit, A.FloatLit, A.NullLit,
                   A.StrLit, A.SizeofExpr):
            # sizeof's operand is never evaluated at runtime.
            return
        if cls in (A.Member, A.Index):
            self.lvalue(e, st)
            self.check(e, getattr(e, "sharc_read", None), False, st)
            return
        if cls is A.Unop:
            if e.op == "&":
                self.lvalue(e.operand, st)
                return
            if e.op == "*":
                self.expr(e.operand, st)
                self.check(e, getattr(e, "sharc_read", None), False, st)
                return
            if e.op in ("++", "--"):
                op = e.operand
                self.lvalue(op, st)
                self.check(op, getattr(op, "sharc_read", None), False, st)
                self.check(op, getattr(op, "sharc_write", None), True, st)
                return
            self.expr(e.operand, st)
            return
        if cls is A.Binop:
            if e.op in ("&&", "||"):
                self.expr(e.lhs, st)
                branch = dict(st)
                self.expr(e.rhs, branch)
                met = _meet(st, branch)
                st.clear()
                st.update(met)
                return
            self.expr(e.lhs, st)
            self.expr(e.rhs, st)
            return
        if cls is A.Assign:
            lhs = e.lhs
            lhs_qt = lhs.ctype
            if e.op == "=" and lhs_qt is not None and lhs_qt.is_struct:
                self.lvalue(e.rhs, st)
                self.lvalue(lhs, st)
                self.check(lhs, getattr(lhs, "sharc_write", None),
                           True, st)
                self.check(e.rhs, getattr(e.rhs, "sharc_read", None),
                           False, st)
                return
            self.expr(e.rhs, st)
            self.lvalue(lhs, st)
            if e.op != "=":
                self.check(lhs, getattr(lhs, "sharc_read", None),
                           False, st)
            self.check(lhs, getattr(lhs, "sharc_write", None), True, st)
            return
        if cls is A.Call:
            if e.callee.__class__ is not A.Ident:
                self.expr(e.callee, st)
            for arg in e.args:
                self.expr(arg, st)
            # Yield point: the callee may spawn, lock, run a library
            # read/write summary, or touch the shadow version.
            st.clear()
            return
        if cls is A.SCastExpr:
            self.lvalue(e.expr, st)
            self.check(e.expr, getattr(e.expr, "sharc_read", None),
                       False, st)
            self.check(e, getattr(e, "sharc_src_write", None), True, st)
            # scast resets the object's granule bitmaps.
            st.clear()
            return
        if cls is A.CastExpr:
            self.expr(e.expr, st)
            return
        if cls is A.CondExpr:
            self.expr(e.cond, st)
            then_st = dict(st)
            self.expr(e.then, then_st)
            other_st = dict(st)
            self.expr(e.other, other_st)
            met = _meet(then_st, other_st)
            st.clear()
            st.update(met)
            return
        if cls is A.CommaExpr:
            for part in e.parts:
                self.expr(part, st)
            return

    # -- statements ----------------------------------------------------------

    def stmt(self, s, st: dict) -> None:
        if s is None:
            return
        cls = s.__class__
        if cls is A.Compound:
            for sub in s.stmts:
                self.stmt(sub, st)
            return
        if cls is A.ExprStmt:
            self.expr(s.expr, st)
            return
        if cls is A.DeclStmt:
            for d in s.decls:
                if d.init is not None:
                    self.expr(d.init, st)
            return
        if cls is A.If:
            self.expr(s.cond, st)
            then_st = dict(st)
            self.stmt(s.then, then_st)
            other_st = dict(st)
            if s.other is not None:
                self.stmt(s.other, other_st)
            met = _meet(then_st, other_st)
            st.clear()
            st.update(met)
            return
        if cls is A.While:
            self.expr(s.cond, st)
            exits = [dict(st)]  # zero-iteration exit
            body_st = dict(st)
            for _ in range(2):
                # Pass 1 marks straight-line covers; pass 2 re-enters
                # with the state carried around the back-edge, finding
                # the loop-carried self-covers that dominate scan loops.
                self._loop_body(s.body, body_st)
                self.expr(s.cond, body_st)
                exits.append(dict(body_st))
            self._mark_ranges(s.body, None)
            self._loop_exit(s.body, exits, st)
            return
        if cls is A.DoWhile:
            exits = []  # the body always runs at least once
            body_st = dict(st)
            for _ in range(2):
                self._loop_body(s.body, body_st)
                self.expr(s.cond, body_st)
                exits.append(dict(body_st))
            self._mark_ranges(s.body, None)
            self._loop_exit(s.body, exits, st)
            return
        if cls is A.For:
            if isinstance(s.init, A.DeclStmt):
                self.stmt(s.init, st)
            elif s.init is not None:
                self.expr(s.init, st)
            if s.cond is not None:
                self.expr(s.cond, st)
            exits = [dict(st)]
            body_st = dict(st)
            for _ in range(2):
                self._loop_body(s.body, body_st)
                if s.step is not None:
                    self.expr(s.step, body_st)
                if s.cond is not None:
                    self.expr(s.cond, body_st)
                exits.append(dict(body_st))
            self._mark_ranges(s.body, s.step)
            self._loop_exit(s.body, exits, st)
            return
        if cls is A.Return:
            if s.value is not None:
                self.expr(s.value, st)
            return
        if cls is A.Continue:
            # The innermost loop's head is re-entered from here having
            # skipped the body tail; snapshot the state so the
            # back-edge meet accounts for this path too.
            if self._continues:
                self._continues[-1].append(dict(st))
            return
        # Break: the loop's post-state is already cleared
        # conservatively, so early exits need no extra bookkeeping.

    def _loop_body(self, body, body_st: dict) -> None:
        """Walk a loop body and fold every ``continue`` edge into the
        back-edge state: the head is re-entered both from the end of
        the body and from each continue point, so only covers that
        survive *all* of those paths carry around the loop."""
        self._continues.append([])
        try:
            self.stmt(body, body_st)
        finally:
            snaps = self._continues.pop()
        for snap in snaps:
            met = _meet(body_st, snap)
            body_st.clear()
            body_st.update(met)

    def _loop_exit(self, body, exits: list, st: dict) -> None:
        """Post-loop state: the meet of every normal exit state (zero
        iterations, one-plus iterations).  A body that can ``break``
        exits mid-iteration with an unmodelled state, so it clears the
        covers outright."""
        if _has_break(body) or not exits:
            st.clear()
            return
        met = exits[0]
        for other in exits[1:]:
            met = _meet(met, other)
        st.clear()
        st.update(met)

    # -- range-walk detection -------------------------------------------------

    def _mark_ranges(self, body, step) -> None:
        """Marks indexed accesses of a monotone, call-free loop for the
        range-batched check APIs."""
        exprs = list(A.all_exprs(body))
        if step is not None:
            exprs.extend(A.walk_expr(step))
        for e in exprs:
            if e.__class__ in (A.Call, A.SCastExpr):
                return
        stepped = set()
        for e in exprs:
            cls = e.__class__
            if cls is A.Unop and e.op in ("++", "--") \
                    and e.operand.__class__ is A.Ident:
                stepped.add(e.operand.name)
            elif cls is A.Assign and e.lhs.__class__ is A.Ident:
                if e.op in ("+=", "-="):
                    stepped.add(e.lhs.name)
                elif e.op == "=" and e.rhs.__class__ is A.Binop \
                        and e.rhs.op in ("+", "-") \
                        and e.lhs.name in _idents(e.rhs):
                    stepped.add(e.lhs.name)
        if not stepped:
            return
        for e in exprs:
            if e.__class__ is not A.Index:
                continue
            if not (_idents(e.idx) & stepped):
                continue
            for attr, is_write in (("sharc_read", False),
                                   ("sharc_write", True)):
                info = getattr(e, attr, None)
                if info is None or not info.is_dynamic or info.range_walk:
                    continue
                info.range_walk = True
                e.sharc_range_check = True  # type: ignore[attr-defined]
                if is_write:
                    self.stats.range_writes += 1
                else:
                    self.stats.range_reads += 1
