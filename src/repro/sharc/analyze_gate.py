"""Static-race lint gate: ``python -m repro.sharc.analyze_gate``.

CI's guard against *silent* changes in the static lockset analysis.  It
runs the ``sharc analyze`` pipeline over every example program and every
Table 1 workload source (annotated **and** unannotated variants) and
compares the resulting ``static-race`` keys against the committed golden
file ``ci/analyze_golden.json``:

- a race key the golden file does not list fails the gate — either the
  analysis grew a false positive or a model grew a real race; both need
  a human to look before the golden moves;
- a golden key the analysis no longer reports also fails — the golden
  is stale and must be regenerated in the same commit
  (``--update`` rewrites it).

The expected set is not empty: the unannotated workload models race by
design (that is Table 1's story), and the *annotated* fftw model keeps
two ``static-race`` diagnostics on its planner handoff — the
ownership-transfer false-positive class that lockset reasoning, static
or dynamic, cannot see (EXPERIMENTS.md § "Static lockset analysis").

Since the abstract-interpretation tier, the gate also covers the
``--ai`` view: every target is checked for absint *consistency* (the
interference fixpoint terminated, the interval verdicts cover exactly
the reported static races, and the ``sharc-analyze/1`` upgrade shim —
the without-``--ai`` view of the same target — yields identical race
keys), and the golden file (``sharc-analyze-golden/2``) additionally
pins each target's interval-refuted/-confirmed verdict counts.  A
``sharc-analyze-golden/1`` file is still accepted; it simply pins no
absint counts.

``--out-dir`` additionally writes each target's full ``sharc analyze
--json`` payload (schema ``sharc-analyze/2``), which CI uploads as
build artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

GOLDEN_SCHEMA_V1 = "sharc-analyze-golden/1"
GOLDEN_SCHEMA = "sharc-analyze-golden/2"
DEFAULT_GOLDEN = "ci/analyze_golden.json"
DEFAULT_EXAMPLES = "examples"


def gate_targets(examples_dir: Optional[str] = DEFAULT_EXAMPLES
                 ) -> list[tuple[str, str]]:
    """(target name, mini-C source) pairs the gate analyzes: every
    ``.c`` file under ``examples_dir`` plus both variants of every
    Table 1 workload model."""
    from repro.bench.workloads import all_workloads

    targets: list[tuple[str, str]] = []
    if examples_dir is not None:
        for path in sorted(Path(examples_dir).glob("*.c")):
            targets.append((f"examples/{path.name}",
                            path.read_text(encoding="utf-8")))
    for workload in all_workloads():
        targets.append((f"workloads/{workload.name}.annotated.c",
                        workload.annotated_source))
        targets.append((f"workloads/{workload.name}.unannotated.c",
                        workload.unannotated_source))
    return targets


def analyze_targets(targets: list[tuple[str, str]],
                    out_dir: Optional[str] = None) -> dict[str, dict]:
    """Runs the analyze pipeline over each target; returns
    name -> payload and optionally writes each payload under
    ``out_dir`` (slashes in target names become dots)."""
    from repro.cli import analyze_payload
    from repro.sharc.checker import check_source

    payloads: dict[str, dict] = {}
    for name, source in targets:
        payloads[name] = analyze_payload(check_source(source, name))
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for name, payload in payloads.items():
            safe = name.replace("/", ".").replace(".c", ".json")
            with open(out / safe, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
    return payloads


def golden_from_payloads(payloads: dict[str, dict]) -> dict:
    return {
        "schema": GOLDEN_SCHEMA,
        "races": {name: sorted(r["key"]
                               for r in payload["static_races"])
                  for name, payload in payloads.items()},
        "absint": {name: {"refuted": payload["absint"]["refuted"],
                          "confirmed": payload["absint"]["confirmed"]}
                   for name, payload in payloads.items()},
    }


def check_ai_consistency(payloads: dict[str, dict]) -> list[str]:
    """The absint layer must decorate the lockset findings, never
    perturb them: each payload's interval verdicts cover exactly the
    reported static races, the interference fixpoint terminated, and
    the ``sharc-analyze/1`` upgrade shim — the without-``--ai`` view
    of the same target — round-trips to identical race keys."""
    from repro.cli import ANALYZE_SCHEMA_V1, upgrade_analyze_payload

    problems: list[str] = []
    for name, payload in sorted(payloads.items()):
        if not payload["ok"]:
            continue  # reported by check_golden
        ai = payload.get("absint")
        if not isinstance(ai, dict):
            problems.append(f"{name}: payload has no absint section")
            continue
        if not ai.get("terminated", False):
            problems.append(f"{name}: interference fixpoint did not "
                            f"terminate ({ai.get('rounds')} rounds)")
        keys = sorted(r["key"] for r in payload["static_races"])
        verdicts = ai.get("verdicts", [])
        if ai.get("refuted", 0) + ai.get("confirmed", 0) \
                != len(verdicts):
            problems.append(f"{name}: absint refuted+confirmed counts "
                            "disagree with the verdict list")
        covered = sorted(f"static-race {v['location']}@{v['line']}"
                         for v in verdicts)
        if covered != keys:
            problems.append(f"{name}: absint verdicts do not cover "
                            "the static races one-to-one")
        legacy = {k: v for k, v in payload.items() if k != "absint"}
        legacy["schema"] = ANALYZE_SCHEMA_V1
        upgraded = upgrade_analyze_payload(legacy)
        if sorted(r["key"] for r in upgraded["static_races"]) != keys:
            problems.append(f"{name}: /1 -> /2 upgrade shim perturbed "
                            "the race keys")
    return problems


def check_golden(golden: dict, payloads: dict[str, dict]) -> list[str]:
    """Diffs measured static-race keys (and, for a /2 golden, absint
    verdict counts) against the golden; returns problems (empty = gate
    passes)."""
    problems: list[str] = []
    if golden.get("schema") not in (GOLDEN_SCHEMA, GOLDEN_SCHEMA_V1):
        problems.append(f"golden schema != {GOLDEN_SCHEMA!r}")
    expected = golden.get("races")
    if not isinstance(expected, dict):
        return problems + ["golden 'races' missing"]
    expected_ai = golden.get("absint")
    if not isinstance(expected_ai, dict):
        expected_ai = {}  # /1 golden: no absint counts pinned
    for name, payload in sorted(payloads.items()):
        if not payload["ok"]:
            problems.append(f"{name}: does not type-check: "
                            + "; ".join(payload["errors"][:3]))
            continue
        want = expected.get(name)
        if want is None:
            problems.append(f"{name}: not in golden (new target? "
                            "regenerate with --update)")
            continue
        got = sorted(r["key"] for r in payload["static_races"])
        for key in got:
            if key not in want:
                problems.append(f"{name}: unexpected {key}")
        for key in want:
            if key not in got:
                problems.append(f"{name}: golden expects {key}, "
                                "no longer reported (stale golden)")
        want_ai = expected_ai.get(name)
        if want_ai is not None:
            got_ai = {"refuted": payload["absint"]["refuted"],
                      "confirmed": payload["absint"]["confirmed"]}
            if got_ai != want_ai:
                problems.append(
                    f"{name}: absint verdicts {got_ai} != golden "
                    f"{want_ai} (regenerate with --update if intended)")
    for name in sorted(set(expected) - set(payloads)):
        problems.append(f"{name}: in golden but not analyzed "
                        "(removed target? regenerate with --update)")
    return problems


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sharc.analyze_gate",
        description="static-race lint gate over examples and the "
                    "Table 1 workload sources")
    parser.add_argument("--golden", default=DEFAULT_GOLDEN,
                        help=f"golden file (default {DEFAULT_GOLDEN})")
    parser.add_argument("--examples-dir", default=DEFAULT_EXAMPLES,
                        help="directory of example .c files "
                             f"(default {DEFAULT_EXAMPLES})")
    parser.add_argument("--out-dir", default=None, metavar="DIR",
                        help="also write each target's analyze --json "
                             "payload here (CI artifacts)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the golden file from this run "
                             "instead of gating against it")
    args = parser.parse_args(argv)

    payloads = analyze_targets(gate_targets(args.examples_dir),
                               out_dir=args.out_dir)
    races = sum(len(p["static_races"]) for p in payloads.values())
    refuted = sum(p["absint"]["refuted"] for p in payloads.values())
    print(f"analyzed {len(payloads)} target(s): {races} static "
          f"race(s), {refuted} interval-refuted")

    ai_problems = check_ai_consistency(payloads)
    if ai_problems:
        print("analyze gate FAILED (absint consistency):\n  "
              + "\n  ".join(ai_problems), file=sys.stderr)
        return 1

    if args.update:
        with open(args.golden, "w", encoding="utf-8") as handle:
            json.dump(golden_from_payloads(payloads), handle, indent=2)
            handle.write("\n")
        print(f"golden rewritten: {args.golden}")
        return 0

    try:
        with open(args.golden, encoding="utf-8") as handle:
            golden = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read golden {args.golden}: {exc} "
              "(generate it with --update)", file=sys.stderr)
        return 2
    problems = check_golden(golden, payloads)
    if problems:
        print("analyze gate FAILED:\n  " + "\n  ".join(problems),
              file=sys.stderr)
        return 1
    print("analyze gate ok: static races match the golden file")
    return 0


if __name__ == "__main__":
    sys.exit(main())
