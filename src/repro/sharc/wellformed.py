"""Well-formedness of qualified types.

The REF-CTOR rule of Figure 4 says ``m ref (m' s)`` is well formed when
``m = m'`` or ``m = private``; its purpose is to forbid a shared pointer to
a ``private`` object (another thread could reach the private cell through
it).  In full SharC the generalization is:

- a non-``private`` pointer must not reference a ``private`` object;
- all other mode pairs are fine (e.g. ``readonly`` pointer to ``racy``
  mutex internals, as in Figure 2's ``mutex racy * readonly mut``).

Additional structural rules checked here (Section 4.1):

- a struct field's *outermost* qualifier must not be ``private`` (within a
  private struct it already is private; within a shared struct it would be
  unsound);
- a ``locked`` qualifier's lock expression must be built from unmodified
  locals and ``readonly`` values (checked contextually by the type
  checker; here we verify the expression parses).
"""

from __future__ import annotations

from repro.errors import DiagKind, DiagnosticSink, Loc, ParseError
from repro.cfront import cast as A
from repro.cfront.ctypes import FuncType, PtrType, QualType
from repro.cfront.parser import parse_expression
from repro.sharc import modes as M
from repro.sharc.defaults import collect_local_decls


def check_type_wellformed(qt: QualType, sink: DiagnosticSink,
                          where: str = "", loc: Loc | None = None) -> bool:
    """Checks REF-CTOR and lock-expression syntax throughout ``qt``.

    Returns False if any problem was reported.  Positions whose mode is
    still ``None`` (inference pending) are skipped — inference re-checks
    the final types.
    """
    ok = True
    for pos in qt.walk():
        mode = pos.mode
        if mode is not None and mode.is_locked:
            try:
                parse_expression(mode.lock)
            except ParseError as exc:
                sink.error(DiagKind.WELLFORMED,
                           f"unparseable lock expression "
                           f"{mode.lock!r}{where}: {exc.message}",
                           loc or pos.loc)
                ok = False
        if isinstance(pos.base, PtrType):
            target = pos.base.target
            if (mode is not None and target.mode is not None
                    and not mode.is_private
                    and not mode.is_inherit
                    and target.mode.is_private):
                sink.error(
                    DiagKind.WELLFORMED,
                    f"ill-formed type '{pos}'{where}: a non-private "
                    "pointer must not reference a private object "
                    "(REF-CTOR)",
                    loc or pos.loc)
                ok = False
    return ok


def check_struct_fields(program: A.Program, sink: DiagnosticSink) -> bool:
    """Rejects explicit outermost ``private`` on struct fields."""
    ok = True
    for decl in program.decls:
        if not isinstance(decl, A.StructDef):
            continue
        for fname, ftype in decl.fields:
            if (ftype.explicit and ftype.mode is not None
                    and ftype.mode.is_private):
                sink.error(
                    DiagKind.WELLFORMED,
                    f"field '{fname}' of struct {decl.name} cannot be "
                    "declared private: unannotated fields inherit the "
                    "struct instance's qualifier (Section 4.1)",
                    decl.loc)
                ok = False
            if not check_type_wellformed(
                    ftype, sink, f" (field '{decl.name}.{fname}')",
                    decl.loc):
                ok = False
    return ok


def check_program_types(program: A.Program, sink: DiagnosticSink) -> bool:
    """Well-formedness over all declared types in the program."""
    ok = check_struct_fields(program, sink)
    for decl in program.decls:
        if isinstance(decl, A.VarDecl):
            if not check_type_wellformed(decl.qtype, sink,
                                         f" (global '{decl.name}')",
                                         decl.loc):
                ok = False
        elif isinstance(decl, A.FuncDef):
            func = decl.qtype.base
            assert isinstance(func, FuncType)
            if not check_type_wellformed(func.ret, sink,
                                         f" (return of '{decl.name}')",
                                         decl.loc):
                ok = False
            for name, param in zip(decl.param_names, func.params):
                if not check_type_wellformed(
                        param, sink,
                        f" (parameter '{name}' of '{decl.name}')",
                        decl.loc):
                    ok = False
            for local in collect_local_decls(decl):
                if not check_type_wellformed(
                        local.qtype, sink,
                        f" (local '{local.name}' in '{decl.name}')",
                        local.loc):
                    ok = False
    return ok
