"""Thread-modular abstract interpretation over the mini-C AST.

The third static tier (after checkelim's syntactic dataflow and the
whole-program lockset pass): an abstract interpreter with an interval
domain (:mod:`repro.sharc.domains`), analysed per thread context with
an interference fixpoint (:mod:`repro.sharc.interference`) in the
style of Miné's static analysis of embedded parallel C.  Each context
(``main`` plus every thread root) is walked as if sequential; reads of
shared named locations observe the join of every context's abstract
writes; the engine iterates until that interference environment
stabilises, widening late rounds so it always terminates.

Two consumers:

- **Discharge** (``AccessInfo.ai_elide`` / ``ai_range``): interval
  facts prove covers that the syntactic checkelim pass cannot see —
  re-accesses across calls proven *check-free* (transitively touching
  no shadow state), and accesses to the same or a nearby granule of an
  array through *different* index texts whose symbolic offset the
  intervals bound below the granule size (``buf[i]`` covering
  ``buf[i + k]`` once the interference fixpoint pins ``k``).  Exactly
  like checkelim and the lockset refinement, every mark is consumed
  behind the runtime ``ShadowMemory.recheck`` guard: a wrong mark
  costs one predicate test, never a missed race, and the ``--no-
  absint`` ablation is bit-identical in reports, steps, and scheduler
  RNG.  ``ai_range`` routes monotone walks through the range-batched
  check APIs (identical semantics) in loops checkelim skipped because
  they call functions — allowed here when every callee is check-free.

- **Precision** (:class:`RaceVerdict`): each static race the lockset
  pass reports is scored against the intervals — *interval-refuted*
  when the racing contexts provably index disjoint slices of the
  array (the fftw-style partitioning idiom), *interval-confirmed*
  otherwise — with the per-context witness bounds attached.  The
  verdicts ride into ``sharc analyze`` (schema ``sharc-analyze/2``)
  and the differential sweep's AI precision column.

Marks are always computed (like checkelim and lockset); the runtime
``absint`` switch decides consumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfront import cast as A
from repro.sharc import domains as D
from repro.sharc.domains import Interval, TOP, const
from repro.sharc.interference import (InterferenceEnv,
                                      interference_fixpoint)
from repro.sharc.libc import is_builtin
from repro.sharc.lockset import (ACQUIRES, COND_WAITS, RELEASES, SPAWNS,
                                 TAINTING, LocksetResult, key_text,
                                 loc_key)
from repro.sharc.seeds import SeedInfo

#: shadow granule size in bytes (mirrors repro.runtime.shadow)
GRANULE = 16

#: cover strengths, as in checkelim
_READ, _WRITE = 1, 2

#: builtins that block, re-schedule wholesale, or touch shadow/rc
#: state: a call to one of these kills covers even when it checks
#: nothing itself (marks stay *guarded*, this only tunes mark quality)
_DIRTY_BUILTINS = (ACQUIRES | RELEASES | COND_WAITS | TAINTING | SPAWNS
                   | frozenset({"thread_join", "free", "malloc",
                                "calloc", "realloc", "strdup",
                                "barrier_init", "barrier_wait",
                                "exit"}))

#: loop-head widening: iterate once, widen, then verify (plus backstop)
_LOOP_ITERS = 4
#: interprocedural parameter-environment propagation rounds per context
_PARAM_ROUNDS = 3
#: call-inlining depth cap for the marking pass
_INLINE_DEPTH = 10


@dataclass
class AbsintStats:
    """Census of AI-discharged check sites."""

    ai_elided_reads: int = 0
    ai_elided_writes: int = 0
    ai_range_reads: int = 0
    ai_range_writes: int = 0

    @property
    def ai_elided(self) -> int:
        return self.ai_elided_reads + self.ai_elided_writes

    @property
    def ai_ranges(self) -> int:
        return self.ai_range_reads + self.ai_range_writes


@dataclass
class RaceVerdict:
    """One lockset static race scored against the interval facts."""

    key: tuple
    line: int
    refuted: bool
    #: context name -> encoded index interval actually proven there
    witness: dict = field(default_factory=dict)

    @property
    def text(self) -> str:
        return key_text(self.key)

    @property
    def verdict(self) -> str:
        return "interval-refuted" if self.refuted \
            else "interval-confirmed"

    def as_dict(self) -> dict:
        return {"location": self.text, "line": self.line,
                "verdict": self.verdict, "witness": dict(self.witness)}


@dataclass
class AbsintResult:
    """Output of :func:`analyze_absint`."""

    stats: AbsintStats = field(default_factory=AbsintStats)
    #: interference fixpoint rounds actually taken
    rounds: int = 0
    #: structurally guaranteed by widening + caps; kept as an explicit
    #: observable for the termination tests
    terminated: bool = True
    contexts: tuple = ()
    #: function name -> proven check-free (no shadow effects, ever)
    check_free: dict = field(default_factory=dict)
    #: stabilised shared-value environment, ``key -> Interval``
    interference: dict = field(default_factory=dict)
    verdicts: list = field(default_factory=list)

    @property
    def refuted(self) -> int:
        return sum(1 for v in self.verdicts if v.refuted)

    @property
    def confirmed(self) -> int:
        return sum(1 for v in self.verdicts if not v.refuted)

    def interference_encoded(self) -> dict:
        return {key_text(k): D.encode(iv)
                for k, iv in sorted(self.interference.items())}

    def summary(self) -> str:
        s = self.stats
        return (f"absint: {s.ai_elided} AI-elidable check site(s) "
                f"({s.ai_elided_reads} read, {s.ai_elided_writes} "
                f"write), {s.ai_ranges} AI range-walk site(s), "
                f"{self.refuted} race(s) interval-refuted / "
                f"{self.confirmed} confirmed, "
                f"{self.rounds} interference round(s)")


# -- check-free function summaries ------------------------------------------

def _call_is_dirty(e: A.Call, defined: dict, dirty: set) -> bool:
    """Does this call site (transitively) touch shadow, lock, or
    scheduling state?  ``dirty`` is the current fixpoint iterate."""
    if e.callee.__class__ is not A.Ident:
        return True
    name = e.callee.name
    if name in defined:
        return name in dirty
    if name in _DIRTY_BUILTINS:
        return True
    if not is_builtin(name):
        return True
    # A builtin with an attached access summary checks its buffers.
    return bool(getattr(e, "arg_access", None))


def compute_check_free(program: A.Program) -> dict:
    """``fn name -> True`` when no execution of the function can
    perform a dynamic/lock check, run a sharing cast, or call anything
    that might — i.e. it cannot perturb the shadow state the
    ``recheck`` guard consults.  Greatest-fixpoint over the call
    graph: start from locally-clean and remove callers of dirty
    functions."""
    defined = {f.name: f for f in program.functions()
               if f.body is not None}
    locally_dirty = set()
    calls: dict = {name: [] for name in defined}
    for name, func in defined.items():
        for e in A.all_exprs(func.body):
            cls = e.__class__
            if cls is A.SCastExpr:
                locally_dirty.add(name)
                continue
            if cls is A.Call:
                calls[name].append(e)
                continue
            for attr in ("sharc_read", "sharc_write", "sharc_src_write"):
                info = getattr(e, attr, None)
                if info is not None and (info.is_dynamic or info.is_lock):
                    locally_dirty.add(name)
                    break
    dirty = set(locally_dirty)
    changed = True
    while changed:
        changed = False
        for name in defined:
            if name in dirty:
                continue
            if any(_call_is_dirty(e, defined, dirty)
                   for e in calls[name]):
                dirty.add(name)
                changed = True
    return {name: name not in dirty for name in defined}


# -- index decomposition -----------------------------------------------------

def _anchor_of(e: A.Expr, evaluate) -> tuple | None:
    """Decompose an index expression as ``anchor_var + offset``:
    ``("i", [0,0])`` for ``i``, ``("i", iv(k))`` for ``i + k``, and
    ``("", iv(e))`` for fully-evaluable indices.  ``None`` when the
    shape is not affine-in-one-variable — those never participate in
    adjacency covers."""
    cls = e.__class__
    if cls is A.Ident:
        return (e.name, const(0))
    if cls is A.Binop and e.op in ("+", "-"):
        lhs, rhs = e.lhs, e.rhs
        if lhs.__class__ is A.Ident:
            off = evaluate(rhs)
            if e.op == "-":
                off = off.neg()
            return (lhs.name, off)
        if e.op == "+" and rhs.__class__ is A.Ident:
            return (rhs.name, evaluate(lhs))
    iv = evaluate(e)
    if iv.is_bounded:
        return ("", iv)
    return None


def _base_text(e: A.Expr) -> str | None:
    """A stable textual key for an array/pointer base expression."""
    cls = e.__class__
    if cls is A.Ident:
        return e.name
    if cls is A.Member:
        obj = _base_text(e.obj)
        if obj is None:
            return None
        return f"{obj}{'->' if e.arrow else '.'}{e.name}"
    if cls is A.Unop and e.op == "*":
        inner = _base_text(e.operand)
        return None if inner is None else f"*{inner}"
    return None


# -- the analyzer ------------------------------------------------------------

class _Return(Exception):
    """Internal: unwinds the marking pass out of an inlined callee.
    (Value analysis never raises it — returns just stop contributing.)"""


class _Analyzer:
    """One whole-program analysis: value environments + cover marking.

    Two modes share the walk:

    - **summary mode** (``inline=False``): per-context value analysis
      feeding the interference fixpoint.  Calls to defined functions
      join argument intervals into the callee's parameter environment
      (propagated over :data:`_PARAM_ROUNDS` rounds) and yield its
      joined return interval.
    - **marking mode** (``inline=True, marking=True``): one walk per
      context after the fixpoint stabilises, inlining defined calls so
      covers flow through check-free callees, marking ``ai_elide`` /
      ``ai_range`` sites.
    """

    def __init__(self, program: A.Program, seeds: SeedInfo,
                 structs) -> None:
        self.program = program
        self.structs = structs
        self.defined = {f.name: f for f in program.functions()
                        if f.body is not None}
        self.global_names = frozenset(g.name for g in program.globals())
        self.check_free = compute_check_free(program)
        self.stats = AbsintStats()
        roots = sorted(r for r in seeds.thread_roots if r in self.defined)
        self.contexts = tuple(["main"] + [r for r in roots
                                          if r != "main"]
                              ) if "main" in self.defined else tuple(roots)
        # Direct-call graph for per-context reachability.  Spawn
        # targets are *not* edges: they run in their own context.
        self.calls: dict = {}
        for name, func in self.defined.items():
            self.calls[name] = {
                e.callee.name for e in A.all_exprs(func.body)
                if e.__class__ is A.Call
                and e.callee.__class__ is A.Ident
                and e.callee.name in self.defined}
        # interprocedural value state (re-seeded per fixpoint round)
        self.param_envs: dict = {}     # fn -> {param -> Interval}
        self.ret_ivs: dict = {}        # fn -> Interval
        # per-(context, key, 'r'|'w') index ranges for refutation
        self.idx_ranges: dict = {}
        # walk-local state
        self.env: dict = {}
        self.covers: dict = {}
        self.acovers: dict = {}
        self.context = ""
        self.inter: InterferenceEnv | None = None
        self.inline = False
        self.marking = False
        self.depth = 0
        self.call_stack: list = []
        self.cur_ret: Interval | None = None
        self._continues: list = []
        self._breaks: list = []

    # -- reachability --------------------------------------------------------

    def reachable(self, root: str) -> list:
        """Functions reachable from ``root`` over direct calls, in BFS
        order (callers before callees, approximately)."""
        order, seen = [], set()
        work = [root]
        while work:
            name = work.pop(0)
            if name in seen or name not in self.defined:
                continue
            seen.add(name)
            order.append(name)
            work.extend(sorted(self.calls.get(name, ())))
        return order

    # -- initial shared values ----------------------------------------------

    def initial_env(self) -> dict:
        """Global initialiser values (zero-init when absent), keyed
        like the interference environment."""
        init: dict = {}
        for g in self.program.globals():
            key = ("global", g.name)
            iv = None
            e = g.init
            if e is None:
                iv = const(0)  # mini-C globals are zero-initialised
            else:
                cls = e.__class__
                if cls in (A.IntLit, A.CharLit):
                    iv = const(e.value)
                elif cls is A.Unop and e.op == "-" \
                        and e.operand.__class__ in (A.IntLit, A.CharLit):
                    iv = const(-e.operand.value)
            if iv is not None:
                init[key] = iv
        return init

    # -- shared-location access ---------------------------------------------

    def _shared_read(self, key) -> Interval:
        iv = self.inter.read(key)
        return TOP if iv is None else iv

    def _shared_write(self, key, iv: Interval) -> None:
        self.inter.record(self.context, key, iv)

    def _record_idx(self, key, is_write: bool, idx_iv: Interval) -> None:
        rk = (self.context, key, "w" if is_write else "r")
        prev = self.idx_ranges.get(rk)
        self.idx_ranges[rk] = idx_iv if prev is None \
            else prev.join(idx_iv)

    # -- cover state ---------------------------------------------------------

    def _snap(self) -> tuple:
        return dict(self.env), dict(self.covers), dict(self.acovers)

    def _restore(self, snap: tuple) -> None:
        self.env, self.covers, self.acovers = \
            dict(snap[0]), dict(snap[1]), dict(snap[2])

    def _merge_from(self, snap_a: tuple, snap_b: tuple) -> None:
        """Install the path-join of two walk states."""
        env_a, cov_a, ac_a = snap_a
        env_b, cov_b, ac_b = snap_b
        if cov_a.pop(_UNREACH, None) is not None:
            self.env, self.covers, self.acovers = \
                dict(env_b), dict(cov_b), dict(ac_b)
            return
        if cov_b.pop(_UNREACH, None) is not None:
            self.env, self.covers, self.acovers = \
                dict(env_a), dict(cov_a), dict(ac_a)
            return
        self.env = D.join_env(env_a, env_b)
        self.covers = {k: min(s, cov_b.get(k, 0))
                       for k, s in cov_a.items() if cov_b.get(k, 0)}
        merged = {}
        for base, (anchor, off, strength) in ac_a.items():
            other = ac_b.get(base)
            if other is not None and other[0] == anchor:
                merged[base] = (anchor, off.join(other[1]),
                                min(strength, other[2]))
        self.acovers = merged

    def _kill_covers(self) -> None:
        self.covers.clear()
        self.acovers.clear()

    def _invalidate_anchor(self, name: str) -> None:
        """A variable was reassigned: drop adjacency covers anchored on
        it (their symbolic offset no longer relates to new accesses)."""
        if self.acovers:
            self.acovers = {
                base: entry for base, entry in self.acovers.items()
                if entry[0] != name and base != name}

    # -- checks --------------------------------------------------------------

    def _elem_size(self, node: A.Expr) -> int:
        qt = getattr(node, "ctype", None)
        if qt is None:
            return 8
        try:
            return qt.base.size(self.structs)
        except Exception:
            return 8

    def check(self, node: A.Expr, info, is_write: bool,
              base: str | None = None,
              anchor: tuple | None = None,
              idx_iv: Interval | None = None) -> None:
        """One runtime check firing at ``node``.  Mirrors
        ``checkelim._Walker.check`` with the extra interval-powered
        adjacency cover."""
        if info is None or not info.is_dynamic:
            return
        need = _WRITE if is_write else _READ
        key = info.lvalue_text
        if self.marking and not info.elide \
                and not info.lockset_refined and not info.ai_elide:
            covered = self.covers.get(key, 0) >= need
            if not covered and base is not None and anchor is not None:
                prev = self.acovers.get(base)
                if prev is not None and prev[0] == anchor[0] \
                        and prev[2] >= need:
                    delta = anchor[1].sub(prev[1])
                    esize = self._elem_size(node)
                    if delta.is_bounded and delta.lo >= 0 \
                            and delta.hi * esize < GRANULE:
                        covered = True
            if covered:
                info.ai_elide = True
                node.sharc_ai_elided = True  # type: ignore[attr-defined]
                if is_write:
                    self.stats.ai_elided_writes += 1
                else:
                    self.stats.ai_elided_reads += 1
        if self.covers.get(key, 0) < need:
            self.covers[key] = need
        if base is not None and anchor is not None:
            prev = self.acovers.get(base)
            strength = need
            if prev is not None and prev[0] == anchor[0] \
                    and prev[1] == anchor[1]:
                strength = max(need, prev[2])
            self.acovers[base] = (anchor[0], anchor[1], strength)
        # refutation bookkeeping: per-context index ranges on arrays
        if idx_iv is not None:
            lk = loc_key(node, self.global_names)
            if lk is not None:
                self._record_idx(lk, is_write, idx_iv)

    # -- expression evaluation ----------------------------------------------

    def eval(self, e) -> Interval:
        if e is None:
            return TOP
        cls = e.__class__
        if cls is A.IntLit or cls is A.CharLit:
            return const(e.value)
        if cls in (A.FloatLit, A.NullLit, A.StrLit):
            return TOP
        if cls is A.SizeofExpr:
            return TOP  # operand never evaluated at runtime
        if cls is A.Ident:
            self.check(e, getattr(e, "sharc_read", None), False)
            if e.name in self.global_names:
                return self._shared_read(("global", e.name))
            iv = self.env.get(e.name)
            return TOP if iv is None else iv
        if cls is A.Member:
            self._walk_lvalue(e)
            lk = loc_key(e, self.global_names)
            self.check(e, getattr(e, "sharc_read", None), False,
                       base=_base_text(e), anchor=("", const(0)))
            return self._shared_read(lk) if lk is not None else TOP
        if cls is A.Index:
            base, anchor, idx_iv = self._index_parts(e)
            lk = loc_key(e, self.global_names)
            self.check(e, getattr(e, "sharc_read", None), False,
                       base=base, anchor=anchor, idx_iv=idx_iv)
            return self._shared_read(lk) if lk is not None else TOP
        if cls is A.Unop:
            if e.op == "&":
                self._walk_lvalue(e.operand)
                return TOP
            if e.op == "*":
                self.eval(e.operand)
                self.check(e, getattr(e, "sharc_read", None), False)
                return TOP
            if e.op in ("++", "--"):
                op = e.operand
                self._walk_lvalue(op)
                iv = self._lvalue_read(op)
                self.check(op, getattr(op, "sharc_read", None), False,
                           *self._access_parts(op))
                delta = const(1) if e.op == "++" else const(-1)
                new = iv.add(delta)
                self._store(op, new)
                return iv if e.postfix else new
            iv = self.eval(e.operand)
            if e.op == "-":
                return iv.neg()
            if e.op == "!":
                return Interval(0, 1)
            return TOP
        if cls is A.Binop:
            return self._binop(e)
        if cls is A.Assign:
            return self._assign(e)
        if cls is A.Call:
            return self._call(e)
        if cls is A.SCastExpr:
            self._walk_lvalue(e.expr)
            self.check(e.expr, getattr(e.expr, "sharc_read", None),
                       False)
            self.check(e, getattr(e, "sharc_src_write", None), True)
            # sharing casts reset the object's granule bitmaps
            self._kill_covers()
            return TOP
        if cls is A.CastExpr:
            return self.eval(e.expr)
        if cls is A.CondExpr:
            self.eval(e.cond)
            snap = self._snap()
            self._refine(e.cond, True)
            then_iv = self.eval(e.then)
            then_snap = self._snap()
            self._restore(snap)
            self._refine(e.cond, False)
            other_iv = self.eval(e.other)
            self._merge_from(then_snap, self._snap())
            return then_iv.join(other_iv)
        if cls is A.CommaExpr:
            iv = TOP
            for part in e.parts:
                iv = self.eval(part)
            return iv
        return TOP

    def _binop(self, e: A.Binop) -> Interval:
        op = e.op
        if op in ("&&", "||"):
            self.eval(e.lhs)
            snap = self._snap()
            if op == "&&":
                self._refine(e.lhs, True)
            else:
                self._refine(e.lhs, False)
            self.eval(e.rhs)
            self._merge_from(snap, self._snap())
            return Interval(0, 1)
        a = self.eval(e.lhs)
        b = self.eval(e.rhs)
        if op == "+":
            return a.add(b)
        if op == "-":
            return a.sub(b)
        if op == "*":
            return a.mul(b)
        if op == "%":
            return a.mod(b)
        if op == "/":
            if b.is_const and b.lo != 0 and a.is_bounded:
                lo, hi = a.lo, a.hi
                cands = [int(lo / b.lo), int(hi / b.lo)]
                return Interval(min(cands), max(cands))
            return TOP
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return Interval(0, 1)
        return TOP

    def _assign(self, e: A.Assign) -> Interval:
        lhs = e.lhs
        lhs_qt = getattr(lhs, "ctype", None)
        if e.op == "=" and lhs_qt is not None and lhs_qt.is_struct:
            self._walk_lvalue(e.rhs)
            self._walk_lvalue(lhs)
            self.check(lhs, getattr(lhs, "sharc_write", None), True)
            self.check(e.rhs, getattr(e.rhs, "sharc_read", None), False)
            return TOP
        rhs_iv = self.eval(e.rhs)
        self._walk_lvalue(lhs)
        base, anchor, idx_iv = self._access_parts(lhs)
        if e.op != "=":
            self.check(lhs, getattr(lhs, "sharc_read", None), False,
                       base=base, anchor=anchor, idx_iv=idx_iv)
            cur = self._lvalue_read(lhs)
            op = e.op[0]
            if op == "+":
                rhs_iv = cur.add(rhs_iv)
            elif op == "-":
                rhs_iv = cur.sub(rhs_iv)
            elif op == "*":
                rhs_iv = cur.mul(rhs_iv)
            else:
                rhs_iv = TOP
        self.check(lhs, getattr(lhs, "sharc_write", None), True,
                   base=base, anchor=anchor, idx_iv=idx_iv)
        self._store(lhs, rhs_iv)
        return rhs_iv

    # -- lvalue plumbing -----------------------------------------------------

    def _walk_lvalue(self, e: A.Expr) -> None:
        """Address computation only (mirrors checkelim.lvalue)."""
        cls = e.__class__
        if cls is A.Ident:
            return
        if cls is A.Unop and e.op == "*":
            self.eval(e.operand)
            return
        if cls is A.Member:
            if e.arrow:
                self.eval(e.obj)
            else:
                self._walk_lvalue(e.obj)
            return
        if cls is A.Index:
            if getattr(e, "sharc_on_array", False):
                self._walk_lvalue(e.arr)
            else:
                self.eval(e.arr)
            self.eval(e.idx)
            return

    def _quiet_eval(self, e) -> Interval:
        """Evaluate for the *value* only: no checks, no cover updates
        (the expression was already walked)."""
        cls = e.__class__
        if cls is A.IntLit or cls is A.CharLit:
            return const(e.value)
        if cls is A.Ident:
            if e.name in self.global_names:
                return self._shared_read(("global", e.name))
            iv = self.env.get(e.name)
            return TOP if iv is None else iv
        if cls is A.Unop and e.op == "-":
            return self._quiet_eval(e.operand).neg()
        if cls is A.Binop and e.op in ("+", "-", "*", "%"):
            a = self._quiet_eval(e.lhs)
            b = self._quiet_eval(e.rhs)
            return {"+": a.add, "-": a.sub, "*": a.mul,
                    "%": a.mod}[e.op](b)
        if cls is A.CastExpr:
            return self._quiet_eval(e.expr)
        return TOP

    def _index_parts(self, e: A.Index) -> tuple:
        """Walk an Index node's address computation and return
        ``(base text, anchor decomposition, index interval)``."""
        self._walk_lvalue(e)
        base = _base_text(e.arr)
        anchor = _anchor_of(e.idx, self._quiet_eval)
        idx_iv = self._quiet_eval(e.idx)
        return base, anchor, idx_iv

    def _access_parts(self, lhs: A.Expr) -> tuple:
        cls = lhs.__class__
        if cls is A.Index:
            base = _base_text(lhs.arr)
            return (base, _anchor_of(lhs.idx, self._quiet_eval),
                    self._quiet_eval(lhs.idx))
        if cls is A.Member:
            return (_base_text(lhs), ("", const(0)), None)
        return (None, None, None)

    def _lvalue_read(self, lhs: A.Expr) -> Interval:
        cls = lhs.__class__
        if cls is A.Ident:
            if lhs.name in self.global_names:
                return self._shared_read(("global", lhs.name))
            iv = self.env.get(lhs.name)
            return TOP if iv is None else iv
        lk = loc_key(lhs, self.global_names)
        if lk is not None:
            return self._shared_read(lk)
        return TOP

    def _store(self, lhs: A.Expr, iv: Interval) -> None:
        cls = lhs.__class__
        if cls is A.Ident:
            if lhs.name in self.global_names:
                self._shared_write(("global", lhs.name), iv)
            else:
                self.env[lhs.name] = iv
                self._invalidate_anchor(lhs.name)
            return
        lk = loc_key(lhs, self.global_names)
        if lk is not None:
            self._shared_write(lk, iv)

    # -- calls ---------------------------------------------------------------

    def _call(self, e: A.Call) -> Interval:
        if e.callee.__class__ is not A.Ident:
            self.eval(e.callee)
            for arg in e.args:
                self.eval(arg)
            self._kill_covers()
            return TOP
        name = e.callee.name
        arg_ivs = [self.eval(arg) for arg in e.args]
        if name in SPAWNS:
            # The spawned root runs in its own context; the spawn
            # itself is a scheduling event.
            self._kill_covers()
            return TOP
        func = self.defined.get(name)
        if func is None:
            if _call_is_dirty(e, self.defined, set()):
                self._kill_covers()
            return TOP
        # defined function
        penv = self.param_envs.setdefault(name, {})
        for pname, iv in zip(func.param_names, arg_ivs):
            prev = penv.get(pname)
            penv[pname] = iv if prev is None else prev.join(iv)
        if self.inline and name not in self.call_stack \
                and self.depth < _INLINE_DEPTH:
            return self._inline_call(func, arg_ivs)
        if not self.check_free.get(name, False):
            self._kill_covers()
        return self.ret_ivs.get(name, TOP)

    def _inline_call(self, func: A.FuncDef, arg_ivs: list) -> Interval:
        saved_env = self.env
        saved_ret = self.cur_ret
        self.env = {pname: iv for pname, iv
                    in zip(func.param_names, arg_ivs)}
        self.cur_ret = None
        self.call_stack.append(func.name)
        self.depth += 1
        try:
            self.stmt(func.body)
        finally:
            self.depth -= 1
            self.call_stack.pop()
            ret = self.cur_ret
            self.env = saved_env
            self.cur_ret = saved_ret
        return ret if ret is not None else TOP

    # -- guard refinement ----------------------------------------------------

    def _refine(self, cond, truth: bool) -> None:
        """Narrow the environment by assuming ``cond`` is ``truth``.
        Handles the comparison shapes mini-C loops actually use."""
        if cond is None:
            return
        cls = cond.__class__
        if cls is A.Unop and cond.op == "!":
            self._refine(cond.operand, not truth)
            return
        if cls is not A.Binop:
            return
        op = cond.op
        if op == "&&" and truth:
            self._refine(cond.lhs, True)
            self._refine(cond.rhs, True)
            return
        if op == "||" and not truth:
            self._refine(cond.lhs, False)
            self._refine(cond.rhs, False)
            return
        if op not in ("<", ">", "<=", ">=", "==", "!="):
            return
        if not truth:
            op = {"<": ">=", ">": "<=", "<=": ">", ">=": "<",
                  "==": "!=", "!=": "=="}[op]
        self._refine_cmp(cond.lhs, op, cond.rhs)
        flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=",
                   "==": "==", "!=": "!="}[op]
        self._refine_cmp(cond.rhs, flipped, cond.lhs)

    def _refine_cmp(self, lhs, op: str, rhs) -> None:
        if lhs.__class__ is not A.Ident \
                or lhs.name in self.global_names:
            return
        cur = self.env.get(lhs.name)
        if cur is None:
            cur = TOP
        bound = self._quiet_eval(rhs)
        new = None
        if op == "<" and bound.hi != D.INF:
            new = cur.below(bound.hi, strict=True)
        elif op == "<=" and bound.hi != D.INF:
            new = cur.below(bound.hi, strict=False)
        elif op == ">" and bound.lo != -D.INF:
            new = cur.above(bound.lo, strict=True)
        elif op == ">=" and bound.lo != -D.INF:
            new = cur.above(bound.lo, strict=False)
        elif op == "==":
            met = cur.meet(bound)
            new = met
        elif op == "!=":
            return
        if new is not None:
            self.env[lhs.name] = new

    # -- statements ----------------------------------------------------------

    def stmt(self, s) -> None:
        if s is None:
            return
        cls = s.__class__
        if cls is A.Compound:
            for sub in s.stmts:
                self.stmt(sub)
            return
        if cls is A.ExprStmt:
            self.eval(s.expr)
            return
        if cls is A.DeclStmt:
            for d in s.decls:
                if d.init is not None:
                    iv = self.eval(d.init)
                    self.env[d.name] = iv
                    self._invalidate_anchor(d.name)
            return
        if cls is A.If:
            self.eval(s.cond)
            snap = self._snap()
            self._refine(s.cond, True)
            self.stmt(s.then)
            then_snap = self._snap()
            self._restore(snap)
            self._refine(s.cond, False)
            if s.other is not None:
                self.stmt(s.other)
            self._merge_from(then_snap, self._snap())
            return
        if cls in (A.While, A.DoWhile, A.For):
            self._loop(s, cls)
            return
        if cls is A.Return:
            if s.value is not None:
                iv = self.eval(s.value)
            else:
                iv = TOP
            self.cur_ret = iv if self.cur_ret is None \
                else self.cur_ret.join(iv)
            return
        if cls is A.Break:
            if self._breaks:
                self._breaks[-1].append(self._snap())
                self.covers = {_UNREACH: _WRITE}
                self.acovers = {}
            return
        if cls is A.Continue:
            if self._continues:
                self._continues[-1].append(self._snap())
                self.covers = {_UNREACH: _WRITE}
                self.acovers = {}
            return

    # -- loops ---------------------------------------------------------------

    def _loop(self, s, cls) -> None:
        is_for = cls is A.For
        if is_for:
            if isinstance(s.init, A.DeclStmt):
                self.stmt(s.init)
            elif s.init is not None:
                self.eval(s.init)
        cond = getattr(s, "cond", None)
        # 1. value fixpoint at the loop head (marking suppressed so
        #    unstable iterates cannot leak into the mark decisions)
        saved_marking = self.marking
        self.marking = False
        pre = self._snap()
        if cond is not None and cls is not A.DoWhile:
            self.eval(cond)
        head = dict(self.env)
        for it in range(_LOOP_ITERS):
            self.env = dict(head)
            if cond is not None:
                self._refine(cond, True)
            self._continues.append([])
            self._breaks.append([])
            self.stmt(s.body)
            for snap in self._continues.pop():
                self.env = D.join_env(self.env, snap[0]) \
                    if not self.covers.get(_UNREACH) else dict(snap[0])
                self.covers.pop(_UNREACH, None)
            self._breaks.pop()
            if is_for and s.step is not None:
                self.eval(s.step)
            if cond is not None:
                self.eval(cond)
            new_head = D.join_env(head, self.env)
            if it >= 1:
                new_head = D.widen_env(head, new_head)
            if D.env_equal(new_head, head):
                break
            head = new_head
        self.marking = saved_marking
        # 2. marking double-pass from the stabilised head (covers carry
        #    around the back-edge, continue edges joined like the body's
        #    normal exit — the fixed checkelim semantics)
        self._restore(pre)
        self.env = dict(head)
        exits = []
        if cond is not None and cls is not A.DoWhile:
            exits.append((dict(self.covers), dict(self.acovers)))
        break_envs = []
        for _ in range(2):
            self.env = dict(head)
            if cond is not None:
                self._refine(cond, True)
            self._continues.append([])
            self._breaks.append([])
            self.stmt(s.body)
            cont_snaps = self._continues.pop()
            break_snaps = self._breaks.pop()
            for snap in cont_snaps:
                self._merge_from(self._snap(), snap)
            if is_for and s.step is not None:
                self.eval(s.step)
            if cond is not None:
                self.eval(cond)
            if break_snaps:
                exits = None  # break exits mid-iteration: clear below
                break_envs = [snap[0] for snap in break_snaps]
            if exits is not None:
                exits.append((dict(self.covers), dict(self.acovers)))
        if self.marking:
            self._mark_ranges(s.body, s.step if is_for else None)
        # 3. post-loop state: head refined by the exit condition, joined
        #    with every break edge's environment
        self.env = dict(head)
        if cond is not None:
            self._refine(cond, False)
        for benv in break_envs:
            self.env = D.join_env(self.env, benv)
        if exits is None:
            self._kill_covers()
        else:
            covers, acovers = exits[0]
            for cov_b, ac_b in exits[1:]:
                covers = {k: min(v, cov_b.get(k, 0))
                          for k, v in covers.items() if cov_b.get(k, 0)}
                merged = {}
                for bse, (anch, off, strg) in acovers.items():
                    other = ac_b.get(bse)
                    if other is not None and other[0] == anch:
                        merged[bse] = (anch, off.join(other[1]),
                                       min(strg, other[2]))
                acovers = merged
            covers.pop(_UNREACH, None)
            self.covers, self.acovers = covers, acovers

    def _mark_ranges(self, body, step) -> None:
        """AI range-walk marking: like ``checkelim._mark_ranges`` but
        calls to proven check-free functions are allowed in the body
        (the range APIs are semantically identical per access, so this
        is pure routing)."""
        exprs = list(A.all_exprs(body))
        if step is not None:
            exprs.extend(A.walk_expr(step))
        stepped = set()
        for e in exprs:
            cls = e.__class__
            if cls is A.SCastExpr:
                return
            if cls is A.Call:
                if e.callee.__class__ is not A.Ident \
                        or not self.check_free.get(e.callee.name, False):
                    return
            elif cls is A.Unop and e.op in ("++", "--") \
                    and e.operand.__class__ is A.Ident:
                stepped.add(e.operand.name)
            elif cls is A.Assign and e.lhs.__class__ is A.Ident:
                if e.op in ("+=", "-="):
                    stepped.add(e.lhs.name)
                elif e.op == "=" and e.rhs.__class__ is A.Binop \
                        and e.rhs.op in ("+", "-") \
                        and e.lhs.name in {sub.name
                                           for sub in A.walk_expr(e.rhs)
                                           if sub.__class__ is A.Ident}:
                    stepped.add(e.lhs.name)
        if not stepped:
            return
        for e in exprs:
            if e.__class__ is not A.Index:
                continue
            idents = {sub.name for sub in A.walk_expr(e.idx)
                      if sub.__class__ is A.Ident}
            if not (idents & stepped):
                continue
            for attr, is_write in (("sharc_read", False),
                                   ("sharc_write", True)):
                info = getattr(e, attr, None)
                if info is None or not info.is_dynamic \
                        or info.range_walk or info.ai_range:
                    continue
                info.ai_range = True
                e.sharc_ai_range = True  # type: ignore[attr-defined]
                if is_write:
                    self.stats.ai_range_writes += 1
                else:
                    self.stats.ai_range_reads += 1


#: sentinel cover key marking a dead (post-break/continue) path; never
#: collides with an lvalue text
_UNREACH = "\0unreachable"


# -- driver ------------------------------------------------------------------

def analyze_absint(program: A.Program, seeds: SeedInfo,
                   lockset_result: LocksetResult | None = None,
                   structs=None) -> AbsintResult:
    """Runs the thread-modular interval analysis and writes the
    ``ai_elide`` / ``ai_range`` marks back onto the typechecker's
    :class:`AccessInfo` records in place."""
    result = AbsintResult()
    funcs = program.functions()
    if not funcs:
        return result
    an = _Analyzer(program, seeds, structs
                   if structs is not None else program.structs)
    result.check_free = an.check_free
    result.contexts = an.contexts
    if not an.contexts:
        return result

    def analyze_context(context: str, env: InterferenceEnv) -> None:
        an.context = context
        an.inter = env
        an.inline = False
        an.marking = False
        order = an.reachable(context)
        for _ in range(_PARAM_ROUNDS):
            for name in order:
                func = an.defined[name]
                an.env = dict(an.param_envs.get(name, {})) \
                    if name != context else {}
                an.covers = {}
                an.acovers = {}
                an.cur_ret = None
                an.stmt(func.body)
                prev = an.ret_ivs.get(name)
                cur = an.cur_ret if an.cur_ret is not None else TOP
                an.ret_ivs[name] = cur if prev is None \
                    else prev.join(cur)

    env, rounds = interference_fixpoint(
        an.contexts, analyze_context, an.initial_env())
    result.rounds = rounds
    result.interference = dict(env.env)

    # marking pass: one inlined walk per context over the stable env
    an.idx_ranges = {}  # keep only the stabilised final-round ranges
    env.writes = {}
    for context in an.contexts:
        an.context = context
        an.inter = env
        an.inline = True
        an.marking = True
        an.env = {}
        an.covers = {}
        an.acovers = {}
        an.cur_ret = None
        an.call_stack = [context]
        an.stmt(an.defined[context].body)
    result.stats = an.stats

    # refutation consumer: score the lockset pass's static races
    if lockset_result is not None:
        multi = lockset_result.multi_spawned
        for diag in lockset_result.races:
            result.verdicts.append(
                _score_race(diag, an.idx_ranges, an.contexts, multi))
    return result


def _score_race(diag, idx_ranges: dict, contexts: tuple,
                multi_spawned: frozenset) -> RaceVerdict:
    """Interval-refute a static race when every pair of contexts
    provably indexes disjoint, bounded slices of the location."""
    key = getattr(diag, "race_key_tuple", None)
    text = diag.message_key.split("@", 1)[0]
    line = int(diag.message_key.rsplit("@", 1)[1])
    if key is None:
        if "." in text:
            sname, fname = text.split(".", 1)
            key = ("field", sname, fname)
        else:
            key = ("global", text)
    per_ctx: dict = {}
    for ctx in contexts:
        w = idx_ranges.get((ctx, key, "w"))
        r = idx_ranges.get((ctx, key, "r"))
        if w is None and r is None:
            continue
        per_ctx[ctx] = (w, r)
    verdict = RaceVerdict(key, line, refuted=False)
    touching = sorted(per_ctx)
    if len(touching) < 2:
        return verdict
    spans = {}
    for ctx, (w, r) in per_ctx.items():
        span = w if r is None else (r if w is None else w.join(r))
        if not span.is_bounded:
            return verdict
        spans[ctx] = span
        if ctx in multi_spawned and w is not None:
            # two instances of the same root share a context: their
            # intervals cannot be told apart, so never refute
            return verdict
    for i, c1 in enumerate(touching):
        w1 = per_ctx[c1][0]
        for c2 in touching[i + 1:]:
            w2 = per_ctx[c2][0]
            if w1 is not None and not w1.disjoint(spans[c2]):
                return verdict
            if w2 is not None and not w2.disjoint(spans[c1]):
                return verdict
    verdict.refuted = True
    verdict.witness = {ctx: D.encode(span)
                       for ctx, span in sorted(spans.items())}
    return verdict
