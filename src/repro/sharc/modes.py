"""Sharing modes — the qualifier vocabulary of Section 2.

A type in SharC carries one of five user-visible sharing modes:

``private``
    Owned by one thread, only that thread may access it (checked statically
    via the sharing analysis).
``readonly``
    Readable by any thread, writable only as a field of a *private* struct
    instance (the initialization exception of Section 2).
``locked(l)``
    Protected by the lock denoted by expression ``l``; a runtime check
    asserts the lock is held at each access.
``racy``
    Intentionally racy; no enforcement.
``dynamic``
    Checked at run time to be read-only or single-thread accessed
    (the n-readers-or-1-writer discipline).

Two additional modes are internal:

``dynamic_in``
    The paper's internal qualifier for function formals: accepts both
    ``private`` and ``dynamic`` actuals without forcing the actual to
    ``dynamic`` (Section 4.1).
``inherit``
    The struct-field polymorphism variable ``q`` of Figure 2: an
    unannotated outermost field qualifier resolves to the qualifier of the
    containing struct instance at each access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class ModeKind(enum.Enum):
    """The discriminator for :class:`Mode`."""

    PRIVATE = "private"
    READONLY = "readonly"
    LOCKED = "locked"
    RACY = "racy"
    DYNAMIC = "dynamic"
    # Internal modes (never written by users).
    DYNAMIC_IN = "dynamic_in"
    INHERIT = "inherit"

    @property
    def user_visible(self) -> bool:
        return self not in (ModeKind.DYNAMIC_IN, ModeKind.INHERIT)


@dataclass(frozen=True)
class Mode:
    """A sharing mode, possibly with a lock expression (for ``locked``).

    ``lock`` is the *rendered* lock expression (a string such as ``"mut"``
    or ``"nextS->mut"``); the type checker separately verifies that the
    expression is constant (built from unmodified locals and ``readonly``
    values) and resolves it to a lock l-value at instrumentation time.
    """

    kind: ModeKind
    lock: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is ModeKind.LOCKED and self.lock is None:
            raise ValueError("locked mode requires a lock expression")
        if self.kind is not ModeKind.LOCKED and self.lock is not None:
            raise ValueError(f"{self.kind.value} mode takes no lock")

    def __str__(self) -> str:
        if self.kind is ModeKind.LOCKED:
            return f"locked({self.lock})"
        return self.kind.value

    # -- convenience predicates ------------------------------------------

    @property
    def is_private(self) -> bool:
        return self.kind is ModeKind.PRIVATE

    @property
    def is_readonly(self) -> bool:
        return self.kind is ModeKind.READONLY

    @property
    def is_locked(self) -> bool:
        return self.kind is ModeKind.LOCKED

    @property
    def is_racy(self) -> bool:
        return self.kind is ModeKind.RACY

    @property
    def is_dynamic(self) -> bool:
        return self.kind is ModeKind.DYNAMIC

    @property
    def is_inherit(self) -> bool:
        return self.kind is ModeKind.INHERIT

    @property
    def needs_runtime_check(self) -> bool:
        """True for modes whose accesses are guarded at run time."""
        return self.kind in (ModeKind.DYNAMIC, ModeKind.LOCKED)


# Singletons for the lock-free modes.
PRIVATE = Mode(ModeKind.PRIVATE)
READONLY = Mode(ModeKind.READONLY)
RACY = Mode(ModeKind.RACY)
DYNAMIC = Mode(ModeKind.DYNAMIC)
DYNAMIC_IN = Mode(ModeKind.DYNAMIC_IN)
INHERIT = Mode(ModeKind.INHERIT)


def locked(lock_expr: str) -> Mode:
    """Builds a ``locked(lock_expr)`` mode."""
    return Mode(ModeKind.LOCKED, lock_expr)


def modes_equal(a: Mode, b: Mode) -> bool:
    """Exact mode equality; ``locked`` modes compare their lock text."""
    return a == b


def assignable(target: Mode, source: Mode) -> bool:
    """Whether a value whose *cell* quality is ``source`` may be stored in a
    cell of quality ``target`` without a sharing cast, at the outermost
    level of the assigned type.

    At the outermost level the modes govern access to two *different*
    cells, so any combination of modes is fine — except that ``readonly``
    targets are rejected here because writability is a property of the
    target cell itself (checked separately by the write rules).  This
    helper exists mostly for symmetry with :func:`target_compatible`.
    """
    del source  # outermost assignment never constrains the source mode
    return not target.is_readonly or True  # writability handled elsewhere


def target_compatible(a: Mode, b: Mode) -> bool:
    """Whether two pointer *target* modes are interchangeable.

    Pointer targets are invariant: after ``p = q`` both names alias the same
    cell, so the declared target modes must agree exactly (Section 3.2
    forbids even casts below the first level).  ``dynamic_in`` accepts
    either ``private`` or ``dynamic`` (Section 4.1).
    """
    if a == b:
        return True
    for formal, actual in ((a, b), (b, a)):
        if formal.kind is ModeKind.DYNAMIC_IN and actual.kind in (
                ModeKind.PRIVATE, ModeKind.DYNAMIC, ModeKind.DYNAMIC_IN):
            return True
    return False


def scast_convertible(dst: Mode, src: Mode) -> bool:
    """Whether a sharing cast may convert target mode ``src`` to ``dst``.

    Any pair of modes may be converted by SCAST *at the first target level
    only* (the ``oneref`` check makes this sound); identical modes need no
    cast.  ``inherit`` must have been resolved before asking.
    """
    if src.is_inherit or dst.is_inherit:
        raise ValueError("scast_convertible needs resolved modes")
    return True


@dataclass(frozen=True)
class ModeSummary:
    """Per-program census of annotations — used to report Table 1's
    "Annots." column for our workload models."""

    counts: dict = field(default_factory=dict)

    @staticmethod
    def count(modes: list[Mode]) -> "ModeSummary":
        counts: dict[str, int] = {}
        for mode in modes:
            key = mode.kind.value
            counts[key] = counts.get(key, 0) + 1
        return ModeSummary(counts)

    @property
    def total(self) -> int:
        return sum(self.counts.values())
