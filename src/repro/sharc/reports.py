"""Conflict-report rendering, matching the paper's Section 2.1 format::

    read conflict(0x75324464):
     who(2) S->sdata @ pipeline_test.c: 15
     last(1) nextS->sdata @ pipeline_test.c: 27

A report names the address, the thread and l-value performing the newly
conflicting access, and the thread and l-value of the last recorded access
it conflicts with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import DiagKind, Loc


@dataclass(frozen=True)
class Access:
    """One recorded access for reporting purposes."""

    tid: int
    lvalue: str
    loc: Loc

    def render(self, label: str) -> str:
        return (f" {label}({self.tid}) {self.lvalue} @ "
                f"{self.loc.file}: {self.loc.line}")


@dataclass(frozen=True)
class Report:
    """One runtime violation."""

    kind: DiagKind
    addr: int
    who: Access
    last: Optional[Access] = None
    detail: str = ""

    def render(self) -> str:
        head = f"{self.kind.value}(0x{self.addr:08x}):"
        lines = [head, self.who.render("who")]
        if self.last is not None:
            lines.append(self.last.render("last"))
        if self.detail:
            lines.append(f" note: {self.detail}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def read_conflict(addr: int, who: Access, last: Access) -> Report:
    return Report(DiagKind.READ_CONFLICT, addr, who, last)


def write_conflict(addr: int, who: Access, last: Access) -> Report:
    return Report(DiagKind.WRITE_CONFLICT, addr, who, last)


def lock_not_held(addr: int, who: Access, lock_text: str) -> Report:
    return Report(DiagKind.LOCK_NOT_HELD, addr, who,
                  detail=f"required lock: {lock_text}")


def oneref_failed(addr: int, who: Access, count: int) -> Report:
    return Report(DiagKind.ONEREF_FAILED, addr, who,
                  detail=f"reference count is {count}, expected 1")
