"""Conflict-report rendering, matching the paper's Section 2.1 format::

    read conflict(0x75324464):
     who(2) S->sdata @ pipeline_test.c: 15
     last(1) nextS->sdata @ pipeline_test.c: 27

A report names the address, the thread and l-value performing the newly
conflicting access, and the thread and l-value of the last recorded access
it conflicts with.

When the run traced access provenance (:mod:`repro.obs`), a report also
carries the granule's recent access *history* — rendered as ``hist``
lines, newest first, each tagged with its read/write mode::

     hist(1) [w] nextS->sdata @ pipeline_test.c: 27
     hist(2) [r] S->sdata @ pipeline_test.c: 14

Reports round-trip through JSON (:meth:`Report.to_dict` /
:meth:`Report.from_dict`) so the JSONL trace exporter can embed them and
tools can reload them losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import DiagKind, Loc


@dataclass(frozen=True)
class Access:
    """One recorded access for reporting purposes.

    ``mode`` ("r"/"w") is only set on history entries; the paper's
    who/last lines carry no mode tag and render unchanged.
    """

    tid: int
    lvalue: str
    loc: Loc
    mode: str = ""

    def render(self, label: str) -> str:
        tag = f"[{self.mode}] " if self.mode else ""
        return (f" {label}({self.tid}) {tag}{self.lvalue} @ "
                f"{self.loc.file}: {self.loc.line}")

    def to_dict(self) -> dict:
        out = {"tid": self.tid, "lvalue": self.lvalue,
               "loc": {"file": self.loc.file, "line": self.loc.line,
                       "col": self.loc.col}}
        if self.mode:
            out["mode"] = self.mode
        return out

    @staticmethod
    def from_dict(data: dict) -> "Access":
        loc = data.get("loc") or {}
        return Access(int(data["tid"]), data["lvalue"],
                      Loc(loc.get("file", "<input>"),
                          int(loc.get("line", 0)), int(loc.get("col", 0))),
                      mode=data.get("mode", ""))


@dataclass(frozen=True)
class Report:
    """One runtime violation."""

    kind: DiagKind
    addr: int
    who: Access
    last: Optional[Access] = None
    detail: str = ""
    #: recent accesses to the conflicting granule(s), newest first —
    #: populated only when the run recorded access provenance
    history: tuple = ()

    def render(self) -> str:
        head = f"{self.kind.value}(0x{self.addr:08x}):"
        lines = [head, self.who.render("who")]
        if self.last is not None:
            lines.append(self.last.render("last"))
        for access in self.history:
            lines.append(access.render("hist"))
        if self.detail:
            lines.append(f" note: {self.detail}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def to_dict(self) -> dict:
        """A JSON-ready dict; :meth:`from_dict` inverts it exactly."""
        out: dict = {"kind": self.kind.value, "addr": self.addr,
                     "who": self.who.to_dict()}
        if self.last is not None:
            out["last"] = self.last.to_dict()
        if self.detail:
            out["detail"] = self.detail
        if self.history:
            out["history"] = [a.to_dict() for a in self.history]
        return out

    @staticmethod
    def from_dict(data: dict) -> "Report":
        """Inverse of :meth:`to_dict`.  ``kind`` is matched by enum
        *value* (the rendered name, including two-word kinds like
        ``"read conflict"``)."""
        return Report(
            kind=DiagKind(data["kind"]),
            addr=int(data["addr"]),
            who=Access.from_dict(data["who"]),
            last=(Access.from_dict(data["last"])
                  if data.get("last") is not None else None),
            detail=data.get("detail", ""),
            history=tuple(Access.from_dict(a)
                          for a in data.get("history", ())),
        )


def read_conflict(addr: int, who: Access, last: Access,
                  history: tuple = ()) -> Report:
    return Report(DiagKind.READ_CONFLICT, addr, who, last,
                  history=history)


def write_conflict(addr: int, who: Access, last: Access,
                   history: tuple = ()) -> Report:
    return Report(DiagKind.WRITE_CONFLICT, addr, who, last,
                  history=history)


def lock_not_held(addr: int, who: Access, lock_text: str,
                  history: tuple = ()) -> Report:
    return Report(DiagKind.LOCK_NOT_HELD, addr, who,
                  detail=f"required lock: {lock_text}", history=history)


def oneref_failed(addr: int, who: Access, count: int) -> Report:
    return Report(DiagKind.ONEREF_FAILED, addr, who,
                  detail=f"reference count is {count}, expected 1")
