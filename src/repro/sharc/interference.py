"""Thread interference environment for the abstract interpreter.

Miné's thread-modular scheme (PAPERS.md): each thread context is
analysed *as if sequential*, except that every read of a shared
location also observes the **interference environment** — the join of
every abstract value any *other* context may have written there.  The
engine iterates context analyses until the interference environment
stops changing; late rounds widen, so the fixpoint terminates on any
program.

Shared locations use the same abstract-location keys as the lockset
pass (:func:`repro.sharc.lockset.loc_key`): ``("global", g)`` for
globals and global arrays, ``("field", struct, field)`` for struct
members.  Values are :class:`repro.sharc.domains.Interval`.
"""

from __future__ import annotations

from repro.sharc.domains import Interval, env_equal, join_env, widen_env

#: interference rounds before widening kicks in
WIDEN_AFTER = 3
#: hard cap on interference rounds — with widening the env can only
#: grow a bounded number of times, so this is a backstop, not a limit
#: real programs hit
MAX_ROUNDS = 12


class InterferenceEnv:
    """``loc key -> Interval`` of every value any context may store."""

    def __init__(self, initial: dict | None = None) -> None:
        #: baseline: global initialiser values (main's pre-thread state)
        self.initial: dict = dict(initial or {})
        #: accumulated writes, per analysis context (function name)
        self.writes: dict = {}
        self.env: dict = dict(self.initial)

    def read(self, key) -> Interval | None:
        """The abstract value a shared read may observe; ``None`` means
        the location is never written and has no known initialiser
        (treat as TOP at the caller)."""
        return self.env.get(key)

    def record(self, context: str, key, iv: Interval) -> None:
        ctx = self.writes.setdefault(context, {})
        prev = ctx.get(key)
        ctx[key] = iv if prev is None else prev.join(iv)

    def merged(self) -> dict:
        """initial ⊔ every context's writes."""
        out = dict(self.initial)
        for ctx in self.writes.values():
            for key, iv in ctx.items():
                prev = out.get(key)
                out[key] = iv if prev is None else prev.join(iv)
        return out


def interference_fixpoint(contexts, analyze_one,
                          initial: dict | None = None):
    """Drive ``analyze_one(context, env)`` over every context until the
    interference environment stabilises.

    ``analyze_one`` must *record* shared writes into the passed
    :class:`InterferenceEnv` and read shared state through it.  Returns
    ``(env, rounds)``; termination is guaranteed by widening after
    :data:`WIDEN_AFTER` rounds plus the :data:`MAX_ROUNDS` backstop.
    """
    env = InterferenceEnv(initial)
    rounds = 0
    for rounds in range(1, MAX_ROUNDS + 1):
        env.writes = {}
        for context in contexts:
            analyze_one(context, env)
        new = env.merged()
        if env_equal(new, env.env):
            break
        if rounds >= WIDEN_AFTER:
            new = widen_env(env.env, new)
            if env_equal(new, env.env):
                env.env = new
                break
        env.env = new
    return env, rounds


__all__ = ["InterferenceEnv", "interference_fixpoint", "join_env",
           "WIDEN_AFTER", "MAX_ROUNDS"]
