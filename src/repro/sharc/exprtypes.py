"""Shared expression-type computation for inference and type checking.

Both the constraint-generation phase (Section 4.1) and the static checking
phase (Figure 4, generalized) need the qualified type of every expression.
:class:`TypeWalker` computes these *sharing declared type objects*: the type
of a variable reference is the declaration's own :class:`QualType`, so
qualifier variables attached during inference line up across uses, and the
final inferred modes are visible to the checking phase without copying.

Struct qualifier polymorphism (the ``q`` of Figure 2) is resolved here: a
field access whose field has the internal ``inherit`` mode produces a
wrapper type sharing the *instance's* mode/qualifier variable.

Subclasses override the ``on_*`` hooks:

- :class:`repro.sharc.inference.ConstraintWalker` emits constraint edges,
- :class:`repro.sharc.typecheck.CheckWalker` validates modes and attaches
  runtime-check metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import DiagKind, DiagnosticSink, Loc
from repro.cfront import cast as A
from repro.cfront.ctypes import (
    ArrayType, FuncType, Prim, PtrType, QualType, StructTable, StructType,
    make_prim,
)
from repro.cfront.pretty import pretty_expr
from repro.sharc import modes as M
from repro.sharc.defaults import collect_local_decls
from repro.sharc.libc import BUILTINS, builtin_type, is_builtin

INT = make_prim("int", M.PRIVATE)
LONG = make_prim("long", M.PRIVATE)
ULONG = make_prim("unsigned long", M.PRIVATE)
DOUBLE = make_prim("double", M.PRIVATE)
VOID = make_prim("void", M.PRIVATE)

#: Type given to NULL; never linked by constraints.
NULL_TYPE = QualType(PtrType(QualType(Prim("void"), M.PRIVATE)), M.PRIVATE)

#: Type of string literals: the characters are readonly.
STR_TYPE = QualType(PtrType(QualType(Prim("char"), M.READONLY)), M.PRIVATE)


@dataclass
class LValue:
    """The resolved cell an l-value expression denotes.

    ``qt`` is the cell's qualified type position (aliasing the declaration
    or struct table, or an inherit-resolving wrapper).  For member accesses
    ``container_mode``/``container_qt`` describe the struct instance (used
    by the readonly-write rule) and ``obj_expr`` is the instance expression
    (used to resolve sibling-field lock names).
    """

    qt: QualType
    node: A.Expr
    kind: str  # "var" | "deref" | "member" | "index"
    name: str = ""
    is_local: bool = False
    container_qt: Optional[QualType] = None
    obj_expr: Optional[A.Expr] = None
    struct_name: Optional[str] = None

    @property
    def text(self) -> str:
        return pretty_expr(self.node)


def _inherit_wrapper(field_qt: QualType, instance: QualType) -> QualType:
    """A view of ``field_qt`` whose outermost mode is the instance's."""
    wrapper = QualType(field_qt.base, instance.mode, instance.explicit,
                       loc=field_qt.loc)
    wrapper.qvar = instance.qvar
    return wrapper


def effective_field_type(field_qt: QualType,
                         instance: QualType) -> QualType:
    """Resolves struct qualifier polymorphism for one field access."""
    if field_qt.mode is not None and field_qt.mode.is_inherit:
        return _inherit_wrapper(field_qt, instance)
    return field_qt


class TypeWalker:
    """Walks every function body, computing expression types.

    The walker is flow-insensitive: statement order does not matter, and
    locals are in scope for the whole function (the workloads use unique
    local names per function, as does virtually all real C after CIL
    normalization).
    """

    def __init__(self, program: A.Program,
                 sink: Optional[DiagnosticSink] = None) -> None:
        self.program = program
        self.structs: StructTable = program.structs
        # Note: DiagnosticSink defines __len__, so an empty sink is falsy —
        # an identity check is required here.
        self.sink = sink if sink is not None else DiagnosticSink()
        self.globals: dict[str, QualType] = {}
        self.functions: dict[str, A.FuncDef] = {}
        for decl in program.decls:
            if isinstance(decl, A.VarDecl):
                self.globals[decl.name] = decl.qtype
            elif isinstance(decl, A.FuncDef):
                if decl.name not in self.functions or decl.body is not None:
                    self.functions[decl.name] = decl
        self.locals: dict[str, QualType] = {}
        self.current_func: Optional[A.FuncDef] = None

    # -- overridable hooks ---------------------------------------------------

    def on_read(self, lv: LValue, node: A.Expr) -> None:
        """An l-value is converted to an r-value (cell read)."""

    def on_write(self, lv: LValue, node: A.Expr) -> None:
        """A cell is written (assignment target, ++/--)."""

    def on_assign(self, lhs_t: QualType, rhs_t: QualType,
                  rhs: Optional[A.Expr], node: A.Expr | A.VarDecl) -> None:
        """A value of type ``rhs_t`` flows into a cell of type ``lhs_t``."""

    def on_call(self, func: Optional[A.FuncDef], ftype: FuncType,
                builtin_name: Optional[str], node: A.Call,
                arg_types: list[Optional[QualType]]) -> None:
        """A call with resolved callee type and argument types."""

    def on_scast(self, to: QualType, src_t: Optional[QualType],
                 node: A.SCastExpr) -> None:
        """A sharing cast."""

    def on_cast(self, to: QualType, src_t: Optional[QualType],
                node: A.CastExpr) -> None:
        """A plain C cast."""

    def on_return(self, value_t: Optional[QualType],
                  node: A.Return) -> None:
        """A return statement in the current function."""

    def on_func_ref(self, func: A.FuncDef, node: A.Expr) -> None:
        """A function name used as a value (address taken)."""

    # -- program traversal -----------------------------------------------------

    def walk_program(self) -> None:
        for decl in self.program.decls:
            if isinstance(decl, A.VarDecl) and decl.init is not None:
                init_t = self.type_of(decl.init)
                self.on_assign(decl.qtype, init_t, decl.init, decl)
        for func in self.program.functions():
            self.walk_func(func)

    def walk_func(self, func: A.FuncDef) -> None:
        self.current_func = func
        ftype = func.qtype.base
        assert isinstance(ftype, FuncType)
        self.locals = {}
        for name, ptype in zip(func.param_names, ftype.params):
            self.locals[name] = ptype
        for decl in collect_local_decls(func):
            self.locals[decl.name] = decl.qtype
        if func.body is not None:
            self.walk_stmt(func.body)
        self.current_func = None
        self.locals = {}

    def walk_stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.Compound):
            for sub in s.stmts:
                self.walk_stmt(sub)
        elif isinstance(s, A.DeclStmt):
            for d in s.decls:
                if d.init is not None:
                    init_t = self.type_of(d.init)
                    self.on_assign(d.qtype, init_t, d.init, d)
        elif isinstance(s, A.ExprStmt):
            self.type_of(s.expr)
        elif isinstance(s, A.If):
            self.type_of(s.cond)
            self.walk_stmt(s.then)
            if s.other is not None:
                self.walk_stmt(s.other)
        elif isinstance(s, A.While):
            self.type_of(s.cond)
            self.walk_stmt(s.body)
        elif isinstance(s, A.DoWhile):
            self.walk_stmt(s.body)
            self.type_of(s.cond)
        elif isinstance(s, A.For):
            if isinstance(s.init, A.DeclStmt):
                self.walk_stmt(s.init)
            elif s.init is not None:
                self.type_of(s.init)
            if s.cond is not None:
                self.type_of(s.cond)
            if s.step is not None:
                self.type_of(s.step)
            self.walk_stmt(s.body)
        elif isinstance(s, A.Return):
            value_t = self.type_of(s.value) if s.value is not None else None
            self.on_return(value_t, s)
        # Break/Continue/empty: nothing to do.

    # -- l-values ---------------------------------------------------------------

    def lvalue_of(self, e: A.Expr) -> Optional[LValue]:
        """Resolves an l-value expression to its cell, or None if ``e`` is
        not an l-value (reported by subclasses where it matters)."""
        if isinstance(e, A.Ident):
            if e.name in self.locals:
                return LValue(self.locals[e.name], e, "var", e.name,
                              is_local=True)
            if e.name in self.globals:
                return LValue(self.globals[e.name], e, "var", e.name)
            return None
        if isinstance(e, A.Unop) and e.op == "*":
            ptr_t = self.type_of(e.operand)
            if ptr_t is None or not (ptr_t.is_pointer or ptr_t.is_array):
                return None
            return LValue(ptr_t.pointee(), e, "deref")
        if isinstance(e, A.Member):
            if e.arrow:
                obj_t = self.type_of(e.obj)
                if obj_t is None or not obj_t.is_pointer:
                    return None
                instance = obj_t.base.target
            else:
                obj_lv = self.lvalue_of(e.obj)
                if obj_lv is None:
                    return None
                instance = obj_lv.qt
            base = instance.base
            if isinstance(base, ArrayType):
                base = base.elem.base
            if not isinstance(base, StructType):
                return None
            if not self.structs.is_defined(base.name):
                return None
            try:
                field_qt = dict(self.structs.fields(base.name))[e.name]
            except KeyError:
                self.sink.error(
                    DiagKind.PARSE,
                    f"struct {base.name} has no field {e.name!r}", e.loc)
                return None
            eff = effective_field_type(field_qt, instance)
            # Layout metadata for the interpreter.
            layout = self.structs.layout(base.name)
            e.sharc_struct = base.name  # type: ignore[attr-defined]
            e.sharc_offset = layout.field(e.name).offset  # type: ignore[attr-defined]
            return LValue(eff, e, "member", e.name,
                          container_qt=instance, obj_expr=e.obj,
                          struct_name=base.name)
        if isinstance(e, A.Index):
            arr_lv = self.lvalue_of(e.arr)
            self.type_of(e.idx)
            if arr_lv is not None and arr_lv.qt.is_array:
                # Arrays are one object of the base type (Section 4.1):
                # the element inherits the array cell's mode.
                elem = arr_lv.qt.base.elem
                e.sharc_elem_size = elem.base.size(self.structs)  # type: ignore[attr-defined]
                e.sharc_on_array = True  # type: ignore[attr-defined]
                wrapper = QualType(elem.base, arr_lv.qt.mode,
                                   arr_lv.qt.explicit, loc=elem.loc)
                wrapper.qvar = arr_lv.qt.qvar
                return LValue(wrapper, e, "index",
                              container_qt=arr_lv.container_qt,
                              obj_expr=arr_lv.obj_expr,
                              struct_name=arr_lv.struct_name)
            arr_t = self.type_of(e.arr)
            if arr_t is None or not (arr_t.is_pointer or arr_t.is_array):
                return None
            pointee = arr_t.pointee()
            e.sharc_elem_size = pointee.base.size(self.structs)  # type: ignore[attr-defined]
            e.sharc_on_array = False  # type: ignore[attr-defined]
            return LValue(pointee, e, "index")
        return None

    # -- expressions -----------------------------------------------------------

    def type_of(self, e: A.Expr) -> Optional[QualType]:
        """Computes (and caches on the node) the r-value type of ``e``."""
        t = self._type_of(e)
        e.ctype = t
        return t

    def _type_of(self, e: A.Expr) -> Optional[QualType]:
        if isinstance(e, (A.IntLit, A.CharLit)):
            return INT
        if isinstance(e, A.FloatLit):
            return DOUBLE
        if isinstance(e, A.StrLit):
            # String literals are mode-polymorphic per occurrence: the
            # characters adopt whatever mode the context requires
            # (readonly in annotated code, dynamic/private elsewhere).
            # The cells are written once while interning, so any mode is
            # dynamically safe for the read-only uses C allows.
            t = getattr(e, "str_type", None)
            if t is None:
                t = QualType(PtrType(QualType(Prim("char"), None)),
                             M.PRIVATE)
                e.str_type = t  # type: ignore[attr-defined]
            return t
        if isinstance(e, A.NullLit):
            return NULL_TYPE
        if isinstance(e, A.SizeofExpr):
            if e.of_expr is not None:
                self.type_of(e.of_expr)
            return ULONG
        if isinstance(e, A.Ident):
            if e.name not in self.locals and e.name in self.functions:
                func = self.functions[e.name]
                self.on_func_ref(func, e)
                return QualType(PtrType(func.qtype), M.PRIVATE)
            if e.name not in self.locals and is_builtin(e.name):
                return QualType(PtrType(builtin_type(e.name)), M.PRIVATE)
            lv = self.lvalue_of(e)
            if lv is None:
                self.sink.error(DiagKind.PARSE,
                                f"use of undeclared name {e.name!r}", e.loc)
                return None
            if lv.qt.is_array:
                return lv.qt  # arrays decay without a cell read
            self.on_read(lv, e)
            return lv.qt
        if isinstance(e, (A.Member, A.Index)) or (
                isinstance(e, A.Unop) and e.op == "*"):
            lv = self.lvalue_of(e)
            if lv is None:
                self.sink.error(DiagKind.PARSE,
                                f"invalid l-value {pretty_expr(e)!r}", e.loc)
                return None
            if lv.qt.is_array:
                return lv.qt
            self.on_read(lv, e)
            return lv.qt
        if isinstance(e, A.Unop):
            return self._type_of_unop(e)
        if isinstance(e, A.Binop):
            return self._type_of_binop(e)
        if isinstance(e, A.Assign):
            return self._type_of_assign(e)
        if isinstance(e, A.Call):
            return self._type_of_call(e)
        if isinstance(e, A.CastExpr):
            src_t = self.type_of(e.expr)
            self.on_cast(e.to, src_t, e)
            return e.to
        if isinstance(e, A.SCastExpr):
            lv = self.lvalue_of(e.expr)
            e.src_lv = lv  # type: ignore[attr-defined]
            if lv is not None:
                # The source is read and then nulled; record the read here,
                # the write is attached by the type checker.
                self.on_read(lv, e.expr)
                e.expr.ctype = lv.qt
                src_t: Optional[QualType] = lv.qt
            else:
                src_t = self.type_of(e.expr)
            self.on_scast(e.to, src_t, e)
            return e.to
        if isinstance(e, A.CondExpr):
            self.type_of(e.cond)
            then_t = self.type_of(e.then)
            other_t = self.type_of(e.other)
            if then_t is not None and then_t.is_pointer:
                return then_t
            return other_t if other_t is not None else then_t
        if isinstance(e, A.CommaExpr):
            t: Optional[QualType] = None
            for part in e.parts:
                t = self.type_of(part)
            return t
        raise TypeError(f"unhandled expression {e!r}")

    def _type_of_unop(self, e: A.Unop) -> Optional[QualType]:
        if e.op == "&":
            lv = self.lvalue_of(e.operand)
            if lv is None:
                self.sink.error(
                    DiagKind.PARSE,
                    f"cannot take the address of {pretty_expr(e.operand)!r}",
                    e.loc)
                return None
            e.operand.ctype = lv.qt
            return QualType(PtrType(lv.qt), M.PRIVATE)
        if e.op in ("++", "--"):
            lv = self.lvalue_of(e.operand)
            if lv is None:
                self.sink.error(DiagKind.PARSE,
                                "++/-- needs an l-value", e.loc)
                return None
            e.operand.ctype = lv.qt
            self.on_read(lv, e.operand)
            self.on_write(lv, e.operand)
            return lv.qt
        operand_t = self.type_of(e.operand)
        if e.op in ("!",):
            return INT
        return operand_t

    def _type_of_binop(self, e: A.Binop) -> Optional[QualType]:
        lhs_t = self.type_of(e.lhs)
        rhs_t = self.type_of(e.rhs)
        if e.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            return INT
        lhs_ptr = lhs_t is not None and (lhs_t.is_pointer or lhs_t.is_array)
        rhs_ptr = rhs_t is not None and (rhs_t.is_pointer or rhs_t.is_array)
        if lhs_ptr and rhs_ptr and e.op == "-":
            return LONG
        if lhs_ptr:
            return lhs_t
        if rhs_ptr:
            return rhs_t
        if lhs_t is not None and isinstance(lhs_t.base, Prim) and \
                lhs_t.base.is_floating:
            return lhs_t
        if rhs_t is not None and isinstance(rhs_t.base, Prim) and \
                rhs_t.base.is_floating:
            return rhs_t
        return lhs_t if lhs_t is not None else rhs_t

    def _type_of_assign(self, e: A.Assign) -> Optional[QualType]:
        lv = self.lvalue_of(e.lhs)
        rhs_t = self.type_of(e.rhs)
        if lv is None:
            self.sink.error(
                DiagKind.PARSE,
                f"cannot assign to {pretty_expr(e.lhs)!r}", e.loc)
            return rhs_t
        e.lhs.ctype = lv.qt
        if e.op != "=":
            self.on_read(lv, e.lhs)
        self.on_write(lv, e.lhs)
        if e.op == "=":
            self.on_assign(lv.qt, rhs_t, e.rhs, e)
        return lv.qt

    def _resolve_callee(self, e: A.Call):
        """Returns (func_def | None, FuncType | None, builtin_name | None)."""
        callee = e.callee
        if isinstance(callee, A.Ident) and callee.name not in self.locals:
            if is_builtin(callee.name):
                # The per-call-site instance is cached on the node so the
                # checking phase sees the modes inference resolved.
                bt = getattr(e, "builtin_sig", None)
                if bt is None:
                    bt = builtin_type(callee.name)
                    e.builtin_sig = bt  # type: ignore[attr-defined]
                assert isinstance(bt.base, FuncType)
                return None, bt.base, callee.name
            if callee.name in self.functions:
                func = self.functions[callee.name]
                assert isinstance(func.qtype.base, FuncType)
                return func, func.qtype.base, None
        callee_t = self.type_of(callee)
        if callee_t is None:
            return None, None, None
        base = callee_t.base
        if isinstance(base, PtrType):
            base = base.target.base
        if isinstance(base, FuncType):
            return None, base, None
        self.sink.error(DiagKind.PARSE,
                        f"call of non-function {pretty_expr(callee)!r}",
                        e.loc)
        return None, None, None

    def _type_of_call(self, e: A.Call) -> Optional[QualType]:
        func, ftype, builtin_name = self._resolve_callee(e)
        if ftype is None:
            for arg in e.args:
                self.type_of(arg)
            return None
        arg_types = [self.type_of(arg) for arg in e.args]
        self.on_call(func, ftype, builtin_name, e, arg_types)
        return ftype.ret
