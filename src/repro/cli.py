"""Command-line interface: the ``sharc`` tool.

Subcommands mirror how the paper's tool is used:

- ``sharc check FILE``   — parse, infer, type-check; print diagnostics
  and SCAST suggestions (exit 1 on errors);
- ``sharc analyze FILE`` — the static lockset view: inferred modes per
  global/formal, must-held lockset per shared location, locked(l)
  refinements, and compile-time ``static-race`` findings; ``--json``
  emits a versioned machine-readable payload and ``--fail-on-race``
  turns findings into exit code 2 (the CI lint gate);
- ``sharc infer FILE``   — print the program with all inferred
  qualifiers made explicit (the paper's Figure 2 view);
- ``sharc run FILE``     — check then execute under the dynamic checker,
  printing conflict reports in the paper's format (``--profile`` adds
  phase timers and steps/sec throughput);
- ``sharc table1``       — regenerate the evaluation table;
- ``sharc bench``        — interpreter throughput over the Table 1
  workloads; writes ``BENCH_interp.json``;
- ``sharc ablate-rc`` / ``sharc ablate-annot`` — the ablations;
- ``sharc compare-eraser`` — SharC vs the lockset baseline (§6.2);
- ``sharc explore``      — sweep a program across seeds x scheduling
  policies hunting schedule-dependent races, report coverage and
  first-failure replay seeds, optionally delta-debug a failure to a
  minimal interleaving (``--shrink``) or replay a saved one
  (``--replay``); ``--metrics-out`` writes a schema-validated
  ``metrics.json`` aggregating the sweep;
- ``sharc campaign DIR`` — the fleet-scale tier above ``explore``: a
  resumable sharded sweep over many workloads with batched worker IPC,
  an on-disk deduplicating trace corpus, and coverage-guided budget
  allocation; kill it any time and ``--resume DIR`` continues from the
  last completed shard with a bit-identical final summary;
- ``sharc status DIR``   — live (or final) view of an explore/fuzz
  campaign from its crash-safe ``telemetry.jsonl`` stream
  (``--watch`` keeps redrawing, ``--json`` emits the folded status);
- ``sharc report DIR``   — render a campaign into a self-contained
  static HTML report (coverage curve, per-policy tables, violations,
  hot check sites) with zero external dependencies;
- ``sharc trace``        — inspect a saved trace (``.jsonl``) or replay
  a shrunk-schedule artifact into a timeline; ``--out`` converts to
  Chrome trace-event JSON (open in Perfetto / ``chrome://tracing``).

``sharc run --trace-out out.json`` records the run's structured events
(:mod:`repro.obs`) — Perfetto JSON by default, JSON Lines when the path
ends in ``.jsonl``; ``--trace-filter cat,...`` restricts categories.
"""

from __future__ import annotations

import argparse
import sys

from repro.sharc.checker import check_source
from repro.runtime.interp import run_checked


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _trace_config(args: argparse.Namespace):
    """Builds a TraceConfig from --trace-out/--trace-filter, or None."""
    if not getattr(args, "trace_out", None):
        return None
    from repro.obs import TraceConfig, parse_filter

    categories = None
    if getattr(args, "trace_filter", None):
        categories = parse_filter(args.trace_filter)
    return TraceConfig(categories=categories)


def _write_trace(path: str, events, reports, thread_names,
                 meta: dict) -> None:
    """Writes events as JSONL (``.jsonl``) or Chrome trace JSON."""
    from repro.obs import write_chrome_trace, write_jsonl

    if path.endswith(".jsonl"):
        write_jsonl(path, events, reports, thread_names, meta)
    else:
        write_chrome_trace(path, events, thread_names, meta)
    print(f"trace written to {path} ({len(events)} events)")


def cmd_check(args: argparse.Namespace) -> int:
    checked = check_source(_read(args.file), args.file)
    output = checked.render_diagnostics()
    if output:
        print(output)
    if checked.ok:
        stats = checked.check_stats
        print(f"ok: {stats.read_checks} read checks, "
              f"{stats.write_checks} write checks, "
              f"{stats.lock_checks} lock checks, "
              f"{stats.oneref_checks} oneref checks")
    return 0 if checked.ok else 1


#: version tag of the ``sharc analyze --json`` payload.  ``/1`` lacked
#: the ``absint`` section (interval verdicts per static race, AI
#: discharge census, interference environment) that ``/2`` added with
#: the abstract interpreter; readers go through
#: :func:`upgrade_analyze_payload`.
ANALYZE_SCHEMA_V1 = "sharc-analyze/1"
ANALYZE_SCHEMA = "sharc-analyze/2"


def _mode_text(qt) -> str | None:
    return str(qt.mode) if qt is not None and qt.mode is not None \
        else None


def upgrade_analyze_payload(payload: dict) -> dict:
    """Reader shim: accepts a ``/1`` or ``/2`` analyze payload and
    returns a ``/2`` one.  ``/1`` payloads predate the abstract
    interpreter, so their ``absint`` section backfills to an empty
    analysis (no verdicts, zero discharges) plus an ``upgraded_from``
    marker.  Anything else raises ``ValueError``."""
    import copy

    schema = payload.get("schema")
    if schema == ANALYZE_SCHEMA:
        return payload
    if schema != ANALYZE_SCHEMA_V1:
        raise ValueError(
            f"unsupported analyze schema {schema!r} "
            f"(expected {ANALYZE_SCHEMA!r} or {ANALYZE_SCHEMA_V1!r})")
    out = copy.deepcopy(payload)
    out["schema"] = ANALYZE_SCHEMA
    out["upgraded_from"] = schema
    out.setdefault("absint", {
        "rounds": 0,
        "terminated": True,
        "ai_elided_sites": 0,
        "ai_range_sites": 0,
        "check_free": [],
        "interference": {},
        "refuted": 0,
        "confirmed": 0,
        "verdicts": [],
    })
    return out


def analyze_payload(checked) -> dict:
    """The machine-readable ``sharc analyze`` view of one checked
    program (schema ``sharc-analyze/2``)."""
    ls = checked.lockset_result
    ai = checked.absint_result
    program = checked.program
    formals = {}
    for func in program.functions():
        ftype = func.qtype.base
        formals[func.name] = [
            {"name": pname, "mode": _mode_text(ptype)}
            for pname, ptype in zip(func.param_names, ftype.params)]
    return {
        "schema": ANALYZE_SCHEMA,
        "file": checked.filename,
        "ok": checked.ok,
        "errors": [str(d) for d in checked.errors],
        "globals": [{"name": g.name, "mode": _mode_text(g.qtype)}
                    for g in program.globals()],
        "formals": formals,
        "locations": [
            {"location": info.text,
             "lockset": sorted(info.lockset),
             "tainted": info.tainted,
             "sites": len(info.sites),
             "reads": info.reads,
             "writes": info.writes}
            for _, info in sorted(ls.locations.items())],
        "refinements": [
            {"location": r.text, "lock": r.lock, "sites": r.sites,
             "reads": r.reads, "writes": r.writes,
             "loc": str(r.first_loc)}
            for r in ls.refinements],
        "static_races": [
            {"key": f"static-race {d.message_key}",
             "message": d.message, "loc": str(d.loc),
             "notes": list(d.notes)}
            for d in ls.races],
        "absint": {
            "rounds": ai.rounds,
            "terminated": ai.terminated,
            "ai_elided_sites": ai.stats.ai_elided,
            "ai_range_sites": ai.stats.ai_ranges,
            "check_free": sorted(n for n, clean in ai.check_free.items()
                                 if clean),
            "interference": ai.interference_encoded(),
            "refuted": ai.refuted,
            "confirmed": ai.confirmed,
            "verdicts": [v.as_dict() for v in ai.verdicts],
        },
    }


def cmd_analyze(args: argparse.Namespace) -> int:
    import json

    checked = check_source(_read(args.file), args.file)
    ls = checked.lockset_result
    if args.json:
        payload = analyze_payload(checked)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"analysis written to {args.out}")
        else:
            print(json.dumps(payload, indent=2))
    else:
        if not checked.ok:
            print(checked.render_diagnostics())
        print("== inferred modes ==")
        for g in checked.program.globals():
            print(f"  global {g.name}: {_mode_text(g.qtype) or '-'}")
        for func in checked.program.functions():
            params = ", ".join(
                f"{pname}: {_mode_text(ptype) or '-'}"
                for pname, ptype in zip(func.param_names,
                                        func.qtype.base.params))
            print(f"  fn {func.name}({params})")
        if ls.locations:
            print("== shared locations ==")
            for _, info in sorted(ls.locations.items()):
                locks = ("{" + ", ".join(sorted(info.lockset)) + "}"
                         if info.lockset else "{}")
                taint = " [tainted]" if info.tainted else ""
                print(f"  {info.text}: lockset={locks} "
                      f"{len(info.sites)} site(s), {info.reads} read / "
                      f"{info.writes} write{taint}")
        if ls.refinements:
            print("== refinements ==")
            for r in ls.refinements:
                print(f"  {r.render()}")
        if ls.races:
            print("== static races ==")
            ai_by_line = {v.line: v
                          for v in checked.absint_result.verdicts}
            for d in ls.races:
                print(str(d))
                verdict = ai_by_line.get(d.loc.line)
                if verdict is not None:
                    print(f"    absint: {verdict.verdict}")
        if args.ai:
            ai = checked.absint_result
            print("== abstract interpretation ==")
            if ai.check_free:
                clean = sorted(n for n, ok in ai.check_free.items()
                               if ok)
                print("  check-free functions: "
                      + (", ".join(clean) if clean else "(none)"))
            if ai.interference:
                print("  interference environment:")
                for key, iv in sorted(ai.interference_encoded().items()):
                    print(f"    {key}: {iv}")
            for v in checked.absint_result.verdicts:
                spans = ", ".join(f"{ctx}={iv}"
                                  for ctx, iv in sorted(v.witness.items()))
                print(f"  {v.text}@{v.line}: {v.verdict}"
                      + (f" [{spans}]" if spans else ""))
            print("  " + ai.summary())
        print(ls.summary())
    if not checked.ok:
        return 1
    if args.fail_on_race and ls.races:
        return 2
    return 0


def cmd_infer(args: argparse.Namespace) -> int:
    checked = check_source(_read(args.file), args.file)
    print(checked.inferred_source())
    return 0 if checked.ok else 1


def cmd_run(args: argparse.Namespace) -> int:
    if args.profile and args.trace_out:
        print("run: --trace-out is not supported with --profile",
              file=sys.stderr)
        return 2
    try:
        trace_config = _trace_config(args)
    except ValueError as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 2
    if args.profile:
        from repro.errors import SharcError
        from repro.runtime.profile import Profiler, profile_source

        profiler = Profiler()
        with profiler.phase("read"):
            source = _read(args.file)
        try:
            report = profile_source(source, args.file, seed=args.seed,
                                    rc_scheme="lp" if args.rc == "off"
                                    else args.rc,
                                    max_steps=args.max_steps,
                                    checkelim=not args.no_checkelim,
                                    lockset=not args.no_lockset,
                                    absint=not args.no_absint,
                                    backend=args.backend,
                                    profiler=profiler)
        except SharcError as exc:
            print(exc)
            return 1
        print(report.render())
        return 0 if report.reports == 0 else 1
    checked = check_source(_read(args.file), args.file)
    if not checked.ok:
        print(checked.render_diagnostics())
        return 1
    result = run_checked(checked, seed=args.seed,
                         rc_scheme=args.rc,
                         checker=getattr(args, "checker", "sharc"),
                         max_steps=args.max_steps,
                         checkelim=not args.no_checkelim,
                         lockset=not args.no_lockset,
                         absint=not args.no_absint,
                         trace=trace_config, backend=args.backend)
    if result.output:
        print(result.output, end="")
    for report in result.reports:
        print(report.render())
    if result.deadlock:
        print(f"deadlock: {result.deadlock}")
    if result.error:
        print(f"runtime error: {result.error}")
    if args.stats:
        print(result.stats.summary())
    if args.trace_out:
        _write_trace(args.trace_out, result.events or [], result.reports,
                     result.thread_names,
                     meta={"file": args.file, "seed": str(args.seed)})
    return 0 if result.clean else 1


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.bench import table1
    argv = ["--json"] if args.json else []
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    return table1.main(argv)


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import interp_bench
    argv: list[str] = []
    if args.json:
        argv.append("--json")
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.out is not None:
        argv += ["--out", args.out]
    if args.workloads:
        argv += ["--workloads", *args.workloads]
    if args.no_checkelim:
        argv.append("--no-checkelim")
    if args.no_lockset:
        argv.append("--no-lockset")
    if args.no_absint:
        argv.append("--no-absint")
    if args.compare is not None:
        argv += ["--compare", args.compare,
                 "--compare-threshold", str(args.compare_threshold),
                 "--compiled-floor", str(args.compiled_floor)]
    if args.backend is not None:
        argv += ["--backend", args.backend]
    return interp_bench.main(argv)


def cmd_ablate_rc(_args: argparse.Namespace) -> int:
    from repro.bench import ablation_rc
    return ablation_rc.main()


def cmd_ablate_annot(_args: argparse.Namespace) -> int:
    from repro.bench import ablation_annot
    return ablation_annot.main()


def cmd_compare_eraser(_args: argparse.Namespace) -> int:
    from repro.bench import comparison_eraser
    return comparison_eraser.main()


def cmd_explore(args: argparse.Namespace) -> int:
    import json

    from repro.explore import (
        differential_sweep, explore_source, load_artifact, racy_c_program,
        replay_artifact, save_artifact, shrink_failure,
    )

    if args.replay:
        payload = load_artifact(args.replay)
        result = replay_artifact(payload)
        print(f"replayed {payload['filename']} "
              f"(seed={payload['seed']} policy={payload['policy']} "
              f"[{payload['checker']}]):")
        for key in sorted(result.report_counts):
            print(f"  {key} x{result.report_counts[key]}")
        expected = set(payload["report_keys"])
        ok = expected <= set(result.report_counts)
        print("reproduced the saved report" if ok
              else "DID NOT reproduce the saved report")
        return 0 if ok else 1

    spec = None
    if args.gen is not None:
        source, spec = racy_c_program(args.gen, kind=args.gen_kind)
        filename = f"<racy gen={args.gen} kind={args.gen_kind}>"
        if args.emit_source:
            print(source)
    elif args.file:
        source, filename = _read(args.file), args.file
    else:
        print("explore: need FILE or --gen SEED", file=sys.stderr)
        return 2

    policies = tuple(args.policy) if args.policy else ("random", "pct",
                                                       "pb")
    telemetry = None
    if args.telemetry_out:
        telemetry = _open_telemetry(args.telemetry_out,
                                    campaign=filename)

    from repro.obs import ProgressPrinter

    printer = ProgressPrinter(quiet=args.quiet or args.json)

    def progress(done: int, total: int, partial) -> None:
        printer.update(
            f"  {done}/{total} schedules, "
            f"{partial.distinct_traces} distinct traces, "
            f"{len(partial.failures)} failing")

    common = dict(seeds=args.seeds, seed_start=args.seed_start,
                  policies=policies, jobs=args.jobs,
                  max_steps=args.max_steps, backend=args.backend,
                  absint=not args.no_absint,
                  telemetry=telemetry, progress=progress)
    summary = sweep = None
    sweeps: list = []
    interrupted = False
    try:
        if args.checker == "both":
            summary = differential_sweep(source, filename, **common)
            sweep = summary.sharc
            sweeps = [summary.sharc, summary.eraser]
            interrupted = (summary.sharc.interrupted
                           or summary.eraser.interrupted)
        else:
            sweep = explore_source(source, filename,
                                   checker=args.checker, **common)
            sweeps = [sweep]
            interrupted = sweep.interrupted
    except KeyboardInterrupt:
        # An interrupt outside the sweep loop (static check, policy
        # resolution, pool teardown) — the sweeps list holds whatever
        # completed; partial metrics/telemetry still get flushed below.
        interrupted = True
    finally:
        printer.close()

    if sweep is not None:
        view = summary if args.checker == "both" else sweep
        print(json.dumps(view.as_dict(), indent=2) if args.json
              else view.render())

    if args.metrics_out:
        from repro.obs import MetricsRegistry, write_metrics

        registry = MetricsRegistry()
        for one in sweeps:
            registry.record_sweep(one)
        if args.checker == "both" and summary is not None:
            registry.record_differential(summary)
        write_metrics(registry, args.metrics_out)
        tag = " (partial: interrupted)" if interrupted else ""
        print(f"metrics written to {args.metrics_out}{tag}")

    if telemetry is not None:
        telemetry.final(interrupted=interrupted)
        print(f"telemetry written to {args.telemetry_out}")

    if args.sites and sweep is not None and not args.json:
        from repro.obs import merge_sites, render_hot_sites

        sites: dict = {}
        for one in sweeps:
            merge_sites(sites, one.site_totals)
        print(render_hot_sites(sites, source=source,
                               limit=args.sites))

    if interrupted and sweep is None:
        print("explore: interrupted before any schedule completed",
              file=sys.stderr)
        return 130

    found = None
    if spec is not None:
        hits = sorted(k for k in sweep.first_failures
                      if spec.matches_key(k))
        if args.checker == "both":
            hits = sorted(set(hits) | {
                k for k in summary.eraser.first_failures
                if spec.matches_key(k)})
        if hits:
            first = (sweep.first_failures.get(hits[0])
                     or summary.eraser.first_failures[hits[0]])
            print(f"injected race ({spec.kind} on {spec.global_name}) "
                  f"FOUND: {', '.join(hits)}")
            print(f"  replay with {first.replay_coords()}")
            found = first
        else:
            print(f"injected race ({spec.kind} on {spec.global_name}) "
                  "NOT found in this sweep")

    if args.shrink:
        target = found or sweep.first_failure
        if target is None:
            print("nothing to shrink: no failing schedule found")
            return 1
        checker = target.checker
        keys = ([k for k in target.report_keys if spec.matches_key(k)]
                if spec is not None else None) or None
        result = shrink_failure(source, filename, seed=target.seed,
                                policy=target.policy, checker=checker,
                                target_keys=keys,
                                max_steps=args.max_steps)
        print(result.render())
        if args.out:
            save_artifact(result, args.out)
            print(f"replayable artifact written to {args.out}")

    if spec is not None:
        return 0 if found is not None else 1
    return 0 if not sweep.failures else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.explore.campaign import (
        CampaignConfig, CampaignTarget, run_campaign,
    )
    from repro.obs import ProgressPrinter, TelemetryWriter

    if args.resume:
        if args.file or args.workload:
            print("campaign: --resume reads targets from the campaign "
                  "directory; don't pass FILE/--workload", file=sys.stderr)
            return 2
        if not os.path.exists(os.path.join(args.dir, "campaign.json")):
            print(f"campaign: no campaign manifest in {args.dir}",
                  file=sys.stderr)
            return 2
        targets = None
        config = CampaignConfig(jobs=args.jobs)
    else:
        targets = []
        try:
            for name in args.workload or ():
                targets.append(CampaignTarget.from_workload(name))
            for path in args.file or ():
                targets.append(CampaignTarget.from_file(
                    path, max_steps=args.max_steps))
        except (OSError, KeyError, ValueError) as exc:
            print(f"campaign: {exc}", file=sys.stderr)
            return 2
        if not targets:
            print("campaign: need at least one FILE or --workload "
                  "(or --resume)", file=sys.stderr)
            return 2
        labels = [t.label for t in targets]
        if len(set(labels)) != len(labels):
            print(f"campaign: duplicate target labels: {labels}",
                  file=sys.stderr)
            return 2
        policies = (tuple(args.policy) if args.policy
                    else ("random", "pct", "pb"))
        config = CampaignConfig(
            budget=args.budget, shard_size=args.shard_size,
            jobs=args.jobs, policies=policies, checker=args.checker,
            backend=args.backend, sites_every=args.sites_every,
            seed_start=args.seed_start)

    os.makedirs(args.dir, exist_ok=True)
    telemetry = TelemetryWriter(
        os.path.join(args.dir, "telemetry.jsonl"),
        campaign=f"campaign:{args.dir}")

    printer = ProgressPrinter(quiet=args.quiet or args.json)

    def progress(done: int, budget: int, partial) -> None:
        printer.update(
            f"  {done}/{budget} schedules in "
            f"{partial.shards_done} shards, "
            f"{partial.distinct_traces} distinct traces, "
            f"{len(partial.failures)} failing")

    try:
        summary = run_campaign(targets, args.dir, config=config,
                               resume=args.resume,
                               stop_after=args.stop_after,
                               telemetry=telemetry, progress=progress)
    except ValueError as exc:
        printer.close()
        telemetry.final(interrupted=True)
        print(f"campaign: {exc}", file=sys.stderr)
        return 2
    finally:
        printer.close()
    telemetry.final(interrupted=summary.interrupted)

    print(json.dumps(summary.as_dict(), indent=2) if args.json
          else summary.render())
    if summary.complete and not args.json:
        print(f"summary written to "
              f"{os.path.join(args.dir, 'summary.json')}")
    if summary.interrupted:
        return 130
    return 1 if summary.failures else 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.fuzz import (
        FuzzConfig, fuzz_campaign, replay_corpus, validate_fuzz_report,
    )

    if args.replay_corpus:
        backends = ((args.backend,) if args.backend
                    else ("interp", "compiled"))
        rows = replay_corpus(args.replay_corpus, backends=backends)
        bad = [r for r in rows if not r["ok"]]
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            for row in rows:
                mark = "ok" if row["ok"] else "FAIL"
                print(f"  [{mark}] {row['artifact']} "
                      f"({row['backend']})")
                for problem in row["problems"]:
                    print(f"        {problem}")
            print(f"corpus: {len(rows)} replays, {len(bad)} failing")
        return 1 if bad or not rows else 0

    policies = tuple(args.policy) if args.policy else ("random", "pct")
    config = FuzzConfig(
        budget=args.budget, seeds=args.seeds,
        seed_start=args.seed_start, policies=policies,
        gen_seed=args.gen_seed, jobs=args.jobs,
        max_steps=args.max_steps, racy_fraction=args.racy_fraction,
        shrink=not args.no_shrink, out_dir=args.out,
        formal_seeds=args.formal_seeds)
    telemetry = None
    if args.telemetry_out:
        telemetry = _open_telemetry(args.telemetry_out,
                                    campaign="fuzz")
    progress = None if args.json else print
    try:
        report = fuzz_campaign(config, progress=progress,
                               telemetry=telemetry)
    except KeyboardInterrupt:
        if telemetry is not None:
            telemetry.final(interrupted=True)
        print("fuzz: interrupted", file=sys.stderr)
        return 130
    if telemetry is not None:
        telemetry.final()
        print(f"telemetry written to {args.telemetry_out}")
    payload = report.as_dict()
    problems = validate_fuzz_report(payload)
    if problems:  # pragma: no cover - would be a FuzzReport bug
        print("invalid fuzz report: " + "; ".join(problems),
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"fuzz report written to {args.report_out}")
    return 0 if report.ok else 1


def _telemetry_path(target: str) -> str:
    """Resolves a campaign DIR (or a direct stream path) to its
    ``telemetry.jsonl``."""
    import os

    if os.path.isdir(target):
        return os.path.join(target, "telemetry.jsonl")
    return target


def _open_telemetry(target: str, campaign: str):
    """Opens a :class:`TelemetryWriter` for ``--telemetry-out``:
    ``FILE.jsonl`` streams there directly, anything else is a campaign
    directory (created as needed) holding ``telemetry.jsonl`` — the
    layout ``sharc status DIR`` and ``sharc report DIR`` expect."""
    import os

    from repro.obs import TelemetryWriter

    if target.endswith(".jsonl"):
        parent = os.path.dirname(target)
        if parent:
            os.makedirs(parent, exist_ok=True)
        path = target
    else:
        os.makedirs(target, exist_ok=True)
        path = os.path.join(target, "telemetry.jsonl")
    return TelemetryWriter(path, campaign=campaign)


def cmd_status(args: argparse.Namespace) -> int:
    import json
    import os
    import time

    from repro.obs import (
        CampaignStatus, supports_live, validate_status,
    )

    path = _telemetry_path(args.dir)
    if not os.path.exists(path):
        print(f"status: no telemetry stream at {path}",
              file=sys.stderr)
        return 2

    if args.json:
        payload = CampaignStatus.from_file(path).as_dict()
        problems = validate_status(payload)
        if problems:
            print("status: invalid telemetry stream: "
                  + "; ".join(problems), file=sys.stderr)
            return 2
        print(json.dumps(payload, indent=2))
        return 0

    if not args.watch:
        print(CampaignStatus.from_file(path).render())
        return 0

    # --watch: poll the stream until the campaign writes its final
    # record.  On a live terminal the view redraws in place; piped
    # output gets one plain snapshot per change.
    live = supports_live(sys.stdout)
    last_lines = 0
    last_render = ""
    try:
        while True:
            status = CampaignStatus.from_file(path)
            rendered = status.render()
            if live:
                if last_lines:
                    sys.stdout.write(f"\x1b[{last_lines}A\x1b[J")
                sys.stdout.write(rendered + "\n")
                sys.stdout.flush()
                last_lines = rendered.count("\n") + 1
            elif rendered != last_render:
                print(rendered)
                last_render = rendered
            if status.finished:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        if live and last_lines:
            sys.stdout.write("\n")
        return 130


def cmd_report(args: argparse.Namespace) -> int:
    import os

    from repro.obs import write_report

    out = args.out or os.path.join(args.dir, "report.html")
    try:
        path = write_report(args.dir, out, title=args.title)
    except FileNotFoundError as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 2
    print(f"report written to {path}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Inspects / converts a saved trace or schedule artifact.

    Accepts either a JSONL trace written by ``sharc run --trace-out`` or
    a ``sharc-schedule`` artifact written by ``sharc explore --shrink
    --out`` — the latter is replayed with tracing enabled, turning the
    minimized interleaving into a timeline.
    """
    import json

    from repro.obs import (
        TraceConfig, read_jsonl, render_summary,
    )
    from repro.sharc.reports import Report

    payload = None
    try:
        with open(args.artifact, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError):
        payload = None
    if isinstance(payload, dict) and payload.get("kind") == \
            "sharc-schedule":
        from repro.explore import load_artifact, replay_artifact

        artifact = load_artifact(args.artifact)
        result = replay_artifact(artifact, obs_trace=TraceConfig())
        events = result.events or []
        thread_names = result.thread_names
        reports = list(result.reports)
        print(f"replayed schedule artifact {artifact['filename']} "
              f"(seed={artifact['seed']} policy={artifact['policy']} "
              f"[{artifact['checker']}])")
    elif isinstance(payload, dict) and "traceEvents" in payload:
        print(f"{args.artifact} is already a Chrome trace "
              f"({len(payload['traceEvents'])} entries); open it in "
              "Perfetto or chrome://tracing")
        return 0
    else:
        try:
            header, events, report_dicts = read_jsonl(args.artifact)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"trace: {exc}", file=sys.stderr)
            return 2
        thread_names = {int(tid): name for tid, name in
                        (header.get("threads") or {}).items()}
        reports = [Report.from_dict(r) for r in report_dicts]

    print(render_summary(events, thread_names, limit=args.limit))
    for report in reports:
        print(report.render())
    if args.out:
        _write_trace(args.out, events, reports, thread_names,
                     meta={"source": args.artifact})
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sharc",
        description="SharC reproduction: check data sharing strategies "
                    "for multithreaded C (PLDI 2008)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="static check a file")
    p.add_argument("file")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "analyze",
        help="static analysis view: inferred modes, locksets, locked(l) "
             "refinements, compile-time race findings with interval "
             "verdicts (--ai for the full abstract-interpretation view)")
    p.add_argument("file")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (schema "
                        f"{ANALYZE_SCHEMA})")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="with --json: write the payload to FILE")
    p.add_argument("--fail-on-race", action="store_true",
                   help="exit 2 when any static race is found "
                        "(the CI lint gate)")
    p.add_argument("--ai", action="store_true",
                   help="also print the abstract-interpretation view: "
                        "check-free functions, the stabilised "
                        "interference environment, and per-race "
                        "interval verdicts with witness bounds")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("infer", help="show inferred qualifiers")
    p.add_argument("file")
    p.set_defaults(func=cmd_infer)

    p = sub.add_parser("run", help="check and execute a file")
    p.add_argument("file")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--rc", choices=("lp", "naive", "off"), default="lp")
    p.add_argument("--checker", choices=("sharc", "eraser"),
                   default="sharc")
    p.add_argument("--max-steps", type=int, default=2_000_000)
    p.add_argument("--backend", choices=("interp", "compiled"),
                   default=None,
                   help="executor: tree-walking interpreter or the "
                        "compiled backend (bit-identical by seed; "
                        "default $SHARC_BACKEND or interp)")
    p.add_argument("--stats", action="store_true")
    p.add_argument("--profile", action="store_true",
                   help="time each pipeline phase, run an uninstrumented "
                        "baseline too, and report steps/sec")
    p.add_argument("--no-checkelim", action="store_true",
                   help="ablation: disable the static check eliminator "
                        "(identical reports/steps, more full checks)")
    p.add_argument("--no-lockset", action="store_true",
                   help="ablation: disable the locked(l) lockset "
                        "refinement (identical reports/steps, more "
                        "shadow walks)")
    p.add_argument("--no-absint", action="store_true",
                   help="ablation: disable the abstract interpreter's "
                        "interval-proved check discharges (identical "
                        "reports/steps, more full checks)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="record structured runtime events: Chrome "
                        "trace-event JSON (Perfetto), or JSON Lines "
                        "when FILE ends in .jsonl")
    p.add_argument("--trace-filter", default=None, metavar="CATS",
                   help="comma-separated event categories to record "
                        "(sched,check,conflict,lock,rc,scast,thread)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("table1", help="regenerate Table 1")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("bench",
                       help="interpreter throughput benchmark "
                            "(writes BENCH_interp.json)")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--json", action="store_true")
    p.add_argument("--out", default=None)
    p.add_argument("--workloads", nargs="*", default=None)
    p.add_argument("--no-checkelim", action="store_true",
                   help="ablation: disable the static check eliminator")
    p.add_argument("--no-lockset", action="store_true",
                   help="ablation: disable the locked(l) lockset "
                        "refinement")
    p.add_argument("--no-absint", action="store_true",
                   help="ablation: disable the abstract interpreter's "
                        "interval-proved check discharges")
    p.add_argument("--compare", default=None, metavar="OLD.json",
                   help="diff against a previous BENCH_interp.json "
                        "(schema /1 through /5); exit 3 on regression")
    p.add_argument("--compare-threshold", type=float, default=0.5,
                   help="allowed fractional steps/sec drop for "
                        "--compare (default 0.5)")
    p.add_argument("--compiled-floor", type=float, default=0.0,
                   metavar="N",
                   help="with --compare: also fail unless compiled "
                        "throughput is at least N times the old "
                        "payload's interp baseline (0 = off)")
    p.add_argument("--backend", choices=("interp", "compiled", "both"),
                   default=None,
                   help="executor to time (default both: the table "
                        "carries one column per backend)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("ablate-rc", help="refcounting ablation")
    p.set_defaults(func=cmd_ablate_rc)

    p = sub.add_parser("ablate-annot", help="annotation sweep ablation")
    p.set_defaults(func=cmd_ablate_annot)

    p = sub.add_parser("compare-eraser",
                       help="SharC vs Eraser-style lockset baseline")
    p.set_defaults(func=cmd_compare_eraser)

    p = sub.add_parser(
        "explore",
        help="sweep seeds x scheduling policies hunting "
             "schedule-dependent races")
    p.add_argument("file", nargs="?", default=None,
                   help="mini-C source to explore (or use --gen)")
    p.add_argument("--gen", type=int, default=None, metavar="SEED",
                   help="explore a racy-by-construction generated "
                        "program instead of a file; exit 0 iff the "
                        "injected race is found")
    p.add_argument("--gen-kind", choices=("write-write", "lock-elision"),
                   default="write-write")
    p.add_argument("--emit-source", action="store_true",
                   help="print the generated program before exploring")
    p.add_argument("--seeds", type=int, default=50,
                   help="schedules per policy (default 50)")
    p.add_argument("--seed-start", type=int, default=0)
    p.add_argument("--policy", action="append", default=None,
                   metavar="SPEC",
                   help="scheduling policy spec, repeatable (random, "
                        "round-robin, serial, pct[:D[:H]], pb[:K]); "
                        "default: random, pct, pb")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the sweep")
    p.add_argument("--checker", choices=("sharc", "eraser", "both"),
                   default="sharc",
                   help="'both' runs a differential sweep and reports "
                        "checker disagreements as replay seeds")
    p.add_argument("--shrink", action="store_true",
                   help="delta-debug the first failure to a minimal "
                        "interleaving")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the shrunk schedule as a replayable "
                        "JSON artifact")
    p.add_argument("--replay", default=None, metavar="FILE",
                   help="replay a saved schedule artifact and verify it "
                        "still reproduces its report")
    p.add_argument("--max-steps", type=int, default=200_000)
    p.add_argument("--backend", choices=("interp", "compiled"),
                   default=None,
                   help="executor for every schedule (outcomes are "
                        "backend-invariant; compiled sweeps faster)")
    p.add_argument("--no-absint", action="store_true",
                   help="ablation: disable the abstract interpreter's "
                        "interval-proved check discharges in every "
                        "schedule (outcomes are identical either way)")
    p.add_argument("--json", action="store_true")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write a schema-validated metrics.json "
                        "aggregating the sweep (partial registry still "
                        "written on Ctrl-C)")
    p.add_argument("--telemetry-out", default=None, metavar="DEST",
                   help="stream crash-safe campaign telemetry "
                        "(heartbeats, coverage, violations) to DEST — "
                        "a .jsonl file, or a campaign directory that "
                        "gets telemetry.jsonl; tail it live with "
                        "'sharc status'")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the live progress line")
    p.add_argument("--sites", type=int, default=0, metavar="N",
                   help="print the N hottest check sites with their "
                        "per-site cost attribution after the sweep")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser(
        "campaign",
        help="resumable sharded sweep over workloads/files: batched "
             "worker IPC, on-disk deduplicating trace corpus, "
             "coverage-guided budget allocation")
    p.add_argument("dir",
                   help="campaign directory (queue, corpus, telemetry, "
                        "summary all live here)")
    p.add_argument("file", nargs="*", default=None,
                   help="mini-C sources to sweep")
    p.add_argument("--workload", action="append", default=None,
                   metavar="NAME",
                   help="sweep a Table 1 workload model by name, "
                        "repeatable (pfscan, aget, pbzip2, dillo, "
                        "fftw, stunnel)")
    p.add_argument("--budget", type=int, default=1000,
                   help="total schedules to spend across all "
                        "(target, policy) cells (default 1000)")
    p.add_argument("--shard-size", type=int, default=32,
                   help="schedules per shard — the unit of leasing, "
                        "durability, and coverage feedback "
                        "(default 32)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (never affects results, "
                        "only wall-clock; resume may change it)")
    p.add_argument("--policy", action="append", default=None,
                   metavar="SPEC",
                   help="scheduling policy spec, repeatable; "
                        "default: random, pct, pb")
    p.add_argument("--checker", choices=("sharc", "eraser"),
                   default="sharc")
    p.add_argument("--backend", choices=("interp", "compiled"),
                   default="compiled",
                   help="executor for every schedule (default "
                        "compiled — bit-identical by seed, several "
                        "times faster)")
    p.add_argument("--max-steps", type=int, default=200_000,
                   help="step bound for FILE targets (workloads carry "
                        "their own)")
    p.add_argument("--sites-every", type=int, default=8, metavar="N",
                   help="sample full per-site cost attribution on one "
                        "seed in N (0 disables; default 8)")
    p.add_argument("--seed-start", type=int, default=0)
    p.add_argument("--resume", action="store_true",
                   help="continue a killed/paused campaign from its "
                        "last completed shard (final summary is "
                        "bit-identical to an uninterrupted run)")
    p.add_argument("--stop-after", type=int, default=None, metavar="N",
                   help="pause after N new shards this invocation "
                        "(checkpointing; resume later with --resume)")
    p.add_argument("--json", action="store_true")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the live progress line")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "fuzz",
        help="generate topology x sharing-idiom scenarios with known "
             "oracles and hunt detector disagreements")
    p.add_argument("--budget", type=int, default=13,
                   help="scenarios to generate (default 13: one per "
                        "supported family)")
    p.add_argument("--seeds", type=int, default=8,
                   help="schedule seeds per scenario per policy")
    p.add_argument("--seed-start", type=int, default=0)
    p.add_argument("--policy", action="append", default=None,
                   metavar="SPEC",
                   help="scheduling policy spec, repeatable; "
                        "default: random, pct")
    p.add_argument("--gen-seed", type=int, default=0,
                   help="scenario-sampling seed (campaigns are a pure "
                        "function of this)")
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--max-steps", type=int, default=120_000)
    p.add_argument("--racy-fraction", type=float, default=0.5,
                   help="fraction of scenarios carrying injected races")
    p.add_argument("--formal-seeds", type=int, default=0,
                   metavar="N",
                   help="also confirm injected races on the formal "
                        "Machine over N schedules (0: off)")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip ddmin-shrinking oracle violations")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="directory for shrunk disagreement artifacts")
    p.add_argument("--report-out", default=None, metavar="FILE",
                   help="write the schema-validated campaign report")
    p.add_argument("--replay-corpus", default=None, metavar="DIR",
                   help="instead of fuzzing, replay a corpus directory "
                        "and gate on bit-identical reproduction")
    p.add_argument("--backend", choices=("interp", "compiled"),
                   default=None,
                   help="with --replay-corpus: replay under one "
                        "backend only (default: both)")
    p.add_argument("--telemetry-out", default=None, metavar="DEST",
                   help="stream crash-safe campaign telemetry to DEST "
                        "(.jsonl file or campaign directory); tail it "
                        "live with 'sharc status'")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "status",
        help="render a live or final view of an explore/fuzz campaign "
             "from its telemetry.jsonl stream")
    p.add_argument("dir",
                   help="campaign directory holding telemetry.jsonl "
                        "(or the stream file itself)")
    p.add_argument("--watch", action="store_true",
                   help="keep polling and redrawing until the campaign "
                        "finishes")
    p.add_argument("--interval", type=float, default=1.0,
                   help="poll interval in seconds for --watch "
                        "(default 1.0)")
    p.add_argument("--json", action="store_true",
                   help="emit the folded campaign status as JSON "
                        "(schema sharc-telemetry/1)")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser(
        "report",
        help="render a campaign directory (telemetry.jsonl + optional "
             "metrics.json) into a self-contained HTML report")
    p.add_argument("dir",
                   help="campaign directory holding telemetry.jsonl")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="output path (default: DIR/report.html)")
    p.add_argument("--title", default="SharC campaign report")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "trace",
        help="inspect a saved .jsonl trace or replay a shrunk-schedule "
             "artifact into a timeline")
    p.add_argument("artifact",
                   help="a JSONL trace (sharc run --trace-out x.jsonl) "
                        "or a schedule artifact (sharc explore --shrink "
                        "--out x.json)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="convert: Chrome trace-event JSON, or JSONL "
                        "when FILE ends in .jsonl")
    p.add_argument("--limit", type=int, default=0,
                   help="also print the first N events verbatim")
    p.set_defaults(func=cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
