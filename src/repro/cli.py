"""Command-line interface: the ``sharc`` tool.

Subcommands mirror how the paper's tool is used:

- ``sharc check FILE``   — parse, infer, type-check; print diagnostics
  and SCAST suggestions (exit 1 on errors);
- ``sharc infer FILE``   — print the program with all inferred
  qualifiers made explicit (the paper's Figure 2 view);
- ``sharc run FILE``     — check then execute under the dynamic checker,
  printing conflict reports in the paper's format (``--profile`` adds
  phase timers and steps/sec throughput);
- ``sharc table1``       — regenerate the evaluation table;
- ``sharc bench``        — interpreter throughput over the Table 1
  workloads; writes ``BENCH_interp.json``;
- ``sharc ablate-rc`` / ``sharc ablate-annot`` — the ablations;
- ``sharc compare-eraser`` — SharC vs the lockset baseline (§6.2);
- ``sharc explore``      — sweep a program across seeds x scheduling
  policies hunting schedule-dependent races, report coverage and
  first-failure replay seeds, optionally delta-debug a failure to a
  minimal interleaving (``--shrink``) or replay a saved one
  (``--replay``).
"""

from __future__ import annotations

import argparse
import sys

from repro.sharc.checker import check_source
from repro.runtime.interp import run_checked


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_check(args: argparse.Namespace) -> int:
    checked = check_source(_read(args.file), args.file)
    output = checked.render_diagnostics()
    if output:
        print(output)
    if checked.ok:
        stats = checked.check_stats
        print(f"ok: {stats.read_checks} read checks, "
              f"{stats.write_checks} write checks, "
              f"{stats.lock_checks} lock checks, "
              f"{stats.oneref_checks} oneref checks")
    return 0 if checked.ok else 1


def cmd_infer(args: argparse.Namespace) -> int:
    checked = check_source(_read(args.file), args.file)
    print(checked.inferred_source())
    return 0 if checked.ok else 1


def cmd_run(args: argparse.Namespace) -> int:
    if args.profile:
        from repro.errors import SharcError
        from repro.runtime.profile import Profiler, profile_source

        profiler = Profiler()
        with profiler.phase("read"):
            source = _read(args.file)
        try:
            report = profile_source(source, args.file, seed=args.seed,
                                    rc_scheme="lp" if args.rc == "off"
                                    else args.rc,
                                    max_steps=args.max_steps,
                                    profiler=profiler)
        except SharcError as exc:
            print(exc)
            return 1
        print(report.render())
        return 0 if report.reports == 0 else 1
    checked = check_source(_read(args.file), args.file)
    if not checked.ok:
        print(checked.render_diagnostics())
        return 1
    result = run_checked(checked, seed=args.seed,
                         rc_scheme=args.rc,
                         checker=getattr(args, "checker", "sharc"),
                         max_steps=args.max_steps)
    if result.output:
        print(result.output, end="")
    for report in result.reports:
        print(report.render())
    if result.deadlock:
        print(f"deadlock: {result.deadlock}")
    if result.error:
        print(f"runtime error: {result.error}")
    if args.stats:
        print(result.stats.summary())
    return 0 if result.clean else 1


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.bench import table1
    argv = ["--json"] if args.json else []
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    return table1.main(argv)


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import interp_bench
    argv: list[str] = []
    if args.json:
        argv.append("--json")
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.out is not None:
        argv += ["--out", args.out]
    if args.workloads:
        argv += ["--workloads", *args.workloads]
    return interp_bench.main(argv)


def cmd_ablate_rc(_args: argparse.Namespace) -> int:
    from repro.bench import ablation_rc
    return ablation_rc.main()


def cmd_ablate_annot(_args: argparse.Namespace) -> int:
    from repro.bench import ablation_annot
    return ablation_annot.main()


def cmd_compare_eraser(_args: argparse.Namespace) -> int:
    from repro.bench import comparison_eraser
    return comparison_eraser.main()


def cmd_explore(args: argparse.Namespace) -> int:
    import json

    from repro.explore import (
        differential_sweep, explore_source, load_artifact, racy_c_program,
        replay_artifact, save_artifact, shrink_failure,
    )

    if args.replay:
        payload = load_artifact(args.replay)
        result = replay_artifact(payload)
        print(f"replayed {payload['filename']} "
              f"(seed={payload['seed']} policy={payload['policy']} "
              f"[{payload['checker']}]):")
        for key in sorted(result.report_counts):
            print(f"  {key} x{result.report_counts[key]}")
        expected = set(payload["report_keys"])
        ok = expected <= set(result.report_counts)
        print("reproduced the saved report" if ok
              else "DID NOT reproduce the saved report")
        return 0 if ok else 1

    spec = None
    if args.gen is not None:
        source, spec = racy_c_program(args.gen, kind=args.gen_kind)
        filename = f"<racy gen={args.gen} kind={args.gen_kind}>"
        if args.emit_source:
            print(source)
    elif args.file:
        source, filename = _read(args.file), args.file
    else:
        print("explore: need FILE or --gen SEED", file=sys.stderr)
        return 2

    policies = tuple(args.policy) if args.policy else ("random", "pct",
                                                       "pb")
    common = dict(seeds=args.seeds, seed_start=args.seed_start,
                  policies=policies, jobs=args.jobs,
                  max_steps=args.max_steps)
    if args.checker == "both":
        summary = differential_sweep(source, filename, **common)
        print(summary.render() if not args.json
              else json.dumps(summary.as_dict(), indent=2))
        sweep = summary.sharc
    else:
        sweep = explore_source(source, filename, checker=args.checker,
                               **common)
        print(sweep.render() if not args.json
              else json.dumps(sweep.as_dict(), indent=2))

    found = None
    if spec is not None:
        hits = sorted(k for k in sweep.first_failures
                      if spec.matches_key(k))
        if args.checker == "both":
            hits = sorted(set(hits) | {
                k for k in summary.eraser.first_failures
                if spec.matches_key(k)})
        if hits:
            first = (sweep.first_failures.get(hits[0])
                     or summary.eraser.first_failures[hits[0]])
            print(f"injected race ({spec.kind} on {spec.global_name}) "
                  f"FOUND: {', '.join(hits)}")
            print(f"  replay with {first.replay_coords()}")
            found = first
        else:
            print(f"injected race ({spec.kind} on {spec.global_name}) "
                  "NOT found in this sweep")

    if args.shrink:
        target = found or sweep.first_failure
        if target is None:
            print("nothing to shrink: no failing schedule found")
            return 1
        checker = target.checker
        keys = ([k for k in target.report_keys if spec.matches_key(k)]
                if spec is not None else None) or None
        result = shrink_failure(source, filename, seed=target.seed,
                                policy=target.policy, checker=checker,
                                target_keys=keys,
                                max_steps=args.max_steps)
        print(result.render())
        if args.out:
            save_artifact(result, args.out)
            print(f"replayable artifact written to {args.out}")

    if spec is not None:
        return 0 if found is not None else 1
    return 0 if not sweep.failures else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sharc",
        description="SharC reproduction: check data sharing strategies "
                    "for multithreaded C (PLDI 2008)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="static check a file")
    p.add_argument("file")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("infer", help="show inferred qualifiers")
    p.add_argument("file")
    p.set_defaults(func=cmd_infer)

    p = sub.add_parser("run", help="check and execute a file")
    p.add_argument("file")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--rc", choices=("lp", "naive", "off"), default="lp")
    p.add_argument("--checker", choices=("sharc", "eraser"),
                   default="sharc")
    p.add_argument("--max-steps", type=int, default=2_000_000)
    p.add_argument("--stats", action="store_true")
    p.add_argument("--profile", action="store_true",
                   help="time each pipeline phase, run an uninstrumented "
                        "baseline too, and report steps/sec")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("table1", help="regenerate Table 1")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("bench",
                       help="interpreter throughput benchmark "
                            "(writes BENCH_interp.json)")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--json", action="store_true")
    p.add_argument("--out", default=None)
    p.add_argument("--workloads", nargs="*", default=None)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("ablate-rc", help="refcounting ablation")
    p.set_defaults(func=cmd_ablate_rc)

    p = sub.add_parser("ablate-annot", help="annotation sweep ablation")
    p.set_defaults(func=cmd_ablate_annot)

    p = sub.add_parser("compare-eraser",
                       help="SharC vs Eraser-style lockset baseline")
    p.set_defaults(func=cmd_compare_eraser)

    p = sub.add_parser(
        "explore",
        help="sweep seeds x scheduling policies hunting "
             "schedule-dependent races")
    p.add_argument("file", nargs="?", default=None,
                   help="mini-C source to explore (or use --gen)")
    p.add_argument("--gen", type=int, default=None, metavar="SEED",
                   help="explore a racy-by-construction generated "
                        "program instead of a file; exit 0 iff the "
                        "injected race is found")
    p.add_argument("--gen-kind", choices=("write-write", "lock-elision"),
                   default="write-write")
    p.add_argument("--emit-source", action="store_true",
                   help="print the generated program before exploring")
    p.add_argument("--seeds", type=int, default=50,
                   help="schedules per policy (default 50)")
    p.add_argument("--seed-start", type=int, default=0)
    p.add_argument("--policy", action="append", default=None,
                   metavar="SPEC",
                   help="scheduling policy spec, repeatable (random, "
                        "round-robin, serial, pct[:D[:H]], pb[:K]); "
                        "default: random, pct, pb")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the sweep")
    p.add_argument("--checker", choices=("sharc", "eraser", "both"),
                   default="sharc",
                   help="'both' runs a differential sweep and reports "
                        "checker disagreements as replay seeds")
    p.add_argument("--shrink", action="store_true",
                   help="delta-debug the first failure to a minimal "
                        "interleaving")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the shrunk schedule as a replayable "
                        "JSON artifact")
    p.add_argument("--replay", default=None, metavar="FILE",
                   help="replay a saved schedule artifact and verify it "
                        "still reproduces its report")
    p.add_argument("--max-steps", type=int, default=200_000)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_explore)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
