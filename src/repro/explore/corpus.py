"""The on-disk deduplicating trace corpus.

A campaign's coverage currency is the *distinct context-switch trace*:
two schedules that interleave identically explore the same point of the
schedule space, so only the first one buys coverage.  The flat sweep
keeps that dedup in an in-memory set that dies with the process; the
campaign engine keeps it here — an append-only file of trace hashes
that survives restarts, fronted by a Bloom filter so the common case
(an unseen trace) is decided by a few bit probes without touching the
exact set.

The Bloom front is *false-positive-free by construction* for the
answers the corpus gives out: a negative probe means definitely-new
(Bloom filters have no false negatives), and a positive probe is never
trusted — it falls through to the exact set behind it.  The filter is
therefore purely an accelerator; membership semantics are exactly those
of a Python set.

Durability model: hashes are buffered per :meth:`TraceCorpus.add` and
made durable by :meth:`flush` — the campaign engine flushes once per
completed shard, right before the shard's ``done`` lease record, so a
killed campaign's corpus file never runs ahead of its queue.  A torn
final line (the crash window) is detected and dropped on load, matching
the telemetry stream's crash-safety contract.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

#: default Bloom geometry: 1 MiB of bits (2^23) with 4 probes holds ~1M
#: traces below a ~2.4% maybe rate — and a "maybe" only costs one exact
#: set lookup, so the geometry is a throughput knob, not a correctness
#: one
DEFAULT_BLOOM_BITS = 1 << 23
DEFAULT_BLOOM_PROBES = 4


class BloomFilter:
    """A plain bit-array Bloom filter over trace-hash strings.

    Trace hashes are already uniform hex digests
    (:func:`repro.explore.driver.trace_hash`), so the k probe indices
    are sliced straight out of the digest's integer value instead of
    re-hashing.
    """

    def __init__(self, bits: int = DEFAULT_BLOOM_BITS,
                 probes: int = DEFAULT_BLOOM_PROBES) -> None:
        if bits < 8 or bits & (bits - 1):
            raise ValueError(f"bits must be a power of two >= 8, "
                             f"got {bits}")
        if probes < 1:
            raise ValueError(f"probes must be >= 1, got {probes}")
        self.bits = bits
        self.probes = probes
        self._mask = bits - 1
        self._bytes = bytearray(bits // 8)

    def _indices(self, digest: str) -> list[int]:
        value = int(digest, 16)
        shift = max(1, self.bits.bit_length() - 1)
        out = []
        for _ in range(self.probes):
            out.append(value & self._mask)
            value >>= shift
            # Digest exhausted (short hashes x many probes): re-mix by
            # squaring, which keeps the probe stream deterministic.
            if value == 0:
                value = (out[-1] * 2654435761 + 1) & ((1 << 64) - 1)
        return out

    def add(self, digest: str) -> None:
        for index in self._indices(digest):
            self._bytes[index >> 3] |= 1 << (index & 7)

    def __contains__(self, digest: str) -> bool:
        """True means *maybe present* (confirm against the exact set);
        False means definitely absent."""
        for index in self._indices(digest):
            if not self._bytes[index >> 3] & 1 << (index & 7):
                return False
        return True


def _valid_hash(line: str) -> bool:
    """A corpus line is one lowercase hex trace hash; anything else is
    the torn tail of a killed writer and is dropped on load."""
    if not line:
        return False
    return all(c in "0123456789abcdef" for c in line)


class TraceCorpus:
    """The persistent distinct-trace set of one campaign directory.

    Two membership layers, deliberately separate:

    - the **working set** (:meth:`add` / :meth:`__contains__`): what the
      current fold has seen.  Campaign resume rebuilds it by refolding
      completed shards in lease order, so "was this trace new when
      shard k folded?" has one deterministic answer regardless of how
      many times the process restarted;
    - the **persisted set** (the file): the union ever made durable.
      :meth:`add` queues a hash for append only if the file does not
      already hold it, so refolds after a restart never duplicate
      lines.

    ``preload=True`` seeds the working set from the file instead —
    cross-campaign dedup for fresh campaigns pointed at an existing
    corpus.
    """

    def __init__(self, path: Optional[str] = None, *,
                 preload: bool = False,
                 bits: int = DEFAULT_BLOOM_BITS,
                 probes: int = DEFAULT_BLOOM_PROBES) -> None:
        self.path = path
        self.bloom = BloomFilter(bits, probes)
        self._seen: set[str] = set()
        self._persisted: set[str] = set()
        self._pending: list[str] = []
        if path is not None and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if _valid_hash(line):
                        self._persisted.add(line)
        if preload:
            for digest in self._persisted:
                self._seen.add(digest)
                self.bloom.add(digest)

    def __len__(self) -> int:
        return len(self._seen)

    def __contains__(self, digest: str) -> bool:
        # Bloom-negative: definitely new, no set probe.  Bloom-positive
        # is only a hint — the exact set decides, so the corpus never
        # reports a false positive.
        if digest not in self.bloom:
            return False
        return digest in self._seen

    @property
    def persisted(self) -> int:
        """Distinct hashes the on-disk file holds."""
        return len(self._persisted) + sum(
            1 for h in self._pending if h not in self._persisted)

    def add(self, digest: str) -> bool:
        """Folds one trace hash in; True iff it was new to the working
        set.  New hashes not yet on disk are buffered until
        :meth:`flush`."""
        if digest in self:
            return False
        self._seen.add(digest)
        self.bloom.add(digest)
        if digest not in self._persisted:
            self._pending.append(digest)
        return True

    def add_many(self, digests: Iterable[str]) -> int:
        """Folds a batch; returns how many were new."""
        return sum(1 for digest in digests if self.add(digest))

    def flush(self) -> None:
        """Appends buffered hashes to the file and fsyncs — called once
        per completed shard, before the shard's ``done`` record."""
        if not self._pending or self.path is None:
            self._pending.clear()
            return
        with open(self.path, "a", encoding="utf-8") as handle:
            for digest in self._pending:
                handle.write(digest + "\n")
                self._persisted.add(digest)
            handle.flush()
            os.fsync(handle.fileno())
        self._pending.clear()
