"""The multi-seed, multi-policy exploration driver.

One dynamic run samples exactly one interleaving; this driver sweeps a
program across ``seeds x policies`` schedules — optionally fanned out
over worker processes — and aggregates:

- **failures**: every schedule that produced at least one report, with
  its (seed, policy) replay coordinates;
- **coverage**: how many *distinct context-switch traces* the sweep
  actually executed (two seeds that interleave identically explore the
  same point of the schedule space), and races found per 1k schedules;
- **per-policy breakdown**: which policy finds which reports — PCT and
  the preemption-bounded walk routinely expose races the uniform random
  walk misses at the same budget.

Schedules are deterministic, so every row of the result is replayable:
``run_checked(checked, seed=outcome.seed, policy=outcome.policy)``
reproduces the run bit-for-bit.  Wall-clock accounting goes through
:class:`repro.runtime.profile.Profiler`; the deterministic metrics come
from :class:`repro.runtime.stats.RunStats` as everywhere else.
"""

from __future__ import annotations

import hashlib
import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.runtime.profile import Profiler

#: exploration runs bound their schedules tighter than normal runs —
#: sweeping thousands of schedules at 2M steps each would be pointless
DEFAULT_MAX_STEPS = 200_000

#: generated racy programs spawn aggressively (duplicate spawns widen
#: the interleaving space), and a 1-byte shadow word caps the run at 7
#: threads (the paper's 8n-1 encoding) — aborting mid-schedule would
#: masquerade as a scheduling effect, so exploration runs 2-byte shadow
#: words (15-thread capacity) by default
DEFAULT_SHADOW_BYTES = 2

DEFAULT_POLICIES = ("random", "pct", "pb")


@dataclass(frozen=True)
class ScheduleOutcome:
    """One schedule's result, reduced to its replayable coordinates."""

    seed: int
    policy: str
    checker: str
    report_keys: tuple[str, ...]
    reports: int
    steps: int
    switches: int
    trace_hash: str
    deadlock: bool = False
    error: Optional[str] = None
    timeout: bool = False
    #: shadow-check update / fast-path counters (feed metrics.json's
    #: check hit rate)
    check_updates: int = 0
    check_fastpath: int = 0
    #: per-check-site attribution, encoded via
    #: :func:`repro.obs.sitestats.encode_sites` (hashable, picklable —
    #: this dataclass crosses the multiprocessing fan-out frozen)
    sites: tuple = ()

    @property
    def failing(self) -> bool:
        return self.reports > 0

    def replay_coords(self) -> str:
        return f"seed={self.seed} policy={self.policy}"


@dataclass
class ExplorationSummary:
    """Everything one sweep measured."""

    filename: str
    checker: str
    policies: tuple[str, ...]
    schedules: int = 0
    steps_total: int = 0
    outcomes: list[ScheduleOutcome] = field(default_factory=list)
    failures: list[ScheduleOutcome] = field(default_factory=list)
    #: schedules whose *harness* crashed (not program-level reports) —
    #: error-tagged rather than sweep-aborting, so one bad schedule
    #: cannot take down a thousand-schedule sweep
    crashes: list[ScheduleOutcome] = field(default_factory=list)
    #: set when the sweep was cut short by Ctrl-C; the summary still
    #: holds every outcome collected before the interrupt
    interrupted: bool = False
    #: report key -> the first schedule that produced it, "first" by
    #: the deterministic sweep coordinates ``(policy rank, seed)`` —
    #: NOT by arrival order, so unordered fan-out (``imap_unordered``)
    #: aggregates to the same summary as a serial sweep
    first_failures: dict[str, ScheduleOutcome] = field(
        default_factory=dict)
    trace_hashes: set[str] = field(default_factory=set)
    #: policy -> {"schedules": n, "failures": n, "traces": set}
    per_policy: dict[str, dict] = field(default_factory=dict)
    #: check-site attribution merged across every schedule
    #: (:mod:`repro.obs.sitestats` layout)
    site_totals: dict = field(default_factory=dict)
    profiler: Profiler = field(default_factory=Profiler)

    def coord_key(self, outcome: ScheduleOutcome) -> tuple:
        """The deterministic sweep order of an outcome: policies in
        declaration order, seeds ascending within a policy — exactly
        the order a serial sweep runs them, independent of arrival."""
        try:
            rank = self.policies.index(outcome.policy)
        except ValueError:  # a policy outside the sweep's declared set
            rank = len(self.policies)
        return (rank, outcome.policy, outcome.seed)

    def add(self, outcome: ScheduleOutcome) -> None:
        from repro.obs.sitestats import merge_sites

        self.schedules += 1
        self.steps_total += outcome.steps
        self.outcomes.append(outcome)
        if outcome.sites:
            merge_sites(self.site_totals, outcome.sites)
        bucket = self.per_policy.setdefault(
            outcome.policy,
            {"schedules": 0, "failures": 0, "crashes": 0,
             "traces": set()})
        bucket["schedules"] += 1
        if not outcome.trace_hash:
            # A crashed schedule has no trace; an empty hash must not
            # count as a distinct point of the schedule space.
            self.crashes.append(outcome)
            bucket["crashes"] += 1
            return
        self.trace_hashes.add(outcome.trace_hash)
        bucket["traces"].add(outcome.trace_hash)
        if outcome.failing:
            self.failures.append(outcome)
            bucket["failures"] += 1
            for key in outcome.report_keys:
                held = self.first_failures.get(key)
                if held is None or (self.coord_key(outcome)
                                    < self.coord_key(held)):
                    self.first_failures[key] = outcome

    @property
    def distinct_traces(self) -> int:
        return len(self.trace_hashes)

    @property
    def completed_schedules(self) -> int:
        """Schedules that actually ran to a verdict — crash-tagged
        outcomes never executed a schedule, so they are excluded from
        every rate denominator (races/1k, coverage)."""
        return self.schedules - len(self.crashes)

    @property
    def races_per_1k(self) -> float:
        if not self.completed_schedules:
            return 0.0
        return 1000.0 * len(self.failures) / self.completed_schedules

    @property
    def first_failure(self) -> Optional[ScheduleOutcome]:
        return self.failures[0] if self.failures else None

    def as_dict(self) -> dict:
        return {
            "filename": self.filename,
            "checker": self.checker,
            "policies": list(self.policies),
            "schedules": self.schedules,
            "steps_total": self.steps_total,
            "failing_schedules": len(self.failures),
            "crashed_schedules": len(self.crashes),
            "completed_schedules": self.completed_schedules,
            "crashes": [
                {"seed": o.seed, "policy": o.policy, "error": o.error}
                for o in sorted(self.crashes, key=self.coord_key)],
            "interrupted": self.interrupted,
            "distinct_traces": self.distinct_traces,
            "races_per_1k": round(self.races_per_1k, 3),
            "distinct_reports": sorted(self.first_failures),
            "first_failures": {
                key: {"seed": o.seed, "policy": o.policy}
                for key, o in self.first_failures.items()},
            "per_policy": {
                policy: {
                    "schedules": b["schedules"],
                    "failures": b["failures"],
                    "crashes": b.get("crashes", 0),
                    "distinct_traces": len(b["traces"]),
                }
                for policy, b in sorted(self.per_policy.items())},
            "profile": self.profiler.as_dict(),
        }

    def render(self) -> str:
        lines = [
            f"explored {self.schedules} schedules of {self.filename} "
            f"[{self.checker}] over policies: "
            + ", ".join(self.policies),
            f"  distinct context-switch traces: {self.distinct_traces}",
            f"  failing schedules: {len(self.failures)} "
            f"({self.races_per_1k:.1f} races / 1k schedules)",
        ]
        if self.interrupted:
            lines.append("  (sweep interrupted; partial results)")
        if self.crashes:
            lines.append(f"  crashed schedules: {len(self.crashes)} "
                         f"(first: {self.crashes[0].error} at "
                         f"{self.crashes[0].replay_coords()})")
        for policy, b in sorted(self.per_policy.items()):
            lines.append(
                f"  {policy:<12} {b['failures']:>4}/{b['schedules']:<4}"
                f" failing, {len(b['traces'])} distinct traces")
        if self.first_failures:
            lines.append("  first failure per report:")
            for key, o in sorted(self.first_failures.items()):
                lines.append(f"    {key}  ->  replay with "
                             f"{o.replay_coords()}")
        else:
            lines.append("  no failing schedule found")
        return "\n".join(lines)


# -- one schedule -------------------------------------------------------------
#
# Worker processes re-check the source; a per-process cache keyed by
# (source hash, filename) amortizes that across the seeds each worker
# handles.

_CHECK_CACHE: dict = {}

#: measured serial-run horizons, keyed by
#: ``(source hash, checker, max_steps, max_burst, shadow_bytes)`` —
#: campaign shards and repeated sweeps of the same source reuse the one
#: probe run instead of each paying it (see :func:`_resolve_policies`)
_HORIZON_CACHE: dict = {}


def _source_hash(source: str) -> str:
    return hashlib.sha1(source.encode()).hexdigest()


def _checked_program(source: str, filename: str):
    from repro.sharc.checker import check_source

    key = (_source_hash(source), filename)
    checked = _CHECK_CACHE.get(key)
    if checked is None:
        checked = check_source(source, filename)
        if not checked.ok:
            raise ValueError(f"{filename}: static checking failed:\n"
                             + checked.render_diagnostics())
        _CHECK_CACHE[key] = checked
    return checked


def trace_hash(trace: Sequence[tuple[int, int]]) -> str:
    digest = hashlib.sha1()
    for tid, items in trace:
        digest.update(f"{tid}:{items};".encode())
    return digest.hexdigest()[:16]


def run_schedule(source: str, filename: str, seed: int, policy: str,
                 checker: str = "sharc",
                 max_steps: int = DEFAULT_MAX_STEPS,
                 max_burst: int = 8,
                 world_factory: Optional[Callable] = None,
                 shadow_bytes: int = DEFAULT_SHADOW_BYTES,
                 checkelim: bool = True,
                 lockset: bool = True,
                 absint: bool = True,
                 backend: Optional[str] = None,
                 collect_sites: bool = True,
                 ) -> ScheduleOutcome:
    """Executes one (seed, policy) schedule and reduces it to an
    outcome.  ``checkelim=False`` ablates the static check eliminator,
    ``lockset=False`` the locked(l) lockset refinement, and
    ``absint=False`` the abstract interpreter's discharges — every
    outcome field is guaranteed identical any way (the soundness
    gates of all three passes), so sweeps default to all on.  ``backend``
    picks the executor; outcomes are backend-invariant by the same
    guarantee (bit-identical steps, reports, and traces by seed).

    ``collect_sites=False`` skips encoding the per-check-site
    attribution into the outcome — the dominant share of its pickled
    size — so campaign workers can sample attribution 1-in-N instead of
    shipping the full ``sites`` payload through IPC for every single
    schedule.  Every other field is unaffected."""
    from repro.obs.sitestats import encode_sites
    from repro.runtime.interp import run_checked

    checked = _checked_program(source, filename)
    world = world_factory() if world_factory is not None else None
    result = run_checked(checked, seed=seed, policy=policy,
                         checker=checker, max_steps=max_steps,
                         max_burst=max_burst, world=world,
                         shadow_bytes=shadow_bytes,
                         checkelim=checkelim, lockset=lockset,
                         absint=absint,
                         record_trace=True, backend=backend)
    trace = result.trace or []
    return ScheduleOutcome(
        seed=seed, policy=policy, checker=checker,
        report_keys=tuple(sorted(result.report_counts)),
        reports=len(result.reports),
        steps=result.stats.steps_total,
        switches=max(0, len(trace) - 1),
        trace_hash=trace_hash(trace),
        deadlock=result.deadlock is not None,
        error=result.error,
        timeout=result.timeout,
        check_updates=result.stats.shadow_updates,
        check_fastpath=result.stats.shadow_fastpath_hits,
        sites=(encode_sites(result.stats.sites) if collect_sites
               else ()),
    )


def _run_task(task) -> ScheduleOutcome:
    (source, filename, seed, policy, checker, max_steps, max_burst,
     world_factory, shadow_bytes, backend, collect_sites, absint) = task
    try:
        return run_schedule(source, filename, seed, policy, checker,
                            max_steps, max_burst, world_factory,
                            shadow_bytes, absint=absint, backend=backend,
                            collect_sites=collect_sites)
    except Exception as exc:  # noqa: BLE001 - sweep survival
        # A crashing schedule (interpreter bug, bad world, recursion
        # blow-up) must not abort the whole sweep: pool.imap re-raises
        # worker exceptions in the parent, which used to discard every
        # other schedule's result.  Tag it instead; the empty
        # trace_hash keeps it out of the coverage metrics.
        return ScheduleOutcome(
            seed=seed, policy=policy, checker=checker,
            report_keys=(), reports=0, steps=0, switches=0,
            trace_hash="",
            error=f"{type(exc).__name__}: {exc}")


# -- the sweep -------------------------------------------------------------


def _resolve_policies(policies: Sequence[str], source: str,
                      filename: str, checker: str, max_steps: int,
                      max_burst: int,
                      world_factory: Optional[Callable],
                      shadow_bytes: int = DEFAULT_SHADOW_BYTES,
                      ) -> tuple[str, ...]:
    """Pins PCT's horizon to the measured program length.

    PCT's probabilistic guarantee assumes its horizon approximates the
    program's actual scheduled-item count ``k``; the stock default
    (4000) makes change points land past the end of short programs and
    the policy silently degenerates to a priority-ordered serial run.
    ``pct`` / ``pct:D`` specs therefore get ``k`` measured with one
    serial run appended — yielding a fully explicit ``pct:D:k`` spec, so
    every outcome stays replayable verbatim.  Specs that already carry a
    horizon are left alone.

    The measured horizon is cached alongside ``_CHECK_CACHE``, keyed by
    ``(source hash, checker, max_steps, max_burst, shadow_bytes)``, so
    repeated sweeps of the same source — campaign shards above all —
    pay the serial probe run exactly once per process.
    """
    from repro.runtime.interp import run_checked

    def needs_horizon(spec: str) -> bool:
        return spec == "pct" or (spec.startswith("pct:")
                                 and spec.count(":") == 1)

    if not any(needs_horizon(p) for p in policies):
        return tuple(policies)
    cache_key = (_source_hash(source), checker, max_steps, max_burst,
                 shadow_bytes)
    horizon = _HORIZON_CACHE.get(cache_key)
    if horizon is None:
        checked = _checked_program(source, filename)
        world = world_factory() if world_factory is not None else None
        probe = run_checked(checked, seed=0, policy="serial",
                            checker=checker, max_steps=max_steps,
                            max_burst=max_burst, world=world,
                            shadow_bytes=shadow_bytes, record_trace=True)
        horizon = max(1, sum(n for _, n in (probe.trace or [])))
        _HORIZON_CACHE[cache_key] = horizon
    resolved = []
    for spec in policies:
        if needs_horizon(spec):
            depth = spec.partition(":")[2] or "3"
            spec = f"pct:{depth}:{horizon}"
        resolved.append(spec)
    return tuple(resolved)


def explore_source(source: str, filename: str = "<input>", *,
                   seeds: int = 50, seed_start: int = 0,
                   policies: Sequence[str] = DEFAULT_POLICIES,
                   checker: str = "sharc", jobs: int = 1,
                   max_steps: int = DEFAULT_MAX_STEPS,
                   max_burst: int = 8,
                   world_factory: Optional[Callable] = None,
                   shadow_bytes: int = DEFAULT_SHADOW_BYTES,
                   backend: Optional[str] = None,
                   collect_sites: bool = True,
                   absint: bool = True,
                   telemetry=None,
                   progress: Optional[Callable] = None,
                   ) -> ExplorationSummary:
    """Sweeps ``seeds x policies`` schedules of one program.

    ``absint=False`` ablates the abstract interpreter's interval-proved
    check discharges in every schedule (outcomes are identical either
    way; see :func:`run_schedule`).

    ``jobs > 1`` distributes schedules over a process pool;
    ``world_factory`` (a picklable zero-argument callable) rebuilds the
    simulated I/O world per run so runs stay independent.  A schedule
    whose run crashes is recorded as an error-tagged outcome instead of
    aborting the sweep, and Ctrl-C returns the partial summary
    (``interrupted=True``) instead of discarding collected outcomes.

    ``telemetry`` (a :class:`repro.obs.telemetry.TelemetryWriter`)
    streams heartbeat records per result batch; ``progress`` is called
    as ``progress(done, total, summary)`` after every outcome.  Both
    observe the sweep without perturbing it — outcomes are computed
    before either hook runs.
    """
    summary = ExplorationSummary(filename=filename, checker=checker,
                                 policies=tuple(policies))
    with summary.profiler.phase("check"):
        _checked_program(source, filename)  # fail fast, warm the cache
    with summary.profiler.phase("resolve-policies"):
        policies = _resolve_policies(policies, source, filename,
                                     checker, max_steps, max_burst,
                                     world_factory, shadow_bytes)
    summary.policies = policies
    tasks = [(source, filename, seed, policy, checker, max_steps,
              max_burst, world_factory, shadow_bytes, backend,
              collect_sites, absint)
             for policy in policies
             for seed in range(seed_start, seed_start + seeds)]
    if telemetry is not None:
        telemetry.begin_sweep(filename, checker, policies, len(tasks),
                              backend=backend)

    def took(outcome: ScheduleOutcome) -> None:
        summary.add(outcome)
        if telemetry is not None:
            telemetry.record_outcome(outcome)
        if progress is not None:
            progress(summary.schedules, len(tasks), summary)

    with summary.profiler.phase("sweep"):
        try:
            if jobs > 1:
                # Unordered: a slow schedule no longer head-of-line
                # blocks finished ones.  Aggregation is order-invariant
                # (first_failures key on sweep coordinates, coverage
                # fields are sets/sums), so the summary is identical to
                # the ordered walk — property-tested in test_explore.
                with multiprocessing.Pool(jobs) as pool:
                    for outcome in pool.imap_unordered(_run_task, tasks,
                                                       chunksize=8):
                        took(outcome)
            else:
                for task in tasks:
                    took(_run_task(task))
        except KeyboardInterrupt:
            summary.interrupted = True
    if telemetry is not None:
        telemetry.end_sweep(summary)
    summary.profiler.count("schedules", summary.schedules)
    summary.profiler.count("failing_schedules", len(summary.failures))
    summary.profiler.count("distinct_traces", summary.distinct_traces)
    return summary


def explore_workload(name: str, *, annotated: bool = True,
                     **kwargs) -> ExplorationSummary:
    """Sweeps one of the Table 1 workload models by name."""
    from repro.bench.workloads import get_workload

    workload = get_workload(name)
    source = (workload.annotated_source if annotated
              else workload.unannotated_source)
    kwargs.setdefault("max_steps", workload.max_steps)
    kwargs.setdefault("world_factory", workload.world_factory)
    return explore_source(source, f"{name}.c", **kwargs)
