"""The campaign's persistent work queue: shard leases on disk.

A campaign's budget is carved into **shards** — contiguous seed ranges
of one ``(target, policy)`` cell — and every shard's life cycle is
recorded in ``queue.jsonl`` as append-only JSONL lease records:

- ``{"kind": "lease", "shard": n, ...spec..., "rate": r, "picked": k}``
  when the scheduler commits to running shard ``n`` (the coverage rate
  and pick ordinal that chose it ride along, so the schedule of the
  whole campaign replays from the file);
- ``{"kind": "done", "shard": n}`` once the shard's result file is
  durable.

The result itself lands in ``shards/shard-NNNNN.json``, written to a
temp file and atomically renamed, and the ``done`` record is appended
only after the rename — so after any kill the queue is in one of two
states per shard: fully complete (result file + done record) or safely
re-runnable (schedules are deterministic, so re-running a leased shard
reproduces the identical result file).  ``sharc campaign --resume``
folds the completed prefix back in lease order and continues from the
first shard without a result.

No record in this file carries wall-clock time: the queue is part of
the campaign's *deterministic* state (bit-identical across resumes and
re-runs); rates and ETAs live in the telemetry stream instead.
"""

from __future__ import annotations

import json
import os
from typing import Optional

QUEUE_SCHEMA = "sharc-campaign-queue/1"

#: fields a lease record must carry to be replayable
LEASE_FIELDS = ("shard", "label", "policy", "seed_start", "seeds")


class WorkQueue:
    """The on-disk lease log + shard results of one campaign dir."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.queue_path = os.path.join(directory, "queue.jsonl")
        self.shards_dir = os.path.join(directory, "shards")
        os.makedirs(self.shards_dir, exist_ok=True)

    # -- the lease log -----------------------------------------------------

    def append(self, record: dict) -> None:
        """Appends one record durably (flush + fsync, like telemetry)."""
        with open(self.queue_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def records(self) -> list[dict]:
        """Replays the lease log, tolerating a torn final line."""
        records: list[dict] = []
        if not os.path.exists(self.queue_path):
            return records
        with open(self.queue_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail from a kill mid-append
                if isinstance(record, dict):
                    records.append(record)
        return records

    def lease(self, shard: dict, *, rate: Optional[float],
              picked: int) -> None:
        record = {"kind": "lease", "picked": picked,
                  "rate": rate if rate is None else round(rate, 6)}
        record.update({key: shard[key] for key in LEASE_FIELDS})
        self.append(record)

    def mark_done(self, shard_id: int) -> None:
        self.append({"kind": "done", "shard": shard_id})

    # -- shard results -----------------------------------------------------

    def shard_path(self, shard_id: int) -> str:
        return os.path.join(self.shards_dir, f"shard-{shard_id:05d}.json")

    def write_shard(self, shard_id: int, payload: dict) -> None:
        """Atomic write: temp file in the same directory, fsync, then
        rename — a kill leaves either no file or a complete one."""
        path = self.shard_path(shard_id)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def load_shard(self, shard_id: int) -> Optional[dict]:
        """The shard's result payload, or None when absent/corrupt
        (a corrupt file is treated as absent: the shard re-runs and
        atomically replaces it with the identical bytes)."""
        path = self.shard_path(shard_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def completed(self) -> list[dict]:
        """The completed prefix, in lease order: every lease record
        whose shard has both a ``done`` record and a loadable result
        file.  (A ``done`` record without a result file cannot happen
        short of external deletion, but is treated as not-done so the
        shard simply re-runs.)"""
        leases = []
        seen = set()
        done = set()
        for record in self.records():
            if record.get("kind") == "lease":
                # An orphan lease (killed before its shard finished)
                # is re-leased verbatim on resume; keep the first
                # record per shard id so the fold never doubles.
                if record.get("shard") not in seen:
                    seen.add(record.get("shard"))
                    leases.append(record)
            elif record.get("kind") == "done":
                done.add(record.get("shard"))
        out = []
        for lease in leases:
            shard_id = lease.get("shard")
            if shard_id in done and \
                    self.load_shard(shard_id) is not None:
                out.append(lease)
        return out
